//! Offline stand-in for the `proptest` crate (see `crates/shims/`).
//!
//! Implements the subset of proptest's API this workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`,
//! `Just`, `any::<T>()`, numeric range strategies, regex-subset string
//! strategies (`"[a-z]{1,6}"`), tuple strategies, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, the `proptest!` macro with
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and `ProptestConfig`.
//!
//! Cases are generated from a deterministic per-case seed (reproducible
//! runs; the failing case index and seed are printed on failure). There is
//! no shrinking: the first failing input is reported as-is.

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input; try another.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(message.into())
        }

        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(message.into())
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic case-level RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e3779b97f4a7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives one property: generates cases until `cases` inputs were
    /// accepted (assume-rejects retry with fresh seeds) and panics on the
    /// first failure.
    pub struct Runner {
        config: ProptestConfig,
    }

    impl Runner {
        pub fn new(config: ProptestConfig) -> Runner {
            Runner { config }
        }

        pub fn run(&self, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
            let mut accepted: u64 = 0;
            let mut attempts: u64 = 0;
            let max_attempts = self.config.cases as u64 * 16 + 256;
            while accepted < self.config.cases as u64 && attempts < max_attempts {
                let seed = 0xbe4c_11a5_c0ff_ee00u64 ^ attempts.wrapping_mul(0x2545f4914f6cdd1d);
                attempts += 1;
                let mut rng = TestRng::from_seed(seed);
                match case(&mut rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(message)) => {
                        panic!("proptest: case #{attempts} (seed {seed:#018x}) failed: {message}")
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A source of values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        /// Recursive structures: `levels` rounds of `recurse` applied over
        /// the base strategy, each level choosing between base and deeper
        /// cases. `desired_size`/`expected_branch_size` are accepted for
        /// proptest compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            levels: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..levels {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![base.clone(), deeper]).boxed();
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    // ---- regex-subset string strategies ---------------------------------

    /// One parsed pattern element with its repetition bounds.
    #[derive(Debug, Clone)]
    struct Piece {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    const UNBOUNDED_REPEAT: usize = 8;

    fn printable_ascii() -> Vec<char> {
        (' '..='~').collect()
    }

    fn class_for_escape(escape: char) -> Vec<char> {
        match escape {
            'd' => ('0'..='9').collect(),
            'w' => ('a'..='z')
                .chain('A'..='Z')
                .chain('0'..='9')
                .chain(std::iter::once('_'))
                .collect(),
            's' => vec![' ', '\t', '\n'],
            'n' => vec!['\n'],
            't' => vec!['\t'],
            'r' => vec!['\r'],
            other => vec![other],
        }
    }

    /// Parses a bracket class body (after `[`, through `]`).
    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let negated = chars.peek() == Some(&'^');
        if negated {
            chars.next();
        }
        let mut members: Vec<char> = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '\\' => {
                    let escaped = chars.next().unwrap_or('\\');
                    members.extend(class_for_escape(escaped));
                    prev = None;
                }
                '-' if prev.is_some() && chars.peek().is_some() && chars.peek() != Some(&']') => {
                    let start = prev.take().expect("checked");
                    let end = chars.next().expect("checked");
                    // `start` itself is already in `members`
                    let (lo, hi) = if start <= end {
                        (start, end)
                    } else {
                        (end, start)
                    };
                    let mut range_char = lo;
                    while range_char < hi {
                        range_char = char::from_u32(range_char as u32 + 1).unwrap_or(hi);
                        members.push(range_char);
                    }
                }
                other => {
                    members.push(other);
                    prev = Some(other);
                }
            }
        }
        if negated {
            printable_ascii()
                .into_iter()
                .filter(|c| !members.contains(c))
                .collect()
        } else {
            members
        }
    }

    /// Parses `{m}`, `{m,}`, `{m,n}` bodies (after `{`).
    fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
        let mut body = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            body.push(c);
        }
        match body.split_once(',') {
            None => {
                let n = body.trim().parse().unwrap_or(1);
                (n, n)
            }
            Some((m, "")) => {
                let m: usize = m.trim().parse().unwrap_or(0);
                (m, m + UNBOUNDED_REPEAT)
            }
            Some((m, n)) => (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(1)),
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces: Vec<Piece> = Vec::new();
        while let Some(c) = chars.next() {
            let choices = match c {
                '[' => parse_class(&mut chars),
                '.' => {
                    // mostly printable ASCII, with the occasional multi-byte
                    // char so span/boundary properties see them
                    let mut all = printable_ascii();
                    all.extend(['é', 'π', '☃']);
                    all
                }
                '\\' => class_for_escape(chars.next().unwrap_or('\\')),
                literal => vec![literal],
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    parse_repeat(&mut chars)
                }
                Some('*') => {
                    chars.next();
                    (0, UNBOUNDED_REPEAT)
                }
                Some('+') => {
                    chars.next();
                    (1, UNBOUNDED_REPEAT)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { choices, min, max });
        }
        pieces
    }

    /// `&str` patterns are string strategies, as in proptest.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let pieces = parse_pattern(self);
            let mut out = String::new();
            for piece in &pieces {
                let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
                for _ in 0..count {
                    if piece.choices.is_empty() {
                        continue;
                    }
                    let index = rng.below(piece.choices.len() as u64) as usize;
                    out.push(piece.choices[index]);
                }
            }
            out
        }
    }

    impl Strategy for String {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            self.as_str().generate(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // finite, sign-symmetric, wide dynamic range
            let magnitude = (rng.unit_f64() * 600.0) - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * magnitude.exp2()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32((rng.next_u64() % 0xD7FF) as u32).unwrap_or('a')
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Vector length bounds; built from ranges or an exact size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// `prop::collection::vec`: vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `prop::option::of`: `None` about a third of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(3) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `prop::sample::select`: uniform choice from a fixed list.
    pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
        let options = options.into();
        assert!(!options.is_empty(), "select from an empty list");
        Select { options }
    }

    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module namespace, as proptest's prelude provides.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Boolean property assertion; returns `TestCaseError::Fail` on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $fmt:expr $(, $args:expr)* $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    format!($fmt $(, $args)*),
                ),
            ));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $fmt:expr $(, $args:expr)* $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    left,
                    right,
                    format!($fmt $(, $args)*),
                ),
            ));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Filters the current case; rejected cases are retried with fresh input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The property-test declaration macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let runner = $crate::test_runner::Runner::new(config);
            runner.run(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                result
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_respects_class_and_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn negated_class_and_plus() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        for _ in 0..100 {
            let s = "[^a]+".generate(&mut rng);
            assert!(!s.is_empty());
            assert!(!s.contains('a'));
        }
    }

    proptest! {
        #[test]
        fn ranges_are_honored(n in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn assume_filters(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        #[test]
        fn oneof_and_collections(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..5)) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn select_and_option(
            x in prop::sample::select(vec!["a", "b", "c"]),
            o in prop::option::of(0u32..3),
        ) {
            prop_assert!(["a", "b", "c"].contains(&x));
            if let Some(v) = o {
                prop_assert!(v < 3);
            }
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(bool),
            Node(Vec<Tree>),
        }
        let strat = any::<bool>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        let mut saw_node = false;
        for _ in 0..200 {
            if matches!(strat.generate(&mut rng), Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node, "recursion should produce interior nodes");
    }
}
