//! Offline stand-in for the `rand` crate (see `crates/shims/`).
//!
//! Implements the 0.8-era API subset the workspace uses: `SeedableRng` with
//! `seed_from_u64`, the `Rng` extension trait with `gen`/`gen_range`, and
//! `rngs::StdRng`. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic for a given seed, which is what the simulation code relies
//! on (noise models are salted per call site).

/// Core uniform-source trait (the `rand_core` split, collapsed).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Numeric types `gen_range` supports.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f64::sample(rng)
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64 like rand's `SmallRng` family.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let x = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
