//! Offline stand-in for the `criterion` crate (see `crates/shims/`).
//!
//! A small wall-clock benchmark harness with criterion's calling convention:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with per-input ids and throughput annotation, and
//! `Bencher::iter`. Each benchmark is warmed up briefly, then timed over
//! `sample_size` samples; the report prints min/median/mean per iteration.
//! Accepts and ignores the extra CLI flags `cargo bench` forwards (`--bench`,
//! filters), and honors `--test` (run each benchmark once, don't measure) so
//! `cargo test --benches` stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Target time budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget before measuring.
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark id made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Total time spent in measured iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Test mode: run the payload once, skip measurement.
    test_mode: bool,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // warm up and estimate per-iteration cost
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget_iters =
            ((MEASURE_BUDGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..budget_iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = budget_iters;
    }

    fn per_iter_ns(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e9 / self.iters.max(1) as f64
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The harness: holds configuration and the CLI filter.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut test_mode = false;
        let mut skip_next = false;
        for (i, arg) in args.iter().enumerate() {
            if skip_next {
                skip_next = false;
                continue;
            }
            match arg.as_str() {
                "--bench" | "--benches" | "--nocapture" | "--quiet" | "-q" | "--verbose" => {}
                "--test" => test_mode = true,
                "--exact" | "--save-baseline" | "--baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => skip_next = true,
                other if other.starts_with("--") => {}
                other => {
                    let _ = i;
                    filter = Some(other.to_string());
                }
            }
        }
        Criterion {
            sample_size: 10,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (builder-style, like criterion).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.selected(id) {
            return;
        }
        if self.test_mode {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
                test_mode: true,
            };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        // a few samples; Bencher::iter handles warm-up internally on the
        // first call, so samples after the first are already warm
        let samples = self.sample_size.clamp(2, 10);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
                test_mode: false,
            };
            f(&mut b);
            if b.iters > 0 {
                per_iter.push(b.per_iter_ns());
            }
        }
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter.first().copied().unwrap_or(0.0);
        let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        println!(
            "{id:<48} min {:>12}  median {:>12}  mean {:>12}",
            format_ns(min),
            format_ns(median),
            format_ns(mean)
        );
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        self.run_one(id, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// criterion's post-run hook; nothing to finalize here.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group the way criterion does.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            test_mode: false,
        };
        b.iter(|| black_box(2u64 + 2));
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            test_mode: true,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("threads", 8);
        assert_eq!(id.id, "threads/8");
    }
}
