//! Offline stand-in for the `crossbeam` crate (see `crates/shims/`).
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`channel`] — multi-producer multi-consumer unbounded channels, built
//!   from `std::sync::mpsc` with the receiver behind a shared mutex so it
//!   can be cloned across worker threads.
//! * [`thread::scope`] (also re-exported as [`scope`]) — scoped threads over
//!   `std::thread::scope`, with crossbeam's closure signature (`|scope| ...`)
//!   and `Result`-returning scope call.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half; cloneable like crossbeam's.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when the receiving side disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when every sender disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half; cloneable (workers share one queue).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.try_recv().map_err(|_| RecvError)
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

pub mod thread {
    use std::any::Any;

    /// Result of a scope: `Err` only if a child panicked (std's scope
    /// propagates child panics by panicking, so in practice this is `Ok`).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle mirroring `crossbeam::thread::Scope`: `spawn` passes
    /// the scope back into the closure so children can spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing spawned threads are joined
    /// before return.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn channel_fan_in_fan_out() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(16).collect();
        super::scope(|s| {
            for chunk in chunks {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v += 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn nested_spawn_from_child() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 2);
    }
}
