//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external crates the seed declared are provided as in-tree
//! shims (see `crates/shims/`). This one wraps `std::sync` primitives behind
//! parking_lot's poison-free API: `lock()`, `read()`, and `write()` return
//! guards directly. A poisoned std lock (a panic while holding the guard)
//! aborts the caller with an explicit message instead of returning `Err`,
//! which matches how the workspace treats poisoning anyway — as a bug.

use std::sync;

/// A mutual-exclusion primitive with parking_lot's guard-returning `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's guard-returning `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
