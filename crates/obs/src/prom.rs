//! Prometheus text exposition (version 0.0.4) — counters, observation
//! statistics, and latency histograms as scrape-able metrics, one
//! `# HELP`/`# TYPE` header pair per family.
//!
//! Metric names are the telemetry names sanitized to `[a-zA-Z0-9_]` and
//! prefixed `benchpark_`; counters gain the conventional `_total` suffix.
//! Observation streams expose mean/min/max/last as a gauge with a `stat`
//! label plus an explicit `_samples` count. Telemetry histograms become
//! native Prometheus histograms: cumulative `_bucket{le="..."}` series over
//! the power-of-two boundaries, plus `_sum` and `_count`. Label *values*
//! are escaped per the exposition format (`\\`, `\"`, `\n`) — a tenant name
//! is admission-validated today, but the exporter must not rely on that.
//! Canonical mode skips volatile observation streams so the exposition is
//! byte-identical across runs.

use crate::Timebase;
use benchpark_telemetry::{HistogramStats, TelemetryReport, HIST_BUCKET_COUNT};
use benchpark_yamlite::json_number;
use std::fmt::Write as _;

/// Sanitizes a telemetry name into a Prometheus metric name component.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escapes a label *value* per the text exposition format: backslash,
/// double quote, and line feed must be escaped; everything else passes
/// through verbatim.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Emits one histogram's `_bucket`/`_sum`/`_count` lines. `labels` is
/// either empty or a pre-escaped `tenant="..."` prefix for each series.
/// Per-bucket counts become cumulative here (the exposition contract);
/// trailing all-empty finite buckets are trimmed, `+Inf` is always present.
fn histogram_series(out: &mut String, metric: &str, labels: &str, hist: &HistogramStats) {
    let last = (0..HIST_BUCKET_COUNT)
        .rev()
        .find(|&i| hist.buckets[i] > 0)
        .map(|i| i + 1)
        .unwrap_or(0);
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for i in 0..last {
        cumulative += hist.buckets[i];
        let le = HistogramStats::bucket_le(i);
        let _ = writeln!(
            out,
            "{metric}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "{metric}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        hist.count
    );
    if labels.is_empty() {
        let _ = writeln!(out, "{metric}_sum {}", hist.sum);
        let _ = writeln!(out, "{metric}_count {}", hist.count);
    } else {
        let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", hist.sum);
        let _ = writeln!(out, "{metric}_count{{{labels}}} {}", hist.count);
    }
}

/// Splits a `serve.tenant.<tenant>.<metric>` counter name into its tenant
/// label and metric remainder. Tenant ids are `[a-z0-9_-]+` (enforced at
/// admission), so the first dot after the prefix ends the tenant.
fn tenant_series(name: &str) -> Option<(&str, &str)> {
    let rest = name.strip_prefix("serve.tenant.")?;
    let (tenant, metric) = rest.split_once('.')?;
    if tenant.is_empty() || metric.is_empty() {
        return None;
    }
    Some((tenant, metric))
}

/// Renders counters and observations as Prometheus text exposition.
///
/// Per-tenant serve counters (`serve.tenant.<tenant>.<metric>`) are
/// exported as one labeled family per metric —
/// `benchpark_serve_<metric>_total{tenant="<tenant>"}` — rather than one
/// flat metric per tenant, so a dashboard can aggregate or filter across
/// tenants. All other counters keep their flat names, byte-for-byte.
pub fn prometheus_text(report: &TelemetryReport, timebase: Timebase) -> String {
    let mut out = String::new();
    // First pass: group per-tenant serve counters into labeled families so
    // each family gets exactly one HELP/TYPE header (exposition-format
    // requirement). A family is keyed by its full metric name, which also
    // detects collisions with flat counters: `serve.submitted` and
    // `serve.tenant.alice.submitted` both land in
    // `benchpark_serve_submitted_total` and must share one header.
    type Family<'a> = (String, &'a str, Vec<(&'a str, u64)>);
    let mut families: Vec<Family<'_>> = Vec::new();
    for (name, total) in report.sorted_counters() {
        if let Some((tenant, family)) = tenant_series(name) {
            let metric = format!("benchpark_serve_{}_total", sanitize(family));
            match families.iter_mut().find(|(m, _, _)| *m == metric) {
                Some((_, _, series)) => series.push((tenant, total)),
                None => families.push((metric, family, vec![(tenant, total)])),
            }
        }
    }
    families.sort_by(|a, b| a.0.cmp(&b.0));
    let mut emitted: Vec<bool> = vec![false; families.len()];
    for (name, total) in report.sorted_counters() {
        if tenant_series(name).is_some() {
            continue;
        }
        let metric = format!("benchpark_{}_total", sanitize(name));
        let _ = writeln!(out, "# HELP {metric} Benchpark counter `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {total}");
        // A labeled family sharing this metric name joins the same header,
        // unlabeled aggregate first.
        if let Some(pos) = families.iter().position(|(m, _, _)| *m == metric) {
            for (tenant, tenant_total) in &families[pos].2 {
                let _ = writeln!(
                    out,
                    "{metric}{{tenant=\"{}\"}} {tenant_total}",
                    escape_label(tenant)
                );
            }
            emitted[pos] = true;
        }
    }
    for (pos, (metric, family, series)) in families.iter().enumerate() {
        if emitted[pos] {
            continue;
        }
        let _ = writeln!(
            out,
            "# HELP {metric} Benchpark per-tenant serve counter `{family}`."
        );
        let _ = writeln!(out, "# TYPE {metric} counter");
        for (tenant, total) in series {
            let _ = writeln!(
                out,
                "{metric}{{tenant=\"{}\"}} {total}",
                escape_label(tenant)
            );
        }
    }
    // Histograms: per-tenant `serve.tenant.<t>.<metric>` histograms merge
    // into one labeled family per metric (`benchpark_serve_<metric>` with a
    // `tenant` label), everything else exports under its flat name.
    type HistFamily<'a> = (String, &'a str, Vec<(&'a str, &'a HistogramStats)>);
    let mut hist_families: Vec<HistFamily<'_>> = Vec::new();
    for (name, hist) in report.sorted_histograms() {
        if let Some((tenant, family)) = tenant_series(name) {
            let metric = format!("benchpark_serve_{}", sanitize(family));
            match hist_families.iter_mut().find(|(m, _, _)| *m == metric) {
                Some((_, _, series)) => series.push((tenant, hist)),
                None => hist_families.push((metric, family, vec![(tenant, hist)])),
            }
        }
    }
    hist_families.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, hist) in report.sorted_histograms() {
        if tenant_series(name).is_some() {
            continue;
        }
        let metric = format!("benchpark_{}", sanitize(name));
        let _ = writeln!(
            out,
            "# HELP {metric} Benchpark histogram `{name}` (power-of-two buckets)."
        );
        let _ = writeln!(out, "# TYPE {metric} histogram");
        histogram_series(&mut out, &metric, "", hist);
    }
    for (metric, family, series) in &hist_families {
        let _ = writeln!(
            out,
            "# HELP {metric} Benchpark per-tenant serve histogram `{family}` (power-of-two buckets)."
        );
        let _ = writeln!(out, "# TYPE {metric} histogram");
        for (tenant, hist) in series {
            let labels = format!("tenant=\"{}\"", escape_label(tenant));
            histogram_series(&mut out, metric, &labels, hist);
        }
    }
    for (name, stats) in report.sorted_observations() {
        if timebase == Timebase::Canonical && report.is_volatile_observation(name) {
            continue;
        }
        let metric = format!("benchpark_{}", sanitize(name));
        let _ = writeln!(
            out,
            "# HELP {metric} Benchpark observation `{name}` (aggregated samples)."
        );
        let _ = writeln!(out, "# TYPE {metric} gauge");
        for (stat, value) in [
            ("mean", stats.mean()),
            ("min", stats.min),
            ("max", stats.max),
            ("last", stats.last),
        ] {
            let _ = writeln!(out, "{metric}{{stat=\"{stat}\"}} {}", json_number(value));
        }
        let _ = writeln!(out, "# HELP {metric}_samples Sample count for `{name}`.");
        let _ = writeln!(out, "# TYPE {metric}_samples counter");
        let _ = writeln!(out, "{metric}_samples {}", stats.count);
    }
    out
}
