//! Prometheus text exposition (version 0.0.4) — counters and observation
//! statistics as scrape-able metrics, one `# HELP`/`# TYPE` header pair per
//! family.
//!
//! Metric names are the telemetry names sanitized to `[a-zA-Z0-9_]` and
//! prefixed `benchpark_`; counters gain the conventional `_total` suffix.
//! Observation streams expose mean/min/max/last as a gauge with a `stat`
//! label plus an explicit `_samples` count. Canonical mode skips volatile
//! observation streams so the exposition is byte-identical across runs.

use crate::Timebase;
use benchpark_telemetry::TelemetryReport;
use benchpark_yamlite::json_number;
use std::fmt::Write as _;

/// Sanitizes a telemetry name into a Prometheus metric name component.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Splits a `serve.tenant.<tenant>.<metric>` counter name into its tenant
/// label and metric remainder. Tenant ids are `[a-z0-9_-]+` (enforced at
/// admission), so the first dot after the prefix ends the tenant.
fn tenant_series(name: &str) -> Option<(&str, &str)> {
    let rest = name.strip_prefix("serve.tenant.")?;
    let (tenant, metric) = rest.split_once('.')?;
    if tenant.is_empty() || metric.is_empty() {
        return None;
    }
    Some((tenant, metric))
}

/// Renders counters and observations as Prometheus text exposition.
///
/// Per-tenant serve counters (`serve.tenant.<tenant>.<metric>`) are
/// exported as one labeled family per metric —
/// `benchpark_serve_<metric>_total{tenant="<tenant>"}` — rather than one
/// flat metric per tenant, so a dashboard can aggregate or filter across
/// tenants. All other counters keep their flat names, byte-for-byte.
pub fn prometheus_text(report: &TelemetryReport, timebase: Timebase) -> String {
    let mut out = String::new();
    // First pass: group per-tenant serve counters into labeled families so
    // each family gets exactly one HELP/TYPE header (exposition-format
    // requirement). A family is keyed by its full metric name, which also
    // detects collisions with flat counters: `serve.submitted` and
    // `serve.tenant.alice.submitted` both land in
    // `benchpark_serve_submitted_total` and must share one header.
    type Family<'a> = (String, &'a str, Vec<(&'a str, u64)>);
    let mut families: Vec<Family<'_>> = Vec::new();
    for (name, total) in report.sorted_counters() {
        if let Some((tenant, family)) = tenant_series(name) {
            let metric = format!("benchpark_serve_{}_total", sanitize(family));
            match families.iter_mut().find(|(m, _, _)| *m == metric) {
                Some((_, _, series)) => series.push((tenant, total)),
                None => families.push((metric, family, vec![(tenant, total)])),
            }
        }
    }
    families.sort_by(|a, b| a.0.cmp(&b.0));
    let mut emitted: Vec<bool> = vec![false; families.len()];
    for (name, total) in report.sorted_counters() {
        if tenant_series(name).is_some() {
            continue;
        }
        let metric = format!("benchpark_{}_total", sanitize(name));
        let _ = writeln!(out, "# HELP {metric} Benchpark counter `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {total}");
        // A labeled family sharing this metric name joins the same header,
        // unlabeled aggregate first.
        if let Some(pos) = families.iter().position(|(m, _, _)| *m == metric) {
            for (tenant, tenant_total) in &families[pos].2 {
                let _ = writeln!(out, "{metric}{{tenant=\"{tenant}\"}} {tenant_total}");
            }
            emitted[pos] = true;
        }
    }
    for (pos, (metric, family, series)) in families.iter().enumerate() {
        if emitted[pos] {
            continue;
        }
        let _ = writeln!(
            out,
            "# HELP {metric} Benchpark per-tenant serve counter `{family}`."
        );
        let _ = writeln!(out, "# TYPE {metric} counter");
        for (tenant, total) in series {
            let _ = writeln!(out, "{metric}{{tenant=\"{tenant}\"}} {total}");
        }
    }
    for (name, stats) in report.sorted_observations() {
        if timebase == Timebase::Canonical && report.is_volatile_observation(name) {
            continue;
        }
        let metric = format!("benchpark_{}", sanitize(name));
        let _ = writeln!(
            out,
            "# HELP {metric} Benchpark observation `{name}` (aggregated samples)."
        );
        let _ = writeln!(out, "# TYPE {metric} gauge");
        for (stat, value) in [
            ("mean", stats.mean()),
            ("min", stats.min),
            ("max", stats.max),
            ("last", stats.last),
        ] {
            let _ = writeln!(out, "{metric}{{stat=\"{stat}\"}} {}", json_number(value));
        }
        let _ = writeln!(out, "# HELP {metric}_samples Sample count for `{name}`.");
        let _ = writeln!(out, "# TYPE {metric}_samples counter");
        let _ = writeln!(out, "{metric}_samples {}", stats.count);
    }
    out
}
