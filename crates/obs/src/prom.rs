//! Prometheus text exposition (version 0.0.4) — counters and observation
//! statistics as scrape-able metrics, one `# HELP`/`# TYPE` header pair per
//! family.
//!
//! Metric names are the telemetry names sanitized to `[a-zA-Z0-9_]` and
//! prefixed `benchpark_`; counters gain the conventional `_total` suffix.
//! Observation streams expose mean/min/max/last as a gauge with a `stat`
//! label plus an explicit `_samples` count. Canonical mode skips volatile
//! observation streams so the exposition is byte-identical across runs.

use crate::Timebase;
use benchpark_telemetry::TelemetryReport;
use benchpark_yamlite::json_number;
use std::fmt::Write as _;

/// Sanitizes a telemetry name into a Prometheus metric name component.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders counters and observations as Prometheus text exposition.
pub fn prometheus_text(report: &TelemetryReport, timebase: Timebase) -> String {
    let mut out = String::new();
    for (name, total) in report.sorted_counters() {
        let metric = format!("benchpark_{}_total", sanitize(name));
        let _ = writeln!(out, "# HELP {metric} Benchpark counter `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {total}");
    }
    for (name, stats) in report.sorted_observations() {
        if timebase == Timebase::Canonical && report.is_volatile_observation(name) {
            continue;
        }
        let metric = format!("benchpark_{}", sanitize(name));
        let _ = writeln!(
            out,
            "# HELP {metric} Benchpark observation `{name}` (aggregated samples)."
        );
        let _ = writeln!(out, "# TYPE {metric} gauge");
        for (stat, value) in [
            ("mean", stats.mean()),
            ("min", stats.min),
            ("max", stats.max),
            ("last", stats.last),
        ] {
            let _ = writeln!(out, "{metric}{{stat=\"{stat}\"}} {}", json_number(value));
        }
        let _ = writeln!(out, "# HELP {metric}_samples Sample count for `{name}`.");
        let _ = writeln!(out, "# TYPE {metric}_samples counter");
        let _ = writeln!(out, "{metric}_samples {}", stats.count);
    }
    out
}
