//! Canonical JSON serialization of a run's experiment results — the
//! `results.json` half of the `--export` bundle.
//!
//! Unlike the telemetry exports this one is about *what was measured*: every
//! FOM, criterion, and variable of every experiment, each result annotated
//! with its content-addressed fingerprint and its `cached` provenance flag
//! (`true` when the result was spliced from an earlier ledger record instead
//! of re-measured — incremental re-benchmarking). Emission is fully
//! deterministic (fixed field order, sorted maps): everything except the
//! `cached` provenance flags is byte-identical between a measured run and
//! the cached replay that splices it, which is what lets CI diff them.

use benchpark_ramble::ExperimentResult;
use benchpark_yamlite::{emit_json, Map, Value};

/// Renders results (with their `experiment name → fingerprint hex` map) as
/// one compact JSON document.
pub fn results_to_json(results: &[ExperimentResult], fingerprints: &[(String, String)]) -> String {
    let fingerprint_of = |experiment: &str| {
        fingerprints
            .iter()
            .find(|(name, _)| name == experiment)
            .map(|(_, hex)| hex.clone())
    };
    let mut root = Map::new();
    root.insert("schema", Value::Int(1));
    let mut entries = Vec::new();
    for result in results {
        let mut entry = Map::new();
        entry.insert("experiment", Value::str(result.experiment.clone()));
        entry.insert(
            "fingerprint",
            fingerprint_of(&result.experiment)
                .map(Value::str)
                .unwrap_or(Value::Null),
        );
        entry.insert("application", Value::str(result.application.clone()));
        entry.insert("workload", Value::str(result.workload.clone()));
        entry.insert("status", Value::str(format!("{:?}", result.status)));
        entry.insert("cached", Value::Bool(result.cached));
        let mut foms = Map::new();
        for fom in &result.foms {
            let mut body = Map::new();
            body.insert("value", Value::str(fom.value.clone()));
            body.insert("units", Value::str(fom.units.clone()));
            foms.insert(&fom.name, Value::Map(body));
        }
        entry.insert("foms", Value::Map(foms));
        let mut criteria = Map::new();
        for (name, passed) in &result.criteria {
            criteria.insert(name, Value::Bool(*passed));
        }
        entry.insert("criteria", Value::Map(criteria));
        let mut variables = Map::new();
        for (name, value) in &result.variables {
            variables.insert(name, Value::str(value.clone()));
        }
        entry.insert("variables", Value::Map(variables));
        entries.push(Value::Map(entry));
    }
    root.insert("results", Value::Seq(entries));
    emit_json(&Value::Map(root))
}

/// Writes `results.json` into `dir` (created if missing). Returns the file
/// name written, matching the [`crate::export_all`] convention.
pub fn export_results(
    results: &[ExperimentResult],
    fingerprints: &[(String, String)],
    dir: &std::path::Path,
) -> Result<String, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join("results.json");
    std::fs::write(&path, results_to_json(results, fingerprints))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok("results.json".to_string())
}
