//! JSON serialization of a full [`TelemetryReport`] — the machine-readable
//! body of `benchpark trace --format json`, following the same convention as
//! `benchpark lint --format json` (a single JSON document on stdout).
//!
//! Unlike the canonical exports this is an *inspection* format: it includes
//! wall-clock times and volatile data, each explicitly labeled, so nothing
//! recorded is hidden.

use benchpark_telemetry::TelemetryReport;
use benchpark_yamlite::{emit_json, Map, Value};

fn attr_map(pairs: &[(String, String)]) -> Value {
    let mut map = Map::new();
    for (k, v) in pairs {
        map.insert(k, Value::str(v.clone()));
    }
    Value::Map(map)
}

/// Renders the report as one compact JSON document.
pub fn report_to_json(report: &TelemetryReport) -> String {
    let mut root = Map::new();
    root.insert("schema", Value::Int(1));

    let mut spans = Vec::new();
    for span in &report.spans {
        let mut entry = Map::new();
        entry.insert("name", Value::str(span.name.as_ref()));
        entry.insert("depth", Value::Int(span.depth as i64));
        entry.insert(
            "parent",
            span.parent
                .map(|p| Value::Int(p as i64))
                .unwrap_or(Value::Null),
        );
        entry.insert(
            "real_seconds",
            span.real_seconds.map(Value::Float).unwrap_or(Value::Null),
        );
        entry.insert(
            "virtual_seconds",
            span.virtual_seconds
                .map(Value::Float)
                .unwrap_or(Value::Null),
        );
        entry.insert("virtual_volatile", Value::Bool(span.virtual_volatile));
        if !span.attrs.is_empty() {
            entry.insert("attrs", attr_map(&span.attrs));
        }
        if !span.volatile_attrs.is_empty() {
            entry.insert("volatile_attrs", attr_map(&span.volatile_attrs));
        }
        spans.push(Value::Map(entry));
    }
    root.insert("spans", Value::Seq(spans));

    let mut counters = Map::new();
    for (name, total) in report.sorted_counters() {
        counters.insert(name, Value::Int(total as i64));
    }
    root.insert("counters", Value::Map(counters));

    let mut observations = Map::new();
    for (name, stats) in report.sorted_observations() {
        let mut entry = Map::new();
        entry.insert("count", Value::Int(stats.count as i64));
        entry.insert("mean", Value::Float(stats.mean()));
        entry.insert("min", Value::Float(stats.min));
        entry.insert("max", Value::Float(stats.max));
        entry.insert("last", Value::Float(stats.last));
        entry.insert(
            "volatile",
            Value::Bool(report.is_volatile_observation(name)),
        );
        observations.insert(name, Value::Map(entry));
    }
    root.insert("observations", Value::Map(observations));

    root.insert("journal_events", Value::Int(report.journal.len() as i64));
    root.insert("max_span_depth", Value::Int(report.max_depth() as i64));
    emit_json(&Value::Map(root))
}
