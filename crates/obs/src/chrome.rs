//! Chrome trace-event JSON — loadable in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`.
//!
//! The trace-event format is a JSON object `{"traceEvents": [...]}` where
//! each event carries a phase (`ph`), a timestamp in microseconds (`ts`),
//! process/thread ids, and optional `args`. We emit:
//!
//! * `B`/`E` (begin/end) pairs for spans in canonical mode, at journal ticks;
//! * `X` (complete) events for spans in wall mode, at real microseconds;
//! * `X` events on per-worker *virtual* thread tracks (wall mode only), laid
//!   out from each task span's `slot.start`/`slot.finish`/`worker` attrs —
//!   the engine's simulated schedule rendered as if each worker were a
//!   thread;
//! * `C` (counter) events for counter increments and observation samples;
//! * `M` (metadata) events naming the processes and virtual worker threads.

use crate::Timebase;
use benchpark_telemetry::{Event, SpanRecord, TelemetryReport};
use benchpark_yamlite::{emit_json, Map, Value};

/// Process id for the real timeline; thread 1 carries the span stack.
const PID_WALL: i64 = 1;
/// Process id for the virtual schedule; one thread per engine worker.
const PID_VIRTUAL: i64 = 2;

/// Renders the report as Chrome trace-event JSON.
///
/// Canonical mode timestamps are journal tick indices (dimensionless, shown
/// by viewers as microseconds) and all volatile data is dropped; the output
/// is byte-identical across runs of the same workload. Wall mode timestamps
/// are real microseconds since the recorder epoch, volatile data included,
/// plus the virtual per-worker tracks.
pub fn chrome_trace(report: &TelemetryReport, timebase: Timebase) -> String {
    let events = match timebase {
        Timebase::Canonical => canonical_events(report),
        Timebase::Wall => wall_events(report),
    };
    let mut root = Map::new();
    root.insert("traceEvents", Value::Seq(events));
    root.insert("displayTimeUnit", Value::str("ms"));
    emit_json(&Value::Map(root))
}

fn base_event(ph: &str, name: &str, ts: Value, pid: i64, tid: i64) -> Map {
    let mut ev = Map::new();
    ev.insert("ph", Value::str(ph));
    ev.insert("name", Value::str(name));
    ev.insert("ts", ts);
    ev.insert("pid", Value::Int(pid));
    ev.insert("tid", Value::Int(tid));
    ev
}

fn counter_event(name: &str, ts: Value, value: Value, pid: i64) -> Value {
    let mut ev = base_event("C", name, ts, pid, 0);
    let mut args = Map::new();
    args.insert("value", value);
    ev.insert("args", Value::Map(args));
    Value::Map(ev)
}

/// Span `args`: stable attrs always; volatile attrs and volatile virtual
/// time only in wall mode.
fn span_args(span: &SpanRecord, timebase: Timebase) -> Option<Value> {
    let mut args = Map::new();
    for (k, v) in &span.attrs {
        args.insert(k, Value::str(v.clone()));
    }
    if timebase == Timebase::Wall {
        for (k, v) in &span.volatile_attrs {
            args.insert(k, Value::str(v.clone()));
        }
    }
    if let Some(virt) = span.virtual_seconds {
        if !span.virtual_volatile || timebase == Timebase::Wall {
            args.insert("virtual_seconds", Value::Float(virt));
        }
    }
    if args.is_empty() {
        None
    } else {
        Some(Value::Map(args))
    }
}

/// Canonical: replay the journal with tick indices as timestamps. The i-th
/// `SpanStart` is `spans[i]`; `SpanEnd` closes the innermost open span.
fn canonical_events(report: &TelemetryReport) -> Vec<Value> {
    let mut events = Vec::new();
    let mut next_span = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    for (tick, event) in report.journal.iter().enumerate() {
        let ts = Value::Int(tick as i64);
        match event {
            Event::SpanStart { name, .. } => {
                let mut ev = base_event("B", name, ts, PID_WALL, 1);
                if let Some(span) = report.spans.get(next_span) {
                    if let Some(args) = span_args(span, Timebase::Canonical) {
                        ev.insert("args", args);
                    }
                    stack.push(next_span);
                    next_span += 1;
                }
                events.push(Value::Map(ev));
            }
            Event::SpanEnd { name, .. } => {
                stack.pop();
                events.push(Value::Map(base_event("E", name, ts, PID_WALL, 1)));
            }
            Event::Counter { name, total, .. } => {
                events.push(counter_event(name, ts, Value::Int(*total as i64), PID_WALL));
            }
            Event::Observe { name, value, .. } => {
                if !report.is_volatile_observation(name) {
                    events.push(counter_event(name, ts, Value::Float(*value), PID_WALL));
                }
            }
        }
    }
    events
}

/// Wall: spans as complete (`X`) events in real microseconds, counters and
/// observations at their journal wall times, plus the virtual schedule as
/// per-worker thread tracks.
fn wall_events(report: &TelemetryReport) -> Vec<Value> {
    let us = |seconds: f64| Value::Float(seconds * 1e6);
    let mut events = Vec::new();
    let mut process_meta = |pid: i64, label: &str| {
        let mut ev = base_event("M", "process_name", Value::Int(0), pid, 0);
        let mut args = Map::new();
        args.insert("name", Value::str(label));
        ev.insert("args", Value::Map(args));
        events.push(Value::Map(ev));
    };
    process_meta(PID_WALL, "benchpark (wall clock)");
    process_meta(PID_VIRTUAL, "engine schedule (virtual time)");

    let mut workers_seen: Vec<i64> = Vec::new();
    for span in &report.spans {
        let Some(real) = span.real_seconds else {
            continue;
        };
        let mut ev = base_event("X", &span.name, us(span.started_at), PID_WALL, 1);
        ev.insert("dur", us(real));
        if let Some(args) = span_args(span, Timebase::Wall) {
            ev.insert("args", args);
        }
        events.push(Value::Map(ev));

        // Virtual worker track: any span carrying a scheduled slot. The slot
        // attrs are stable under `with_stable_plan`, volatile otherwise.
        let lookup = |key: &str| span.attr(key).or_else(|| span.volatile_attr(key));
        let slot = (
            lookup("slot.start").and_then(|v| v.parse::<f64>().ok()),
            lookup("slot.finish").and_then(|v| v.parse::<f64>().ok()),
            lookup("worker").and_then(|v| v.parse::<i64>().ok()),
        );
        if let (Some(start), Some(finish), Some(worker)) = slot {
            let tid = worker + 1;
            if !workers_seen.contains(&tid) {
                workers_seen.push(tid);
            }
            let mut ev = base_event("X", &span.name, us(start), PID_VIRTUAL, tid);
            ev.insert("dur", us((finish - start).max(0.0)));
            if let Some(args) = span_args(span, Timebase::Wall) {
                ev.insert("args", args);
            }
            events.push(Value::Map(ev));
        }
    }
    workers_seen.sort_unstable();
    for tid in workers_seen {
        let mut ev = base_event("M", "thread_name", Value::Int(0), PID_VIRTUAL, tid);
        let mut args = Map::new();
        args.insert("name", Value::str(format!("worker {}", tid - 1)));
        ev.insert("args", Value::Map(args));
        events.push(Value::Map(ev));
    }

    for event in &report.journal {
        match event {
            Event::Counter {
                at, name, total, ..
            } => {
                events.push(counter_event(
                    name,
                    us(*at),
                    Value::Int(*total as i64),
                    PID_WALL,
                ));
            }
            Event::Observe { at, name, value } => {
                events.push(counter_event(name, us(*at), Value::Float(*value), PID_WALL));
            }
            _ => {}
        }
    }
    events
}
