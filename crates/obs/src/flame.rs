//! Folded-stack flamegraph text — the input format of Brendan Gregg's
//! `flamegraph.pl` and of speedscope: one line per unique span-tree path,
//! `root;child;grandchild self_value`.
//!
//! The value on each line is the span's *self* time: its own extent minus
//! the extents of its direct children (clamped at zero — overlapping guards
//! can otherwise produce small negatives). Canonical mode measures extents
//! in journal ticks, wall mode in real microseconds.

use crate::{span_ticks, Timebase};
use benchpark_telemetry::TelemetryReport;
use std::collections::BTreeMap;

/// Renders the span tree as folded stacks, aggregated per path and sorted
/// lexicographically (the order `flamegraph.pl` expects from `sort`).
pub fn folded_stacks(report: &TelemetryReport, timebase: Timebase) -> String {
    let extents: Vec<f64> = match timebase {
        Timebase::Canonical => span_ticks(report)
            .into_iter()
            .map(|(start, end)| end.saturating_sub(start) as f64)
            .collect(),
        Timebase::Wall => report
            .spans
            .iter()
            .map(|s| s.real_seconds.unwrap_or(0.0) * 1e6)
            .collect(),
    };

    let mut child_total = vec![0.0f64; report.spans.len()];
    for (index, span) in report.spans.iter().enumerate() {
        if let Some(parent) = span.parent {
            child_total[parent] += extents[index];
        }
    }

    let mut paths: Vec<String> = Vec::with_capacity(report.spans.len());
    for span in &report.spans {
        let path = match span.parent {
            Some(parent) => format!("{};{}", paths[parent], span.name),
            None => span.name.to_string(),
        };
        paths.push(path);
    }

    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (index, path) in paths.into_iter().enumerate() {
        let self_value = (extents[index] - child_total[index]).max(0.0).round() as u64;
        *folded.entry(path).or_insert(0) += self_value;
    }

    let mut out = String::new();
    for (path, value) in folded {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}
