//! `benchpark-obs` — exporters that turn a [`TelemetryReport`] into standard
//! observability artifacts, plus the `--export` bundle writer.
//!
//! Three formats, chosen because each one feeds an existing off-the-shelf
//! viewer with zero glue:
//!
//! * **Chrome trace-event JSON** ([`chrome_trace`]) — loads directly into
//!   Perfetto / `chrome://tracing`. Spans become duration events, counters
//!   and observations become counter tracks, and the engine's virtual
//!   schedule becomes per-worker thread tracks.
//! * **Folded stacks** ([`folded_stacks`]) — one `a;b;c value` line per
//!   span-tree path, the input format of `flamegraph.pl` and speedscope.
//! * **Prometheus text exposition** ([`prometheus_text`]) — counters and
//!   observation statistics as scrape-able metrics.
//!
//! Every exporter takes a [`Timebase`]:
//!
//! * [`Timebase::Wall`] renders real microseconds — what actually happened,
//!   including thread-pool jitter. Useful for profiling, useless for
//!   comparing runs.
//! * [`Timebase::Canonical`] replaces wall clocks with *journal ticks* (the
//!   index of each event in the telemetry journal) and drops everything
//!   flagged volatile (worker-count- or wall-clock-dependent observations,
//!   virtual times, and span attributes). Two runs of the same workload
//!   produce byte-identical canonical exports regardless of `--jobs` or
//!   machine speed — which is what makes them diffable in CI.

mod chrome;
mod flame;
mod prom;
mod report_json;
mod results_json;

pub use chrome::chrome_trace;
pub use flame::folded_stacks;
pub use prom::prometheus_text;
pub use report_json::report_to_json;
pub use results_json::{export_results, results_to_json};

use benchpark_telemetry::TelemetryReport;
use std::path::Path;

/// Which clock an exporter renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timebase {
    /// Real wall-clock microseconds; includes volatile data. Not comparable
    /// across runs.
    Wall,
    /// Journal tick indices; volatile data excluded. Byte-identical across
    /// runs of the same workload.
    Canonical,
}

/// File names written by [`export_all`], in write order.
pub const EXPORT_FILES: [&str; 4] = [
    "trace.json",
    "trace.wall.json",
    "flame.folded",
    "metrics.prom",
];

/// Writes the full export bundle into `dir` (created if missing):
///
/// * `trace.json` — canonical Chrome trace (diffable across runs)
/// * `trace.wall.json` — wall-clock Chrome trace with virtual worker tracks
/// * `flame.folded` — canonical folded stacks
/// * `metrics.prom` — canonical Prometheus text exposition
///
/// Returns the list of file names written.
pub fn export_all(report: &TelemetryReport, dir: &Path) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let contents = [
        chrome_trace(report, Timebase::Canonical),
        chrome_trace(report, Timebase::Wall),
        folded_stacks(report, Timebase::Canonical),
        prometheus_text(report, Timebase::Canonical),
    ];
    let mut written = Vec::new();
    for (name, body) in EXPORT_FILES.iter().zip(contents) {
        let path = dir.join(name);
        std::fs::write(&path, body).map_err(|e| format!("write {}: {e}", path.display()))?;
        written.push(name.to_string());
    }
    Ok(written)
}

/// Walks the journal and pairs every `SpanStart` with its span record (the
/// i-th `SpanStart` event is `spans[i]` — both are appended under the same
/// lock) and its open/close ticks. A span still open when the report was
/// snapshotted closes at `journal.len()`.
///
/// Returns `(start_tick, end_tick)` per span, indexed like `report.spans`.
pub(crate) fn span_ticks(report: &TelemetryReport) -> Vec<(usize, usize)> {
    use benchpark_telemetry::Event;
    let mut ticks: Vec<(usize, usize)> = report
        .spans
        .iter()
        .map(|_| (0, report.journal.len()))
        .collect();
    let mut next_span = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    for (tick, event) in report.journal.iter().enumerate() {
        match event {
            Event::SpanStart { .. } if next_span < ticks.len() => {
                ticks[next_span].0 = tick;
                stack.push(next_span);
                next_span += 1;
            }
            Event::SpanEnd { .. } => {
                if let Some(index) = stack.pop() {
                    ticks[index].1 = tick;
                }
            }
            _ => {}
        }
    }
    ticks
}

#[cfg(test)]
mod tests;
