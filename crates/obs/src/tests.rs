use crate::{
    chrome_trace, export_all, folded_stacks, prometheus_text, report_to_json, span_ticks, Timebase,
    EXPORT_FILES,
};
use benchpark_telemetry::{TelemetryReport, TelemetrySink};
use benchpark_yamlite::{parse_json, Value};

/// A small, fully deterministic report: two nested spans plus a sibling,
/// one counter, one stable and one volatile observation.
fn sample_report() -> TelemetryReport {
    let sink = TelemetrySink::recording();
    {
        let root = sink.span("pipeline.run");
        root.set_attr("benchmark", "amg2023");
        {
            let child = sink.span("install");
            child.set_virtual(12.0);
            child.set_attr("packages", 3);
            child.set_attr_volatile("workers", 4);
            sink.incr("cache.hit", 2);
            sink.observe("queue.depth", 5.0);
            sink.observe_volatile("install.makespan_seconds", 7.5);
        }
        let _sibling = sink.span("analyze");
    }
    sink.report().unwrap()
}

#[test]
fn span_ticks_pair_starts_with_ends() {
    let report = sample_report();
    let ticks = span_ticks(&report);
    assert_eq!(ticks.len(), 3);
    // journal: B(run) B(install) C O O E(install) B(analyze) E(analyze) E(run)
    assert_eq!(ticks[0], (0, 8)); // pipeline.run spans the whole journal
    assert_eq!(ticks[1], (1, 5)); // install closes after the three samples
    assert_eq!(ticks[2], (6, 7)); // analyze
}

#[test]
fn canonical_chrome_trace_is_valid_json_with_tick_timestamps() {
    let report = sample_report();
    let text = chrome_trace(&report, Timebase::Canonical);
    let doc = parse_json(&text).expect("canonical trace parses");
    let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
    assert_eq!(events.len(), report.journal.len() - 1); // volatile observe dropped
                                                        // First event: B pipeline.run at tick 0 with stable args.
    let first = &events[0];
    assert_eq!(first.get("ph").and_then(Value::as_str), Some("B"));
    assert_eq!(first.get("ts").and_then(Value::as_int), Some(0));
    assert_eq!(
        first
            .get("args")
            .and_then(|a| a.get("benchmark"))
            .and_then(Value::as_str),
        Some("amg2023")
    );
    // The install span keeps its stable virtual time but not the volatile attr.
    let install = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("install"))
        .unwrap();
    let args = install.get("args").unwrap();
    assert!(args.get("virtual_seconds").is_some());
    assert!(args.get("workers").is_none());
    // No volatile observation anywhere.
    assert!(!text.contains("install.makespan_seconds"));
    // Canonical output never leaks wall-clock fields.
    assert!(!text.contains("real_seconds"));
}

#[test]
fn wall_chrome_trace_includes_volatile_data_and_durations() {
    let report = sample_report();
    let text = chrome_trace(&report, Timebase::Wall);
    let doc = parse_json(&text).expect("wall trace parses");
    let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
    let install = events
        .iter()
        .find(|e| {
            e.get("name").and_then(Value::as_str) == Some("install")
                && e.get("ph").and_then(Value::as_str) == Some("X")
        })
        .unwrap();
    assert!(install.get("dur").is_some());
    assert_eq!(
        install
            .get("args")
            .and_then(|a| a.get("workers"))
            .and_then(Value::as_str),
        Some("4")
    );
    assert!(text.contains("install.makespan_seconds"));
}

#[test]
fn wall_chrome_trace_lays_out_virtual_worker_tracks() {
    let sink = TelemetrySink::recording();
    {
        let span = sink.span("engine.task.a");
        span.set_attr("slot.start", "0");
        span.set_attr("slot.finish", "2.5");
        span.set_attr("worker", "1");
    }
    let text = chrome_trace(&sink.report().unwrap(), Timebase::Wall);
    let doc = parse_json(&text).unwrap();
    let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
    // A second X event for the task on pid 2 (virtual), tid = worker + 1.
    let virtual_ev = events
        .iter()
        .find(|e| {
            e.get("ph").and_then(Value::as_str) == Some("X")
                && e.get("pid").and_then(Value::as_int) == Some(2)
        })
        .expect("virtual track event");
    assert_eq!(virtual_ev.get("tid").and_then(Value::as_int), Some(2));
    assert_eq!(virtual_ev.get("dur").and_then(Value::as_float), Some(2.5e6));
    // And a thread_name metadata record for the worker.
    assert!(text.contains("thread_name"));
    assert!(text.contains("worker 1"));
}

#[test]
fn folded_stacks_aggregate_self_ticks_per_path() {
    let report = sample_report();
    let text = folded_stacks(&report, Timebase::Canonical);
    let lines: Vec<&str> = text.lines().collect();
    // Sorted lexicographically by path.
    assert_eq!(
        lines,
        vec![
            "pipeline.run 3", // extent 8 - install 4 - analyze 1
            "pipeline.run;analyze 1",
            "pipeline.run;install 4",
        ]
    );
}

#[test]
fn folded_stacks_merge_repeated_paths() {
    let sink = TelemetrySink::recording();
    {
        let _root = sink.span("root");
        for _ in 0..3 {
            let _child = sink.span("step");
        }
    }
    let text = folded_stacks(&sink.report().unwrap(), Timebase::Canonical);
    // Three `step` spans fold into one line with summed ticks.
    assert_eq!(
        text.lines().filter(|l| l.starts_with("root;step ")).count(),
        1
    );
    assert!(text.contains("root;step 3"));
}

#[test]
fn prometheus_text_exposes_counters_and_skips_volatile_in_canonical() {
    let report = sample_report();
    let text = prometheus_text(&report, Timebase::Canonical);
    assert!(text.contains("# TYPE benchpark_cache_hit_total counter"));
    assert!(text.contains("benchpark_cache_hit_total 2"));
    assert!(text.contains("benchpark_queue_depth{stat=\"mean\"} 5.0"));
    assert!(text.contains("benchpark_queue_depth_samples 1"));
    assert!(!text.contains("makespan"));
    let wall = prometheus_text(&report, Timebase::Wall);
    assert!(wall.contains("benchpark_install_makespan_seconds{stat=\"last\"} 7.5"));
}

#[test]
fn report_json_round_trips_and_labels_volatility() {
    let report = sample_report();
    let text = report_to_json(&report);
    let doc = parse_json(&text).expect("report json parses");
    assert_eq!(doc.get("schema").and_then(Value::as_int), Some(1));
    let spans = doc.get("spans").and_then(Value::as_seq).unwrap();
    assert_eq!(spans.len(), 3);
    let obs = doc.get("observations").unwrap();
    assert_eq!(
        obs.get("install.makespan_seconds")
            .and_then(|o| o.get("volatile"))
            .and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        obs.get("queue.depth")
            .and_then(|o| o.get("volatile"))
            .and_then(Value::as_bool),
        Some(false)
    );
}

#[test]
fn export_all_writes_the_bundle() {
    let dir = std::env::temp_dir().join(format!("benchpark-obs-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = sample_report();
    let written = export_all(&report, &dir).expect("export succeeds");
    assert_eq!(written, EXPORT_FILES.to_vec());
    for name in EXPORT_FILES {
        let body = std::fs::read_to_string(dir.join(name)).unwrap();
        assert!(!body.is_empty(), "{name} is empty");
    }
    // The canonical trace parses as JSON.
    let trace = std::fs::read_to_string(dir.join("trace.json")).unwrap();
    parse_json(&trace).expect("exported trace parses");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn canonical_exports_are_reproducible_across_reruns() {
    // Two identically-shaped recordings taken at different wall times
    // produce byte-identical canonical artifacts.
    let (a, b) = (sample_report(), sample_report());
    assert_eq!(
        chrome_trace(&a, Timebase::Canonical),
        chrome_trace(&b, Timebase::Canonical)
    );
    assert_eq!(
        folded_stacks(&a, Timebase::Canonical),
        folded_stacks(&b, Timebase::Canonical)
    );
    assert_eq!(
        prometheus_text(&a, Timebase::Canonical),
        prometheus_text(&b, Timebase::Canonical)
    );
}

#[test]
fn prometheus_text_labels_per_tenant_serve_counters() {
    let sink = TelemetrySink::recording();
    sink.incr("serve.submitted", 7);
    sink.incr("serve.tenant.alice.submitted", 4);
    sink.incr("serve.tenant.bob.submitted", 3);
    sink.incr("serve.tenant.alice.completed", 4);
    let text = prometheus_text(&sink.report().unwrap(), Timebase::Canonical);
    // Flat counters keep their names.
    assert!(text.contains("benchpark_serve_submitted_total 7"));
    // Per-tenant counters collapse into one labeled family per metric...
    assert!(text.contains("benchpark_serve_submitted_total{tenant=\"alice\"} 4"));
    assert!(text.contains("benchpark_serve_submitted_total{tenant=\"bob\"} 3"));
    assert!(text.contains("benchpark_serve_completed_total{tenant=\"alice\"} 4"));
    // ...with exactly one HELP/TYPE header pair per family, even when a
    // flat counter shares the family name (unlabeled aggregate + labeled
    // series under one header).
    let headers = text
        .matches("# TYPE benchpark_serve_submitted_total counter")
        .count();
    assert_eq!(headers, 1);
    assert_eq!(
        text.matches("# HELP benchpark_serve_completed_total ")
            .count(),
        1
    );
    let flat = text.find("benchpark_serve_submitted_total 7").unwrap();
    let labeled = text
        .find("benchpark_serve_submitted_total{tenant=\"alice\"}")
        .unwrap();
    assert!(flat < labeled);
}

// --- PR 10: label escaping and histogram exposition ---

/// Label values with exposition-format metacharacters must be escaped.
/// Tenant ids are admission-validated today, but the exporter hardens
/// against whatever lands in a telemetry name; table-driven over the
/// characters the format reserves.
#[test]
fn prometheus_label_values_are_escaped() {
    let cases: [(&str, &str); 5] = [
        ("plain", "plain"),
        ("he\"llo\n", "he\\\"llo\\n"),
        ("back\\slash", "back\\\\slash"),
        ("a\nb", "a\\nb"),
        ("q\"q", "q\\\"q"),
    ];
    for (raw, want) in cases {
        let sink = TelemetrySink::recording();
        // constructed via the counter name, bypassing admission validation
        sink.incr(&format!("serve.tenant.{raw}.completed"), 3);
        let text = prometheus_text(&sink.report().unwrap(), Timebase::Canonical);
        let line = format!("benchpark_serve_completed_total{{tenant=\"{want}\"}} 3");
        assert!(text.contains(&line), "expected {line:?} in:\n{text}");
        // every emitted label value is free of raw quotes/newlines inside
        for l in text.lines() {
            assert!(!l.contains('\n'), "no raw newline can survive in one line");
        }
    }
}

#[test]
fn prometheus_histograms_expose_cumulative_buckets_sum_and_count() {
    let sink = TelemetrySink::recording();
    for v in [1u64, 2, 2, 3, 100] {
        sink.record_hist("serve.stage.queue_wait", v);
    }
    let text = prometheus_text(&sink.report().unwrap(), Timebase::Canonical);
    assert!(text.contains("# TYPE benchpark_serve_stage_queue_wait histogram"));
    // per-bucket counts become cumulative: le=1 -> 1, le=2 -> 3, le=4 -> 4,
    // then flat until le=128 catches 100
    assert!(text.contains("benchpark_serve_stage_queue_wait_bucket{le=\"1\"} 1"));
    assert!(text.contains("benchpark_serve_stage_queue_wait_bucket{le=\"2\"} 3"));
    assert!(text.contains("benchpark_serve_stage_queue_wait_bucket{le=\"4\"} 4"));
    assert!(text.contains("benchpark_serve_stage_queue_wait_bucket{le=\"128\"} 5"));
    assert!(text.contains("benchpark_serve_stage_queue_wait_bucket{le=\"+Inf\"} 5"));
    assert!(
        !text.contains("le=\"256\""),
        "trailing empty finite buckets are trimmed:\n{text}"
    );
    assert!(text.contains("benchpark_serve_stage_queue_wait_sum 108"));
    assert!(text.contains("benchpark_serve_stage_queue_wait_count 5"));

    // cumulative bucket series must be monotone nondecreasing
    let mut prev = 0u64;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("benchpark_serve_stage_queue_wait_bucket") {
            let count: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= prev, "bucket counts regressed in:\n{text}");
            prev = count;
        }
    }
}

#[test]
fn prometheus_per_tenant_histograms_share_one_family_header() {
    let sink = TelemetrySink::recording();
    sink.record_hist("serve.tenant.alice.execute", 5);
    sink.record_hist("serve.tenant.bob.execute", 300);
    let text = prometheus_text(&sink.report().unwrap(), Timebase::Canonical);
    assert_eq!(
        text.matches("# TYPE benchpark_serve_execute histogram")
            .count(),
        1,
        "one header per family:\n{text}"
    );
    assert!(text.contains("benchpark_serve_execute_bucket{tenant=\"alice\",le=\"8\"} 1"));
    assert!(text.contains("benchpark_serve_execute_bucket{tenant=\"alice\",le=\"+Inf\"} 1"));
    assert!(text.contains("benchpark_serve_execute_bucket{tenant=\"bob\",le=\"512\"} 1"));
    assert!(text.contains("benchpark_serve_execute_sum{tenant=\"alice\"} 5"));
    assert!(text.contains("benchpark_serve_execute_count{tenant=\"bob\"} 1"));
    // flat histograms and labeled families coexist
    sink.record_hist("telemetry.latency", 9);
    let text = prometheus_text(&sink.report().unwrap(), Timebase::Canonical);
    assert!(text.contains("benchpark_telemetry_latency_bucket{le=\"16\"} 1"));
}
