//! The propagation core: typed variables, preference-ordered finite domains,
//! constraints with provenance, an AC-3 worklist, and a trail.
//!
//! This is the ADR-003 shape: concretization is modeled as a constraint
//! satisfaction problem over `Variable`/`Domain`/`Constraint`, solved by
//! arc-consistency propagation with backtracking search over the pruned
//! domains. Every value ever removed from a domain is recorded on a trail
//! together with the constraint (and its human-readable [`Reason`]) that
//! removed it, so a domain wipeout can be rendered as a rustc-style
//! **justification chain** — and the same trail supports `mark`/`rewind`,
//! which is what makes both backtracking and incremental re-propagation
//! (re-solving from the propagation frontier after one constraint edit)
//! cheap.
//!
//! The solver (`solver.rs`) compiles package recipes into this model;
//! [`crate::analyze`] runs it in *eager* mode where recipe conflicts are
//! posted as n-ary nogoods and propagated, which is what powers
//! `benchpark explain` and the BP05xx lint rules.

use benchpark_spec::{Version, VersionConstraint};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Index of a variable in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct VarId(usize);

/// Index of a constraint in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConstraintId(usize);

/// What a variable ranges over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarKind {
    /// The concrete version chosen for a package.
    Version,
    /// The value of one named variant of a package.
    Variant(String),
    /// The provider package chosen for a virtual.
    Provider,
    /// The compiler entry chosen for a package.
    Compiler,
}

/// A typed variable: one choice point of the concretization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarKey {
    /// Owning package (for [`VarKind::Provider`], the *virtual* name).
    pub package: String,
    pub kind: VarKind,
}

impl VarKey {
    pub fn version(package: &str) -> VarKey {
        VarKey {
            package: package.to_string(),
            kind: VarKind::Version,
        }
    }
    pub fn variant(package: &str, name: &str) -> VarKey {
        VarKey {
            package: package.to_string(),
            kind: VarKind::Variant(name.to_string()),
        }
    }
    pub fn provider(virtual_name: &str) -> VarKey {
        VarKey {
            package: virtual_name.to_string(),
            kind: VarKind::Provider,
        }
    }
    pub fn compiler(package: &str) -> VarKey {
        VarKey {
            package: package.to_string(),
            kind: VarKind::Compiler,
        }
    }
}

impl fmt::Display for VarKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            VarKind::Version => write!(f, "{}:version", self.package),
            VarKind::Variant(name) => write!(f, "{}:variant({name})", self.package),
            VarKind::Provider => write!(f, "provider({})", self.package),
            VarKind::Compiler => write!(f, "{}:compiler", self.package),
        }
    }
}

/// A domain value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Val {
    Version(Version),
    Variant(benchpark_spec::VariantValue),
    /// Provider package names and compiler entries (`gcc@12.1.1`).
    Name(String),
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Version(v) => f.write_str(v.as_str()),
            Val::Variant(v) => write!(f, "{v}"),
            Val::Name(n) => f.write_str(n),
        }
    }
}

/// Why a constraint exists: who asked for it and what it demands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reason {
    /// The actor: `user spec \`saxpy+cuda\``, `recipe \`hypre\``,
    /// `site packages.yaml`, `external /usr/tce/cmake`, `decision`.
    pub actor: String,
    /// What it demands: `requires @3.20:`, `forces +scalapack`, …
    pub detail: String,
}

impl Reason {
    pub fn new(actor: impl Into<String>, detail: impl Into<String>) -> Reason {
        Reason {
            actor: actor.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.actor, self.detail)
    }
}

/// What a constraint demands of its variable(s).
#[derive(Debug, Clone)]
pub enum ConstraintKind {
    /// Keep only versions admitted by the constraint (a `Version` var).
    VersionIn(VersionConstraint),
    /// Keep only the listed values.
    KeepOnly(Vec<Val>),
    /// Remove the listed values.
    Exclude(Vec<Val>),
    /// Merge-constrain a variant domain with a required value
    /// (set-union semantics for multi-valued variants).
    VariantIs(benchpark_spec::VariantValue),
    /// N-ary nogood: not all literals may hold simultaneously. A literal
    /// `(var, vals)` *holds* when every remaining domain value of `var` is in
    /// `vals`. Used for recipe `conflicts(…)` in eager (analysis) mode.
    NotAll(Vec<(VarId, Vec<Val>)>),
}

/// A constraint: a demand plus the provenance that justifies it.
#[derive(Debug, Clone)]
pub struct Constraint {
    pub kind: ConstraintKind,
    pub reason: Reason,
    /// Optional `(package, message)` tag carried by recipe-conflict nogoods so
    /// a violation can be reported as the package's conflict error.
    pub tag: Option<(String, String)>,
}

/// One step of a justification chain: a constraint and what it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainStep {
    /// Rendered [`Reason`] of the responsible constraint.
    pub reason: String,
    /// Values removed from the domain by this constraint.
    pub removed: Vec<String>,
    /// Values narrowed in place (`old -> new`), for variant merges.
    pub narrowed: Vec<(String, String)>,
    /// Values admitted into the domain (open-domain overrides, resets).
    pub added: Vec<String>,
}

/// A justification chain: why a variable's domain looks the way it does —
/// and, when it is empty, why the problem is unsatisfiable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Explanation {
    /// Display key of the wiped (or explained) variable.
    pub var: String,
    /// Ordered pruning steps that emptied the domain.
    pub steps: Vec<ExplainStep>,
    /// Candidate values the domain started from.
    pub initial: Vec<String>,
    /// Set when the failure is a violated nogood rather than a wipeout:
    /// the rendered reason of the violated constraint.
    pub conflict: Option<String>,
    /// `(package, message)` of the violated recipe conflict, if any.
    pub tag: Option<(String, String)>,
}

impl Explanation {
    /// The chain as rustc-style `= note:` lines (no trailing newlines).
    pub fn notes(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.initial.is_empty() {
            out.push(format!(
                "candidates for {}: {}",
                self.var,
                self.initial.join(", ")
            ));
        }
        for step in &self.steps {
            if !step.removed.is_empty() {
                out.push(format!(
                    "{} — removed {}",
                    step.reason,
                    step.removed
                        .iter()
                        .map(|v| format!("`{v}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            for (old, new) in &step.narrowed {
                out.push(format!("{} — narrowed `{old}` to `{new}`", step.reason));
            }
            if !step.added.is_empty() {
                out.push(format!(
                    "{} — admitted {}",
                    step.reason,
                    step.added
                        .iter()
                        .map(|v| format!("`{v}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        match &self.conflict {
            Some(conflict) => out.push(format!("violated: {conflict}")),
            None => out.push(format!("no candidate values remain for {}", self.var)),
        }
        out
    }

    /// Renders the full rustc-style block under a headline.
    pub fn render(&self, headline: &str) -> String {
        let mut out = format!("error: {headline}\n  --> {}\n", self.var);
        for note in self.notes() {
            out.push_str("  = note: ");
            out.push_str(&note);
            out.push('\n');
        }
        out
    }
}

/// A point on the trail to rewind to.
#[derive(Debug, Clone, Copy)]
pub struct Mark {
    vars: usize,
    constraints: usize,
    trail: usize,
}

#[derive(Debug, Clone)]
enum TrailEvent {
    /// `value` was removed from `var` at position `index`.
    Remove {
        var: VarId,
        index: usize,
        value: Val,
        constraint: ConstraintId,
    },
    /// `var`'s value at `index` was rewritten from `old` (variant merge).
    Rewrite {
        var: VarId,
        index: usize,
        old: Val,
        constraint: ConstraintId,
    },
    /// A value was appended to `var`'s domain at `index`.
    Add {
        var: VarId,
        index: usize,
        constraint: ConstraintId,
    },
    /// `var.posted` transitioned from `was`.
    SetPosted { var: VarId, was: bool },
}

#[derive(Debug, Clone)]
struct Variable {
    key: VarKey,
    /// Remaining values in preference order (most preferred first).
    values: Vec<Val>,
    /// Open domains accept a first posted value outside the candidates
    /// (undeclared variants, user overrides of declared value lists).
    open: bool,
    /// A [`ConstraintKind::VariantIs`] has been applied.
    posted: bool,
}

/// The constraint model: variables, domains, constraints, trail, worklist.
#[derive(Debug, Default)]
pub struct Csp {
    vars: Vec<Variable>,
    index: BTreeMap<String, VarId>,
    constraints: Vec<Constraint>,
    /// Per-variable list of nogood constraints watching it.
    watchers: Vec<Vec<ConstraintId>>,
    trail: Vec<TrailEvent>,
    /// Nogoods awaiting revision (the AC-3 worklist).
    queue: VecDeque<ConstraintId>,
    /// Eager mode: nogoods prune domains as soon as they become unit.
    /// Non-eager mode only detects fully-entailed violations.
    eager: bool,
    prunes: usize,
    backtracks: usize,
}

impl Csp {
    /// A model for production solving (nogoods check, they don't prune).
    pub fn new() -> Csp {
        Csp::default()
    }

    /// A model for analysis: nogoods propagate eagerly so wipeouts carry
    /// full justification chains.
    pub fn analysis() -> Csp {
        Csp {
            eager: true,
            ..Csp::default()
        }
    }

    /// Total values pruned so far (telemetry).
    pub fn prunes(&self) -> usize {
        self.prunes
    }

    /// Backtracks taken by [`Csp::search`] (telemetry).
    pub fn backtracks(&self) -> usize {
        self.backtracks
    }

    /// Registers a variable with a preference-ordered candidate domain.
    /// Returns the existing variable if the key is already registered.
    pub fn var(&mut self, key: VarKey, values: Vec<Val>, open: bool) -> VarId {
        let display = key.to_string();
        if let Some(&id) = self.index.get(&display) {
            return id;
        }
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            key,
            values,
            open,
            posted: false,
        });
        self.watchers.push(Vec::new());
        self.index.insert(display, id);
        id
    }

    /// Looks up a variable by its display key (`cmake:version`).
    pub fn lookup(&self, display: &str) -> Option<VarId> {
        self.index.get(display).copied()
    }

    /// The variable's key.
    pub fn key(&self, var: VarId) -> &VarKey {
        &self.vars[var.0].key
    }

    /// Remaining domain values in preference order.
    pub fn domain(&self, var: VarId) -> &[Val] {
        &self.vars[var.0].values
    }

    /// The preferred (first remaining) value, if any.
    pub fn first(&self, var: VarId) -> Option<&Val> {
        self.vars[var.0].values.first()
    }

    /// True once exactly one value remains.
    pub fn is_singleton(&self, var: VarId) -> bool {
        self.vars[var.0].values.len() == 1
    }

    /// Posts a unary constraint on `var` and revises the domain immediately.
    /// Returns whether the domain changed; a wipeout returns the
    /// justification chain.
    pub fn post(
        &mut self,
        var: VarId,
        kind: ConstraintKind,
        reason: Reason,
    ) -> Result<bool, Box<Explanation>> {
        debug_assert!(!matches!(kind, ConstraintKind::NotAll(_)));
        let cid = ConstraintId(self.constraints.len());
        // store a placeholder while revising so the kind needn't be cloned;
        // the error path only reads the constraint's reason
        self.constraints.push(Constraint {
            kind: ConstraintKind::Exclude(Vec::new()),
            reason,
            tag: None,
        });
        let result = self.revise_unary(var, &kind, cid);
        self.constraints[cid.0].kind = kind;
        let changed = result?;
        if changed {
            self.wake_watchers(var);
        }
        Ok(changed)
    }

    /// Posts an n-ary nogood and enqueues it for revision.
    pub fn post_nogood(
        &mut self,
        literals: Vec<(VarId, Vec<Val>)>,
        reason: Reason,
        tag: Option<(String, String)>,
    ) -> ConstraintId {
        let cid = ConstraintId(self.constraints.len());
        for (var, _) in &literals {
            self.watchers[var.0].push(cid);
        }
        self.constraints.push(Constraint {
            kind: ConstraintKind::NotAll(literals),
            reason,
            tag,
        });
        self.queue.push_back(cid);
        cid
    }

    /// Replaces `var`'s domain with exactly `values` (authoritative resets,
    /// e.g. adopting an external pins the version regardless of the declared
    /// list). Trailed like any other change.
    pub fn reset(&mut self, var: VarId, values: Vec<Val>, reason: Reason) {
        let cid = ConstraintId(self.constraints.len());
        self.constraints.push(Constraint {
            kind: ConstraintKind::KeepOnly(values.clone()),
            reason,
            tag: None,
        });
        while let Some(value) = self.vars[var.0].values.pop() {
            let index = self.vars[var.0].values.len();
            self.trail.push(TrailEvent::Remove {
                var,
                index,
                value,
                constraint: cid,
            });
            self.prunes += 1;
        }
        for value in values {
            let index = self.vars[var.0].values.len();
            self.vars[var.0].values.push(value);
            self.trail.push(TrailEvent::Add {
                var,
                index,
                constraint: cid,
            });
        }
        self.wake_watchers(var);
    }

    /// Decides `var := value` (prunes every other value). The value must be
    /// in the current domain.
    pub fn assign(
        &mut self,
        var: VarId,
        value: &Val,
        reason: Reason,
    ) -> Result<bool, Box<Explanation>> {
        self.post(var, ConstraintKind::KeepOnly(vec![value.clone()]), reason)
    }

    fn revise_unary(
        &mut self,
        var: VarId,
        kind: &ConstraintKind,
        cid: ConstraintId,
    ) -> Result<bool, Box<Explanation>> {
        let keep = |val: &Val| -> bool {
            match (kind, val) {
                (ConstraintKind::VersionIn(vc), Val::Version(v)) => vc.contains(v),
                (ConstraintKind::VersionIn(_), _) => true,
                (ConstraintKind::KeepOnly(vals), v) => vals.contains(v),
                (ConstraintKind::Exclude(vals), v) => !vals.contains(v),
                _ => true,
            }
        };
        let mut changed = false;
        match kind {
            ConstraintKind::VariantIs(required) => {
                let open_add = {
                    let variable = &self.vars[var.0];
                    variable.values.is_empty() && variable.open && !variable.posted
                };
                if open_add {
                    self.vars[var.0].values.push(Val::Variant(required.clone()));
                    self.trail.push(TrailEvent::Add {
                        var,
                        index: 0,
                        constraint: cid,
                    });
                } else {
                    // merge-filter each candidate; values that cannot merge
                    // with the requirement are pruned, mergeable ones are
                    // narrowed in place (multi-valued set union)
                    let mut i = 0;
                    let mut no_survivor = true;
                    while i < self.vars[var.0].values.len() {
                        let current = match &self.vars[var.0].values[i] {
                            Val::Variant(v) => v.clone(),
                            other => {
                                // non-variant value in a variant domain: drop
                                let value = other.clone();
                                self.vars[var.0].values.remove(i);
                                self.trail.push(TrailEvent::Remove {
                                    var,
                                    index: i,
                                    value,
                                    constraint: cid,
                                });
                                self.prunes += 1;
                                changed = true;
                                continue;
                            }
                        };
                        match current.merge(required) {
                            Some(merged) => {
                                no_survivor = false;
                                if merged != current {
                                    self.vars[var.0].values[i] = Val::Variant(merged);
                                    self.trail.push(TrailEvent::Rewrite {
                                        var,
                                        index: i,
                                        old: Val::Variant(current),
                                        constraint: cid,
                                    });
                                    changed = true;
                                }
                                i += 1;
                            }
                            None => {
                                let value = Val::Variant(current);
                                self.vars[var.0].values.remove(i);
                                self.trail.push(TrailEvent::Remove {
                                    var,
                                    index: i,
                                    value,
                                    constraint: cid,
                                });
                                self.prunes += 1;
                                changed = true;
                            }
                        }
                    }
                    // a first posted value may override a declared value list
                    // (the greedy solver never validated declared lists)
                    if no_survivor && !self.vars[var.0].posted {
                        let index = self.vars[var.0].values.len();
                        self.vars[var.0].values.push(Val::Variant(required.clone()));
                        self.trail.push(TrailEvent::Add {
                            var,
                            index,
                            constraint: cid,
                        });
                        changed = true;
                    }
                }
                let was = self.vars[var.0].posted;
                if !was {
                    self.vars[var.0].posted = true;
                    self.trail.push(TrailEvent::SetPosted { var, was });
                }
            }
            _ => {
                let mut i = 0;
                while i < self.vars[var.0].values.len() {
                    if keep(&self.vars[var.0].values[i]) {
                        i += 1;
                        continue;
                    }
                    let value = self.vars[var.0].values.remove(i);
                    self.trail.push(TrailEvent::Remove {
                        var,
                        index: i,
                        value,
                        constraint: cid,
                    });
                    self.prunes += 1;
                    changed = true;
                }
            }
        }
        if self.vars[var.0].values.is_empty() {
            return Err(Box::new(self.explain(var)));
        }
        Ok(changed)
    }

    fn wake_watchers(&mut self, var: VarId) {
        for &cid in &self.watchers[var.0] {
            if !self.queue.contains(&cid) {
                self.queue.push_back(cid);
            }
        }
    }

    /// True when every remaining value of `var` is in `vals`.
    fn entailed(&self, var: VarId, vals: &[Val]) -> bool {
        let domain = &self.vars[var.0].values;
        !domain.is_empty() && domain.iter().all(|v| vals.contains(v))
    }

    /// Drains the AC-3 worklist: revises queued nogoods until fixpoint.
    ///
    /// In eager mode a *unit* nogood (all literals but one entailed) prunes
    /// the free literal's values. In either mode a fully-entailed nogood is a
    /// violation and yields a justification chain over its literals.
    pub fn propagate(&mut self) -> Result<(), Box<Explanation>> {
        while let Some(cid) = self.queue.pop_front() {
            if !matches!(self.constraints[cid.0].kind, ConstraintKind::NotAll(_)) {
                continue;
            }
            // take the literal list instead of cloning it; restored below
            // before any error propagates (backtracking retries the nogood)
            let kind = std::mem::replace(
                &mut self.constraints[cid.0].kind,
                ConstraintKind::NotAll(Vec::new()),
            );
            let ConstraintKind::NotAll(literals) = &kind else {
                unreachable!("checked above");
            };
            let entailed: Vec<bool> = literals
                .iter()
                .map(|(var, vals)| self.entailed(*var, vals))
                .collect();
            let free: Vec<usize> = (0..literals.len()).filter(|&i| !entailed[i]).collect();
            let outcome = match free.len() {
                0 => Err(Box::new(self.explain_violation(cid, literals))),
                1 if self.eager => {
                    let (var, vals) = &literals[free[0]];
                    self.revise_unary(*var, &ConstraintKind::Exclude(vals.clone()), cid)
                        .map(|changed| {
                            if changed {
                                self.wake_watchers(*var);
                            }
                        })
                }
                _ => Ok(()),
            };
            self.constraints[cid.0].kind = kind;
            outcome?;
        }
        Ok(())
    }

    fn explain_violation(&self, cid: ConstraintId, literals: &[(VarId, Vec<Val>)]) -> Explanation {
        let constraint = &self.constraints[cid.0];
        let mut steps = Vec::new();
        for (var, vals) in literals {
            let values = vals
                .iter()
                .map(|v| format!("`{v}`"))
                .collect::<Vec<_>>()
                .join(", ");
            let mut why: Vec<String> = self
                .explain(*var)
                .steps
                .iter()
                .map(|s| s.reason.clone())
                .collect();
            why.dedup();
            let held = if why.is_empty() {
                "by default".to_string()
            } else {
                format!("because {}", why.join("; "))
            };
            steps.push(ExplainStep {
                reason: format!("{} holds {} ({held})", self.vars[var.0].key, values),
                removed: Vec::new(),
                narrowed: Vec::new(),
                added: Vec::new(),
            });
        }
        Explanation {
            var: literals
                .first()
                .map(|(v, _)| self.vars[v.0].key.to_string())
                .unwrap_or_default(),
            steps,
            initial: Vec::new(),
            conflict: Some(constraint.reason.to_string()),
            tag: constraint.tag.clone(),
        }
    }

    /// The justification chain for `var`: every trailed event that touched
    /// it, in order, grouped by responsible constraint.
    pub fn explain(&self, var: VarId) -> Explanation {
        let mut steps: Vec<(ConstraintId, ExplainStep)> = Vec::new();
        for event in &self.trail {
            let (evar, cid, removed, narrowed, added) = match event {
                TrailEvent::Remove {
                    var: v,
                    value,
                    constraint,
                    ..
                } => (*v, *constraint, Some(value.to_string()), None, None),
                TrailEvent::Rewrite {
                    var: v,
                    index,
                    old,
                    constraint,
                } => {
                    let new = self.vars[v.0]
                        .values
                        .get(*index)
                        .map(|x| x.to_string())
                        .unwrap_or_default();
                    (*v, *constraint, None, Some((old.to_string(), new)), None)
                }
                TrailEvent::Add {
                    var: v,
                    index,
                    constraint,
                } => {
                    let value = self.vars[v.0]
                        .values
                        .get(*index)
                        .map(|x| x.to_string())
                        .unwrap_or_default();
                    (*v, *constraint, None, None, Some(value))
                }
                _ => continue,
            };
            if evar != var {
                continue;
            }
            let reason = self.constraints[cid.0].reason.to_string();
            match steps.last_mut() {
                Some((last_cid, step)) if *last_cid == cid => {
                    if let Some(v) = removed {
                        step.removed.push(v);
                    }
                    if let Some(n) = narrowed {
                        step.narrowed.push(n);
                    }
                    if let Some(a) = added {
                        step.added.push(a);
                    }
                }
                _ => {
                    let mut step = ExplainStep {
                        reason,
                        removed: Vec::new(),
                        narrowed: Vec::new(),
                        added: Vec::new(),
                    };
                    if let Some(v) = removed {
                        step.removed.push(v);
                    }
                    if let Some(n) = narrowed {
                        step.narrowed.push(n);
                    }
                    if let Some(a) = added {
                        step.added.push(a);
                    }
                    steps.push((cid, step));
                }
            }
        }
        Explanation {
            var: self.vars[var.0].key.to_string(),
            steps: steps.into_iter().map(|(_, s)| s).collect(),
            initial: self
                .initial_domain(var)
                .iter()
                .map(|v| v.to_string())
                .collect(),
            conflict: None,
            tag: None,
        }
    }

    /// The candidate domain `var` was created with, reconstructed by undoing
    /// its trailed events in reverse (exactly the [`Csp::rewind`] replay).
    /// Keeping this off the success path means variable creation never clones
    /// its domain just to remember it.
    fn initial_domain(&self, var: VarId) -> Vec<Val> {
        let mut values = self.vars[var.0].values.clone();
        for event in self.trail.iter().rev() {
            match event {
                TrailEvent::Remove {
                    var: v,
                    index,
                    value,
                    ..
                } if *v == var => values.insert(*index, value.clone()),
                TrailEvent::Rewrite {
                    var: v, index, old, ..
                } if *v == var => values[*index] = old.clone(),
                TrailEvent::Add { var: v, index, .. } if *v == var => {
                    values.remove(*index);
                }
                _ => {}
            }
        }
        values
    }

    /// Saves the current state for [`Csp::rewind`].
    pub fn mark(&self) -> Mark {
        Mark {
            vars: self.vars.len(),
            constraints: self.constraints.len(),
            trail: self.trail.len(),
        }
    }

    /// Rewinds domains, variables, and constraints to `mark`, undoing every
    /// trailed event in reverse order.
    pub fn rewind(&mut self, mark: Mark) {
        while self.trail.len() > mark.trail {
            match self.trail.pop().expect("trail is non-empty") {
                TrailEvent::Remove {
                    var, index, value, ..
                } => {
                    if var.0 < mark.vars {
                        self.vars[var.0].values.insert(index, value);
                    }
                }
                TrailEvent::Rewrite {
                    var, index, old, ..
                } => {
                    if var.0 < mark.vars {
                        self.vars[var.0].values[index] = old;
                    }
                }
                TrailEvent::Add { var, index, .. } => {
                    if var.0 < mark.vars {
                        self.vars[var.0].values.remove(index);
                    }
                }
                TrailEvent::SetPosted { var, was } => {
                    if var.0 < mark.vars {
                        self.vars[var.0].posted = was;
                    }
                }
            }
        }
        for variable in self.vars.drain(mark.vars..) {
            self.index.remove(&variable.key.to_string());
        }
        self.watchers.truncate(mark.vars);
        for watcher in &mut self.watchers {
            watcher.retain(|cid| cid.0 < mark.constraints);
        }
        self.constraints.truncate(mark.constraints);
        self.queue.retain(|cid| cid.0 < mark.constraints);
    }

    /// Backtracking search: assigns each decision variable its most
    /// preferred viable value, propagating after each decision and
    /// backtracking (trail rewind) on wipeout. Non-decision variables keep
    /// their pruned domains (callers read [`Csp::first`]).
    pub fn search(&mut self, order: &[VarId]) -> Result<(), Box<Explanation>> {
        self.propagate()?;
        self.search_from(order, 0)
    }

    fn search_from(&mut self, order: &[VarId], depth: usize) -> Result<(), Box<Explanation>> {
        let Some(&var) = order.get(depth) else {
            return Ok(());
        };
        if self.is_singleton(var) {
            return self.search_from(order, depth + 1);
        }
        let candidates = self.vars[var.0].values.clone();
        let mut last = None;
        for value in candidates {
            let mark = self.mark();
            let reason = Reason::new(
                "decision",
                format!("try {} = `{value}`", self.vars[var.0].key),
            );
            let attempt = self
                .assign(var, &value, reason)
                .and_then(|_| self.propagate())
                .and_then(|_| self.search_from(order, depth + 1));
            match attempt {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.rewind(mark);
                    self.backtracks += 1;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| Box::new(self.explain(var))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchpark_spec::VariantValue;

    fn names(vals: &[&str]) -> Vec<Val> {
        vals.iter().map(|v| Val::Name(v.to_string())).collect()
    }

    #[test]
    fn unary_pruning_and_first_value() {
        let mut csp = Csp::new();
        let v = csp.var(
            VarKey::provider("mpi"),
            names(&["mvapich2", "openmpi", "mpich"]),
            false,
        );
        csp.post(
            v,
            ConstraintKind::Exclude(names(&["mvapich2"])),
            Reason::new("site", "mvapich2 is broken here"),
        )
        .unwrap();
        assert_eq!(csp.first(v), Some(&Val::Name("openmpi".into())));
        assert_eq!(csp.prunes(), 1);
    }

    #[test]
    fn wipeout_yields_justification_chain() {
        let mut csp = Csp::new();
        let v = csp.var(VarKey::provider("mpi"), names(&["a", "b"]), false);
        csp.post(
            v,
            ConstraintKind::Exclude(names(&["a"])),
            Reason::new("user spec", "rejects a"),
        )
        .unwrap();
        let err = csp
            .post(
                v,
                ConstraintKind::Exclude(names(&["b"])),
                Reason::new("recipe", "rejects b"),
            )
            .unwrap_err();
        assert_eq!(err.var, "provider(mpi)");
        assert_eq!(err.steps.len(), 2);
        let notes = err.notes();
        assert!(notes[0].contains("candidates for provider(mpi): a, b"));
        assert!(notes.last().unwrap().contains("no candidate values remain"));
    }

    #[test]
    fn variant_merge_narrows_multi_values() {
        let mut csp = Csp::new();
        let v = csp.var(VarKey::variant("pkg", "cuda_arch"), vec![], true);
        csp.post(
            v,
            ConstraintKind::VariantIs(VariantValue::from_value_text("70")),
            Reason::new("user", "cuda_arch=70"),
        )
        .unwrap();
        csp.post(
            v,
            ConstraintKind::VariantIs(VariantValue::from_value_text("70,80")),
            Reason::new("recipe", "cuda_arch=70,80"),
        )
        .unwrap();
        match csp.first(v) {
            Some(Val::Variant(VariantValue::Multi(set))) => {
                assert_eq!(set.len(), 2);
            }
            other => panic!("expected merged multi value, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_bool_variants_wipe_out() {
        let mut csp = Csp::new();
        let v = csp.var(
            VarKey::variant("pkg", "openmp"),
            vec![
                Val::Variant(VariantValue::Bool(true)),
                Val::Variant(VariantValue::Bool(false)),
            ],
            false,
        );
        csp.post(
            v,
            ConstraintKind::VariantIs(VariantValue::Bool(true)),
            Reason::new("user", "+openmp"),
        )
        .unwrap();
        let err = csp
            .post(
                v,
                ConstraintKind::VariantIs(VariantValue::Bool(false)),
                Reason::new("recipe", "~openmp"),
            )
            .unwrap_err();
        assert!(err
            .notes()
            .iter()
            .any(|n| n.contains("+openmp") || n.contains("user")));
    }

    #[test]
    fn mark_rewind_restores_domains_exactly() {
        let mut csp = Csp::new();
        let v = csp.var(VarKey::provider("mpi"), names(&["a", "b", "c"]), false);
        let mark = csp.mark();
        csp.post(
            v,
            ConstraintKind::Exclude(names(&["b"])),
            Reason::new("edit", "drop b"),
        )
        .unwrap();
        let w = csp.var(VarKey::provider("blas"), names(&["x"]), false);
        assert_eq!(csp.domain(v), &names(&["a", "c"])[..]);
        assert_eq!(csp.domain(w), &names(&["x"])[..]);
        csp.rewind(mark);
        assert_eq!(csp.domain(v), &names(&["a", "b", "c"])[..]);
        assert!(csp.lookup("provider(blas)").is_none());
    }

    #[test]
    fn nogood_violation_detected_in_production_mode() {
        let mut csp = Csp::new();
        let a = csp.var(
            VarKey::variant("p", "cuda"),
            vec![Val::Variant(VariantValue::Bool(true))],
            false,
        );
        let b = csp.var(
            VarKey::variant("p", "rocm"),
            vec![Val::Variant(VariantValue::Bool(true))],
            false,
        );
        csp.post_nogood(
            vec![
                (a, vec![Val::Variant(VariantValue::Bool(true))]),
                (b, vec![Val::Variant(VariantValue::Bool(true))]),
            ],
            Reason::new("recipe `p`", "conflicts: +cuda with +rocm"),
            Some(("p".to_string(), "GPU backends are exclusive".to_string())),
        );
        let err = csp.propagate().unwrap_err();
        assert!(err.conflict.is_some());
        assert_eq!(err.tag.as_ref().unwrap().0, "p");
    }

    #[test]
    fn eager_nogood_prunes_unit_literal() {
        let mut csp = Csp::analysis();
        let a = csp.var(
            VarKey::variant("p", "cuda"),
            vec![Val::Variant(VariantValue::Bool(true))],
            false,
        );
        let b = csp.var(
            VarKey::variant("p", "rocm"),
            vec![
                Val::Variant(VariantValue::Bool(false)),
                Val::Variant(VariantValue::Bool(true)),
            ],
            false,
        );
        csp.post_nogood(
            vec![
                (a, vec![Val::Variant(VariantValue::Bool(true))]),
                (b, vec![Val::Variant(VariantValue::Bool(true))]),
            ],
            Reason::new("recipe `p`", "conflicts: +cuda with +rocm"),
            None,
        );
        csp.propagate().unwrap();
        // rocm=true was pruned by the unit nogood
        assert_eq!(
            csp.domain(b),
            &[Val::Variant(VariantValue::Bool(false))][..]
        );
    }

    #[test]
    fn backtracking_search_recovers_from_bad_first_choice() {
        let mut csp = Csp::analysis();
        // provider prefers `a`, but `a` conflicts with the pinned variant
        let p = csp.var(VarKey::provider("mpi"), names(&["a", "b"]), false);
        let v = csp.var(
            VarKey::variant("root", "fast"),
            vec![Val::Variant(VariantValue::Bool(true))],
            false,
        );
        csp.post_nogood(
            vec![
                (p, names(&["a"])),
                (v, vec![Val::Variant(VariantValue::Bool(true))]),
            ],
            Reason::new("recipe `a`", "conflicts with +fast roots"),
            None,
        );
        csp.search(&[p]).unwrap();
        assert_eq!(csp.first(p), Some(&Val::Name("b".into())));
        assert!(csp.backtracks() <= 1);
    }

    #[test]
    fn search_exhaustion_reports_last_failure() {
        // production mode: nogoods only detect violations, so the search has
        // to try (and fail) both providers
        let mut csp = Csp::new();
        let p = csp.var(VarKey::provider("mpi"), names(&["a", "b"]), false);
        let v = csp.var(
            VarKey::variant("root", "fast"),
            vec![Val::Variant(VariantValue::Bool(true))],
            false,
        );
        for name in ["a", "b"] {
            csp.post_nogood(
                vec![
                    (p, names(&[name])),
                    (v, vec![Val::Variant(VariantValue::Bool(true))]),
                ],
                Reason::new(format!("recipe `{name}`"), "conflicts with +fast roots"),
                None,
            );
        }
        let err = csp.search(&[p]).unwrap_err();
        assert!(err.conflict.is_some(), "{err:?}");
        assert_eq!(csp.backtracks(), 2);
    }
}
