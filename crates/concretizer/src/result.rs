//! Concrete-spec DAGs and content hashing.

use benchpark_spec::Spec;
use std::collections::BTreeMap;
use std::fmt;

/// Where an installation comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// Will be built from source by the install engine.
    Source,
    /// Provided by the system (a `packages.yaml` external); never built.
    External { prefix: String },
    /// Reused from an existing installation database entry.
    Reused,
}

/// One node of a concrete dependency DAG.
#[derive(Debug, Clone)]
pub struct ConcreteNode {
    /// The node's concrete spec. `spec.dependencies` holds the *constraints*
    /// view; the authoritative edges are [`ConcreteNode::deps`].
    pub spec: Spec,
    /// Edges: dependency package name → node key in the owning DAG.
    pub deps: BTreeMap<String, String>,
    /// Which virtuals this node was chosen to provide (e.g. `["mpi"]`).
    pub provides: Vec<String>,
    /// Provenance.
    pub origin: Origin,
    /// Stable content hash of the node including its dependency hashes.
    pub hash: String,
}

/// A fully concretized spec: a DAG of concrete nodes keyed by package name.
#[derive(Debug, Clone)]
pub struct ConcreteSpec {
    /// Key of the root node.
    pub root: String,
    /// All nodes (root + transitive dependencies).
    pub nodes: BTreeMap<String, ConcreteNode>,
}

impl ConcreteSpec {
    /// The root node.
    pub fn root_node(&self) -> &ConcreteNode {
        &self.nodes[&self.root]
    }

    /// Nodes in dependency-first (topological) order; the root is last.
    pub fn build_order(&self) -> Vec<&ConcreteNode> {
        let mut order = Vec::new();
        let mut visited = std::collections::BTreeSet::new();
        self.visit(&self.root, &mut visited, &mut order);
        order
    }

    fn visit<'a>(
        &'a self,
        key: &str,
        visited: &mut std::collections::BTreeSet<String>,
        order: &mut Vec<&'a ConcreteNode>,
    ) {
        if !visited.insert(key.to_string()) {
            return;
        }
        let node = &self.nodes[key];
        for dep_key in node.deps.values() {
            self.visit(dep_key, visited, order);
        }
        order.push(node);
    }

    /// Reconstructs a nested [`Spec`] (dependencies inlined) for
    /// `satisfies` queries against abstract specs.
    pub fn to_spec(&self) -> Spec {
        self.node_to_spec(&self.root, 0)
    }

    fn node_to_spec(&self, key: &str, depth: usize) -> Spec {
        let node = &self.nodes[key];
        let mut spec = node.spec.clone();
        spec.dependencies.clear();
        if depth < 32 {
            // also flatten every transitive dep onto the root (Spack displays
            // and matches this way)
            for dep_key in node.deps.values() {
                let dep_spec = self.node_to_spec(dep_key, depth + 1);
                // flatten grandchildren into this level
                for (gname, gspec) in dep_spec.dependencies.clone() {
                    spec.dependencies.entry(gname).or_insert(gspec);
                }
                let mut flat = dep_spec;
                flat.dependencies.clear();
                spec.dependencies
                    .insert(flat.name.clone().unwrap_or_default(), flat);
            }
        }
        spec
    }

    /// The root hash (identifies the whole DAG).
    pub fn dag_hash(&self) -> &str {
        &self.root_node().hash
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A DAG always has a root.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl fmt::Display for ConcreteSpec {
    /// Renders a `spack spec`-style tree.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk(
            dag: &ConcreteSpec,
            key: &str,
            depth: usize,
            seen: &mut std::collections::BTreeSet<String>,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let node = &dag.nodes[key];
            let marker = match &node.origin {
                Origin::Source => "",
                Origin::External { .. } => " [external]",
                Origin::Reused => " [reused]",
            };
            writeln!(
                f,
                "{:indent$}{}{}{}",
                "",
                if depth == 0 { "" } else { "^" },
                node.spec.short(),
                marker,
                indent = depth * 4
            )?;
            if seen.insert(key.to_string()) {
                for dep_key in node.deps.values() {
                    walk(dag, dep_key, depth + 1, seen, f)?;
                }
            }
            Ok(())
        }
        let mut seen = std::collections::BTreeSet::new();
        walk(self, &self.root, 0, &mut seen, f)
    }
}

/// 128-bit FNV-1a content hash, hex-encoded (stable across runs and
/// platforms; used to address the binary cache and the install tree).
pub(crate) fn content_hash(text: &str) -> String {
    fn fnv1a(seed: u64, data: &[u8]) -> u64 {
        let mut hash = seed;
        for &b in data {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash
    }
    let a = fnv1a(0xcbf29ce484222325, text.as_bytes());
    let b = fnv1a(0x9e3779b97f4a7c15, text.as_bytes());
    format!("{a:016x}{b:016x}")
}
