//! `benchpark-concretizer` — abstract-to-concrete spec resolution.
//!
//! Spack's second primary component (paper §3.1): *"the concretizer, an
//! algorithm that takes abstract specs and fills in remaining choice points
//! for the build space, producing concrete specs"*. Given
//!
//! * an abstract spec (`amg2023+caliper`),
//! * a package repository ([`benchpark_pkg::Repo`]),
//! * and site configuration (available compilers, external installations,
//!   provider/version preferences, default target — the contents of
//!   `compilers.yaml` / `packages.yaml`, Figure 4),
//!
//! the solver produces a fully concrete dependency DAG: every node has an
//! exact version, compiler, target, all variants pinned, every virtual
//! (`mpi`, `blas`, `lapack`) mapped to a real provider, and a stable
//! content hash. Externals (`buildable: false` packages, Figure 4) are
//! honored: the solver adopts the external installation rather than planning
//! a build.
//!
//! The algorithm is a deterministic monotone fixpoint over constraint
//! propagation followed by greedy choice-point resolution (newest admitted
//! version, preferred providers, declared variant defaults) — a faithful
//! functional reproduction of what the paper's workflow needs, not a clone
//! of Spack's ASP encoding. Environment-level solving supports the
//! `concretizer: unify: true` mode from Figure 3: all roots are solved in one
//! shared node table so the environment contains at most one configuration
//! of each package.
//!
//! # Example
//!
//! ```
//! use benchpark_concretizer::{Concretizer, SiteConfig};
//! use benchpark_pkg::Repo;
//!
//! let repo = Repo::builtin();
//! let config = SiteConfig::example_cts();
//! let solver = Concretizer::new(&repo, &config);
//! let result = solver.concretize(&"saxpy@1.0.0 +openmp ^cmake@3.23.1".parse().unwrap()).unwrap();
//! let root = result.root_node();
//! assert!(root.spec.is_concrete());
//! assert_eq!(root.spec.versions.concrete().unwrap().as_str(), "1.0.0");
//! ```

pub mod analyze;
mod config;
pub mod csp;
mod error;
mod result;
mod solver;

pub use analyze::{analyze_spec, AmbiguousProvider, DeadVariant, SpecFinding, SpecReport};
pub use config::{CompilerEntry, External, SiteConfig};
pub use csp::Explanation;
pub use error::{ConcretizeError, ConcretizeErrorKind};
pub use result::{ConcreteNode, ConcreteSpec, Origin};
pub use solver::{Concretizer, ProviderChoice, SolveSession, SolveTrace};

#[cfg(test)]
mod tests;
