//! Solver-backed static analysis: dry-solve a spec and report
//! satisfiability, justification chains, provider ambiguity, and dead
//! variant values.
//!
//! This is the layer behind `benchpark explain <spec>` and the BP05xx
//! `lint --solve` rules: the spec is solved in analysis mode (recipe
//! conflicts as eagerly-propagated nogoods, every provider candidate's
//! viability evaluated), and the outcome is distilled into a [`SpecReport`].

use crate::config::SiteConfig;
use crate::error::ConcretizeError;
use crate::solver::{Concretizer, ProviderChoice};
use benchpark_pkg::Repo;
use benchpark_spec::{Spec, VariantValue};

/// A virtual with more than one viable provider and no site preference to
/// disambiguate: the choice is stable but arbitrary, worth a site policy.
#[derive(Debug, Clone)]
pub struct AmbiguousProvider {
    pub virtual_name: String,
    pub chosen: String,
    /// Every candidate that was viable at decision time.
    pub viable: Vec<String>,
}

/// A variant value no solution can take on this site.
#[derive(Debug, Clone)]
pub struct DeadVariant {
    pub variant: String,
    /// Rendered dead value (`+cuda`, `~openmp`).
    pub value: String,
    /// Why forcing that value fails.
    pub error: String,
}

/// One additional observation about a satisfiable spec (reserved for rule
/// layers that want a uniform finding shape).
#[derive(Debug, Clone)]
pub struct SpecFinding {
    pub summary: String,
    pub notes: Vec<String>,
}

/// The outcome of dry-solving one spec.
#[derive(Debug)]
pub struct SpecReport {
    /// The analyzed spec, as written.
    pub spec: String,
    pub satisfiable: bool,
    /// The failure, when unsatisfiable (carries path + justification chain).
    pub error: Option<ConcretizeError>,
    /// The justification chain as `= note:` lines (empty when satisfiable).
    pub chain: Vec<String>,
    /// Provider decisions taken during the solve.
    pub providers: Vec<ProviderChoice>,
    /// Virtuals with several viable providers and no site preference.
    pub ambiguous: Vec<AmbiguousProvider>,
    /// Root variant values no solution can take.
    pub dead_variants: Vec<DeadVariant>,
}

impl SpecReport {
    /// The full rustc-style transcript (`benchpark explain` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.error {
            Some(error) => {
                out.push_str(&error.render());
            }
            None => {
                out.push_str(&format!("ok: `{}` is satisfiable\n", self.spec));
                for p in &self.providers {
                    out.push_str(&format!(
                        "  = provider: `{}` -> `{}`{}\n",
                        p.virtual_name,
                        p.chosen,
                        if p.preferred { " (site policy)" } else { "" }
                    ));
                }
            }
        }
        for a in &self.ambiguous {
            out.push_str(&format!(
                "  = warning: virtual `{}` has {} viable providers ({}) and no site preference; `{}` was chosen by candidate order\n",
                a.virtual_name,
                a.viable.len(),
                a.viable.join(", "),
                a.chosen
            ));
        }
        for d in &self.dead_variants {
            out.push_str(&format!(
                "  = warning: variant value `{}` is dead on this site: {}\n",
                d.value, d.error
            ));
        }
        out
    }

    /// The report as a JSON document (`benchpark explain --format json`).
    pub fn to_json(&self) -> String {
        fn s(text: &str) -> String {
            let mut out = String::with_capacity(text.len() + 2);
            out.push('"');
            for c in text.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn list(items: impl IntoIterator<Item = String>) -> String {
            let rendered: Vec<String> = items.into_iter().collect();
            format!("[{}]", rendered.join(", "))
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"spec\": {},\n", s(&self.spec)));
        out.push_str(&format!("  \"satisfiable\": {},\n", self.satisfiable));
        match &self.error {
            Some(e) => out.push_str(&format!("  \"error\": {},\n", s(&e.to_string()))),
            None => out.push_str("  \"error\": null,\n"),
        }
        out.push_str(&format!(
            "  \"chain\": {},\n",
            list(self.chain.iter().map(|n| s(n)))
        ));
        out.push_str(&format!(
            "  \"providers\": {},\n",
            list(self.providers.iter().map(|p| format!(
                "{{\"virtual\": {}, \"chosen\": {}, \"viable\": {}, \"preferred\": {}}}",
                s(&p.virtual_name),
                s(&p.chosen),
                list(p.viable.iter().map(|v| s(v))),
                p.preferred
            )))
        ));
        out.push_str(&format!(
            "  \"ambiguous\": {},\n",
            list(self.ambiguous.iter().map(|a| format!(
                "{{\"virtual\": {}, \"chosen\": {}, \"viable\": {}}}",
                s(&a.virtual_name),
                s(&a.chosen),
                list(a.viable.iter().map(|v| s(v)))
            )))
        ));
        out.push_str(&format!(
            "  \"dead_variants\": {}\n",
            list(self.dead_variants.iter().map(|d| format!(
                "{{\"variant\": {}, \"value\": {}, \"error\": {}}}",
                s(&d.variant),
                s(&d.value),
                s(&d.error)
            )))
        ));
        out.push_str("}\n");
        out
    }
}

/// Dry-solves `spec` in analysis mode. `probe_variants` additionally tests
/// both directions of every boolean variant on the root recipe (skipping
/// values the spec already pins) to find dead values — a handful of extra
/// solves, so rule layers can opt out for large workspaces.
pub fn analyze_spec(
    repo: &Repo,
    config: &SiteConfig,
    spec: &Spec,
    probe_variants: bool,
) -> SpecReport {
    let cz = Concretizer::new(repo, config).analysis();
    let (result, trace) = cz.concretize_traced(spec);
    let mut report = SpecReport {
        spec: spec.to_string(),
        satisfiable: result.is_ok(),
        error: None,
        chain: Vec::new(),
        providers: trace.providers.clone(),
        ambiguous: Vec::new(),
        dead_variants: Vec::new(),
    };
    match result {
        Ok(_) => {
            for p in &trace.providers {
                if p.viable.len() > 1 && !p.preferred {
                    report.ambiguous.push(AmbiguousProvider {
                        virtual_name: p.virtual_name.clone(),
                        chosen: p.chosen.clone(),
                        viable: p.viable.clone(),
                    });
                }
            }
            if probe_variants {
                report.dead_variants = probe_dead_variants(repo, config, spec);
            }
        }
        Err(error) => {
            if let Some(explanation) = &error.explanation {
                report.chain = explanation.notes();
            }
            if error.path.len() >= 2 {
                report
                    .chain
                    .push(format!("required via `{}`", error.path.join(" -> ")));
            }
            report.error = Some(error);
        }
    }
    report
}

/// Forces each unpinned boolean variant of the root recipe in both
/// directions; a direction that cannot concretize is a dead value.
fn probe_dead_variants(repo: &Repo, config: &SiteConfig, spec: &Spec) -> Vec<DeadVariant> {
    let mut dead = Vec::new();
    let Some(name) = spec.name.as_deref() else {
        return dead;
    };
    let Some(pkg) = repo.get(name) else {
        return dead;
    };
    let cz = Concretizer::new(repo, config);
    for variant in &pkg.variants {
        if !matches!(variant.default, VariantValue::Bool(_)) {
            continue;
        }
        if spec.variants.contains_key(&variant.name) {
            continue;
        }
        for value in [true, false] {
            let mut probe = spec.clone();
            probe
                .variants
                .insert(variant.name.clone(), VariantValue::Bool(value));
            if let Err(e) = cz.concretize(&probe) {
                dead.push(DeadVariant {
                    variant: variant.name.clone(),
                    value: VariantValue::Bool(value).render(&variant.name),
                    error: e.to_string(),
                });
            }
        }
    }
    dead
}
