//! The concretization algorithm, re-platformed on the [`crate::csp`]
//! propagation core.
//!
//! Package recipes, user specs, and site policy are compiled into typed
//! variables with preference-ordered finite domains — one `Version`, one
//! `Compiler`, and one `Variant` variable per package node, one `Provider`
//! variable per virtual — and every constraint application is posted to the
//! model, pruning domains and recording provenance on the trail. Choice
//! points are then resolved by reading each domain's most-preferred
//! surviving value, which provably reproduces the original greedy solver's
//! picks (site-preferred versions first, declared order next; first viable
//! provider candidate; first matching compiler entry).
//!
//! Propagation runs on a dirty-key worklist instead of whole-graph sweeps:
//! only packages whose accumulated spec changed are revisited, which is what
//! makes both 10k-package repositories and incremental re-solving
//! ([`SolveSession`]) tractable. A domain wipeout anywhere surfaces as a
//! [`ConcretizeError`] carrying a justification chain (which constraint
//! removed which candidate, and why) plus the dependency path from the root
//! to the failing package.
//!
//! In *analysis* mode ([`Concretizer::analysis`]) recipe `conflicts(…)`
//! declarations are additionally compiled to n-ary nogoods and propagated
//! eagerly, so unsatisfiable specs fail with full multi-step explanations —
//! the machinery behind `benchpark explain` and the BP05xx lint rules.

use crate::config::SiteConfig;
use crate::csp::{ConstraintKind, Csp, Explanation, Mark, Reason, Val, VarId, VarKey};
use crate::error::{ConcretizeError, ConcretizeErrorKind};
use crate::result::{content_hash, ConcreteNode, ConcreteSpec, Origin};
use benchpark_pkg::{PackageDef, Repo};
use benchpark_spec::{CompilerSpec, Spec, VariantValue, VersionConstraint};
use benchpark_telemetry::TelemetrySink;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// The concretizer: borrows a repository and site configuration.
pub struct Concretizer<'a> {
    repo: &'a Repo,
    config: &'a SiteConfig,
    telemetry: TelemetrySink,
    analysis: bool,
}

/// What the solver decided along the way: provider choices (with the full
/// viable candidate set in analysis mode) and propagation effort.
#[derive(Debug, Clone, Default)]
pub struct SolveTrace {
    /// Worklist rounds taken to reach the propagation fixpoint.
    pub rounds: usize,
    /// One entry per resolved virtual, in resolution order.
    pub providers: Vec<ProviderChoice>,
}

/// One virtual-provider decision.
#[derive(Debug, Clone)]
pub struct ProviderChoice {
    pub virtual_name: String,
    /// The provider the solver selected.
    pub chosen: String,
    /// All candidates that were viable at decision time (analysis mode
    /// evaluates every candidate; production mode stops at the first).
    pub viable: Vec<String>,
    /// Site policy disambiguated the choice: the chosen provider is either a
    /// named provider preference or a declared external installation.
    pub preferred: bool,
}

impl<'a> Concretizer<'a> {
    /// Creates a solver for the given repository and site.
    pub fn new(repo: &'a Repo, config: &'a SiteConfig) -> Concretizer<'a> {
        Concretizer {
            repo,
            config,
            telemetry: TelemetrySink::noop(),
            analysis: false,
        }
    }

    /// Routes solver telemetry (solve counts, propagation passes, rejected
    /// provider candidates, per-environment `concretize` spans) to `sink`.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Concretizer<'a> {
        self.telemetry = sink;
        self
    }

    /// Analysis mode: recipe conflicts become eagerly-propagated nogoods and
    /// provider resolution evaluates every candidate's viability, so failures
    /// carry maximal justification chains and [`SolveTrace`] records
    /// ambiguity. Used by `benchpark explain` and `lint --solve`.
    pub fn analysis(mut self) -> Concretizer<'a> {
        self.analysis = true;
        self
    }

    /// Concretizes a single abstract spec.
    pub fn concretize(&self, abstract_spec: &Spec) -> Result<ConcreteSpec, ConcretizeError> {
        let mut results = self.concretize_env(std::slice::from_ref(abstract_spec), true)?;
        Ok(results.pop().expect("one root yields one result"))
    }

    /// Concretizes a single spec and returns the decision trace alongside
    /// the result (used by the analysis layer).
    pub fn concretize_traced(
        &self,
        abstract_spec: &Spec,
    ) -> (Result<ConcreteSpec, ConcretizeError>, SolveTrace) {
        let _span = self.telemetry.span("concretize");
        let mut solve = Solve::new(self);
        let result = solve
            .add_root(abstract_spec)
            .and_then(|_| solve.run())
            .and_then(|_| solve.extract(&solve.root_key(abstract_spec)));
        (result, solve.trace)
    }

    /// Concretizes an environment's root specs.
    ///
    /// With `unify = true` (Figure 3's `concretizer: unify: true`) all roots
    /// share one node table, so the environment contains at most one
    /// configuration of each package; conflicting roots fail with
    /// [`ConcretizeErrorKind::UnifyConflict`]. With `unify = false` each root
    /// is solved independently.
    pub fn concretize_env(
        &self,
        roots: &[Spec],
        unify: bool,
    ) -> Result<Vec<ConcreteSpec>, ConcretizeError> {
        let _span = self.telemetry.span("concretize");
        if unify {
            let mut solve = Solve::new(self);
            for root in roots {
                solve.add_root(root).map_err(|e| match e.kind {
                    ConcretizeErrorKind::Unsatisfiable { message } => ConcretizeError {
                        kind: ConcretizeErrorKind::UnifyConflict {
                            name: root.name_str().to_string(),
                            message,
                        },
                        path: e.path,
                        explanation: e.explanation,
                    },
                    _ => e,
                })?;
            }
            solve.run()?;
            roots
                .iter()
                .map(|r| solve.extract(&solve.root_key(r)))
                .collect()
        } else {
            roots
                .iter()
                .map(|root| {
                    let mut solve = Solve::new(self);
                    solve.add_root(root)?;
                    solve.run()?;
                    solve.extract(&solve.root_key(root))
                })
                .collect()
        }
    }

    /// Solves `root` once and keeps the propagation state alive for
    /// incremental re-solving: [`SolveSession::resolve_version`] applies one
    /// constraint edit, re-propagates only from the affected frontier, and
    /// rewinds the trail afterwards. Not available with `reuse` enabled.
    pub fn session<'b>(&'b self, root: &Spec) -> Result<SolveSession<'a, 'b>, ConcretizeError> {
        if self.config.reuse {
            return Err(ConcretizeError::unsatisfiable(
                "incremental sessions do not support reuse",
            ));
        }
        let mut solve = Solve::new(self);
        solve.add_root(root)?;
        solve.prepare()?;
        // snapshot the pre-finalization state: this is the frontier edits
        // restart from
        let mark = solve.csp.mark();
        let frontier_nodes = solve.nodes.clone();
        solve.finalize()?;
        let root_key = solve.root_key(root);
        let base = solve.extract(&root_key)?;
        let finalized_nodes = std::mem::replace(&mut solve.nodes, frontier_nodes);
        solve.csp.rewind(mark);
        Ok(SolveSession {
            solve,
            mark,
            root_key,
            base,
            finalized_nodes,
        })
    }
}

/// A solved root kept warm for incremental re-solving.
///
/// The session holds the pre-finalization node table and a trail [`Mark`];
/// each edit constrains one node, drains the dirty-key worklist (touching
/// only the affected subgraph), re-finalizes touched nodes (untouched nodes
/// reuse their finalized specs and content hashes from the base solve), and
/// rewinds everything afterwards — cold-solve results are reproduced without
/// cold-solve work.
pub struct SolveSession<'a, 'b> {
    solve: Solve<'a, 'b>,
    mark: Mark,
    root_key: String,
    base: ConcreteSpec,
    finalized_nodes: BTreeMap<String, Node>,
}

impl SolveSession<'_, '_> {
    /// The result of the initial cold solve.
    pub fn base(&self) -> &ConcreteSpec {
        &self.base
    }

    /// Re-solves with one additional version constraint on `package`,
    /// re-propagating only from the edit's frontier. The session state is
    /// rewound afterwards, so edits are independent, not cumulative.
    pub fn resolve_version(
        &mut self,
        package: &str,
        constraint: &VersionConstraint,
    ) -> Result<ConcreteSpec, ConcretizeError> {
        if !self.solve.nodes.contains_key(package) {
            return Err(ConcretizeError::new(ConcretizeErrorKind::UnknownPackage {
                name: package.to_string(),
            }));
        }
        let mut edit = Spec::named(package);
        edit.versions = constraint.clone();
        let frontier_nodes = self.solve.nodes.clone();
        let result = self.solve_edit(package, &edit);
        // rewind to the frontier for the next edit
        self.solve.nodes = frontier_nodes;
        self.solve.csp.rewind(self.mark);
        self.solve.dirty.clear();
        self.solve.touched.clear();
        result
    }

    fn solve_edit(&mut self, package: &str, edit: &Spec) -> Result<ConcreteSpec, ConcretizeError> {
        self.solve.touched.clear();
        self.solve
            .constrain_node(package, edit, None, "incremental edit")?;
        self.solve.propagate_to_fixpoint()?;
        self.solve.check_cycles()?;
        let touched = self.solve.touched.clone();
        self.solve
            .finalize_incremental(&touched, &self.finalized_nodes)?;
        self.solve
            .extract_incremental(&self.root_key, &touched, &self.base)
    }
}

/// One node of the partial solution.
#[derive(Debug, Clone)]
struct Node {
    /// Accumulated constraints; `name` is always set, `dependencies` unused
    /// (edges live in `deps`).
    spec: Spec,
    /// Edges: resolved dependency package name → node key.
    deps: BTreeMap<String, String>,
    /// Virtuals this node provides in this solution.
    provides: Vec<String>,
    origin: Origin,
    /// Defaults have been applied at least once.
    defaulted: bool,
    /// The package that first demanded this node (dependency-path context).
    required_by: Option<String>,
    /// Model variables owned by this node.
    version_var: VarId,
    compiler_var: VarId,
    variant_vars: BTreeMap<String, VarId>,
}

/// A user-requested dependency on a virtual (`^mpi+cuda`) awaiting provider
/// resolution.
#[derive(Debug)]
struct PendingVirtual {
    root: String,
    virtual_name: String,
    constraint: Spec,
    consumed: bool,
}

struct Solve<'a, 'b> {
    cz: &'b Concretizer<'a>,
    nodes: BTreeMap<String, Node>,
    pending: Vec<PendingVirtual>,
    csp: Csp,
    /// Keys whose constraints changed and need (re-)stepping.
    dirty: BTreeSet<String>,
    /// Keys touched since the last [`Solve::touched`] reset (incremental
    /// finalization scope).
    touched: BTreeSet<String>,
    /// The site compiler domain, rendered once per solve (every node shares
    /// the same candidate list).
    compiler_domain: Vec<Val>,
    trace: SolveTrace,
}

impl<'a, 'b> Solve<'a, 'b> {
    fn new(cz: &'b Concretizer<'a>) -> Self {
        Solve {
            cz,
            nodes: BTreeMap::new(),
            pending: Vec::new(),
            csp: if cz.analysis {
                Csp::analysis()
            } else {
                Csp::new()
            },
            dirty: BTreeSet::new(),
            touched: BTreeSet::new(),
            compiler_domain: cz
                .config
                .compilers
                .iter()
                .map(|e| Val::Name(format!("{}@{}", e.name, e.version)))
                .collect(),
            trace: SolveTrace::default(),
        }
    }

    /// The node key a root spec resolves to (providers for virtual roots).
    fn root_key(&self, root: &Spec) -> String {
        let name = root.name_str();
        if self.nodes.contains_key(name) {
            return name.to_string();
        }
        // virtual root: find its provider
        self.nodes
            .iter()
            .find(|(_, n)| n.provides.iter().any(|v| v == name))
            .map(|(k, _)| k.clone())
            .unwrap_or_else(|| name.to_string())
    }

    /// The dependency path from a root to `key` (`a -> b -> c`), following
    /// `required_by` links.
    fn path_to(&self, key: &str) -> Vec<String> {
        let mut path = vec![key.to_string()];
        let mut cursor = key.to_string();
        while let Some(parent) = self.nodes.get(&cursor).and_then(|n| n.required_by.clone()) {
            if path.contains(&parent) || path.len() > 128 {
                break;
            }
            path.push(parent.clone());
            cursor = parent;
        }
        path.reverse();
        path
    }

    /// The path to a child demanded by `via` that may not exist as a node.
    fn child_path(&self, via: Option<&str>, child: &str) -> Vec<String> {
        match via {
            Some(parent) => {
                let mut path = self.path_to(parent);
                path.push(child.to_string());
                path
            }
            None => vec![child.to_string()],
        }
    }

    fn add_root(&mut self, root: &Spec) -> Result<(), ConcretizeError> {
        let name = root.name.clone().ok_or_else(|| {
            ConcretizeError::unsatisfiable(format!("root spec `{root}` has no package name"))
        })?;
        let actor = format!("user spec `{root}`");

        // Virtual root (`spack add mpi`): resolve the provider immediately.
        let key = if self.cz.repo.get(&name).is_none() && self.cz.repo.is_virtual(&name) {
            let mut constraint = root.clone();
            constraint.name = None;
            constraint.dependencies.clear();
            self.resolve_provider(&name, &constraint, None)?
        } else {
            name.clone()
        };

        let mut constraint = root.clone();
        constraint.name = Some(key.clone());
        let deps = std::mem::take(&mut constraint.dependencies);
        self.constrain_node(&key, &constraint, None, &actor)?;

        // apply site-wide requirements to roots
        let config = self.cz.config;
        for req in &config.require {
            let mut r = req.clone();
            r.name = Some(key.clone());
            self.constrain_node(&key, &r, None, "site packages.yaml `require`")?;
        }

        // `^dep` constraints: real packages become forced edges now; virtuals
        // wait for provider resolution.
        for (dep_name, dep_spec) in deps {
            if self.cz.repo.get(&dep_name).is_some() {
                self.constrain_node(&dep_name, &dep_spec, Some(&key), &actor)?;
                self.nodes
                    .get_mut(&key)
                    .expect("root node exists")
                    .deps
                    .insert(dep_name.clone(), dep_name.clone());
            } else if self.cz.repo.is_virtual(&dep_name) {
                let mut c = dep_spec.clone();
                c.name = None;
                self.pending.push(PendingVirtual {
                    root: key.clone(),
                    virtual_name: dep_name,
                    constraint: c,
                    consumed: false,
                });
            } else {
                let path = self.child_path(Some(&key), &dep_name);
                return Err(ConcretizeError::new(ConcretizeErrorKind::UnknownPackage {
                    name: dep_name,
                })
                .with_path(path));
            }
        }
        Ok(())
    }

    /// Creates the node and registers its model variables: a version domain
    /// (site-preferred declared versions first, then the rest in declared
    /// order), a compiler domain (site entries in preference order), and one
    /// variant domain per declared variant (default value first).
    fn ensure_node(&mut self, key: &str, via: Option<&str>) -> Result<(), ConcretizeError> {
        let repo: &Repo = self.cz.repo;
        let Some(pkg) = repo.get(key) else {
            let path = self.child_path(via, key);
            return Err(ConcretizeError::new(ConcretizeErrorKind::UnknownPackage {
                name: key.to_string(),
            })
            .with_path(path));
        };
        if self.nodes.contains_key(key) {
            return Ok(());
        }
        let site_pref = self.cz.config.version_prefs.get(key);
        let mut versions: Vec<Val> = Vec::new();
        for v in &pkg.versions {
            if site_pref.is_some_and(|p| p.contains(v)) {
                versions.push(Val::Version(v.clone()));
            }
        }
        for v in &pkg.versions {
            if !site_pref.is_some_and(|p| p.contains(v)) {
                versions.push(Val::Version(v.clone()));
            }
        }
        let version_var = self.csp.var(VarKey::version(key), versions, false);
        let compilers = self.compiler_domain.clone();
        let compiler_var = self.csp.var(VarKey::compiler(key), compilers, false);
        let mut variant_vars = BTreeMap::new();
        for variant in &pkg.variants {
            let domain = match &variant.default {
                VariantValue::Bool(d) => vec![
                    Val::Variant(VariantValue::Bool(*d)),
                    Val::Variant(VariantValue::Bool(!*d)),
                ],
                other => vec![Val::Variant(other.clone())],
            };
            let var = self
                .csp
                .var(VarKey::variant(key, &variant.name), domain, true);
            variant_vars.insert(variant.name.clone(), var);
        }
        self.nodes.insert(
            key.to_string(),
            Node {
                spec: Spec::named(key),
                deps: BTreeMap::new(),
                provides: Vec::new(),
                origin: Origin::Source,
                defaulted: false,
                required_by: via.map(|v| v.to_string()),
                version_var,
                compiler_var,
                variant_vars,
            },
        );
        self.dirty.insert(key.to_string());
        self.touched.insert(key.to_string());
        if self.cz.analysis {
            self.post_conflict_nogoods(key, pkg);
        }
        Ok(())
    }

    /// Compiles recipe `conflicts(…)` declarations into n-ary nogoods over
    /// this node's variables (analysis mode). Only version, boolean/single
    /// variant, and compiler atoms are expressible; conflicts mentioning
    /// targets, dependencies, or flags stay with the finalization check.
    fn post_conflict_nogoods(&mut self, key: &str, pkg: &PackageDef) {
        for conflict in &pkg.conflicts {
            let mut literals = Vec::new();
            let mut ok = self.spec_literals(key, pkg, &conflict.conflict, &mut literals);
            if let Some(when) = &conflict.when {
                ok = ok && self.spec_literals(key, pkg, when, &mut literals);
            }
            if !ok || literals.is_empty() {
                continue;
            }
            let when_text = conflict
                .when
                .as_ref()
                .map(|w| format!(" when `{w}`"))
                .unwrap_or_default();
            self.csp.post_nogood(
                literals,
                Reason::new(
                    format!("recipe `{key}`"),
                    format!(
                        "conflicts(`{}`{when_text}): {}",
                        conflict.conflict, conflict.message
                    ),
                ),
                Some((key.to_string(), conflict.message.clone())),
            );
        }
    }

    /// Lowers one conflict-atom spec into nogood literals; returns false if
    /// the spec mentions something the model cannot express.
    fn spec_literals(
        &mut self,
        key: &str,
        pkg: &PackageDef,
        spec: &Spec,
        literals: &mut Vec<(VarId, Vec<Val>)>,
    ) -> bool {
        if spec.target.is_some() || !spec.dependencies.is_empty() || !spec.compiler_flags.is_empty()
        {
            return false;
        }
        if !spec.versions.is_any() {
            let vals: Vec<Val> = pkg
                .versions
                .iter()
                .filter(|v| spec.versions.contains(v))
                .map(|v| Val::Version(v.clone()))
                .collect();
            let node = &self.nodes[key];
            literals.push((node.version_var, vals));
        }
        for (name, value) in &spec.variants {
            match value {
                VariantValue::Bool(_) | VariantValue::Single(_) => {}
                VariantValue::Multi(_) => return false,
            }
            let var = self.variant_var(key, name);
            literals.push((var, vec![Val::Variant(value.clone())]));
        }
        if let Some(c) = &spec.compiler {
            let vals: Vec<Val> = self
                .cz
                .config
                .compilers
                .iter()
                .filter(|e| e.name == c.name && c.versions.contains(&e.version))
                .map(|e| Val::Name(format!("{}@{}", e.name, e.version)))
                .collect();
            let node = &self.nodes[key];
            literals.push((node.compiler_var, vals));
        }
        true
    }

    /// The variant variable for `key:name`, creating an open domain for
    /// undeclared variants.
    fn variant_var(&mut self, key: &str, name: &str) -> VarId {
        if let Some(&var) = self.nodes[key].variant_vars.get(name) {
            return var;
        }
        let var = self.csp.var(VarKey::variant(key, name), Vec::new(), true);
        self.nodes
            .get_mut(key)
            .expect("node exists")
            .variant_vars
            .insert(name.to_string(), var);
        var
    }

    /// Creates or constrains a node: posts every atom of `constraint` to the
    /// model (recording provenance), then folds it into the accumulated
    /// spec, which stays the authority for dependency activation.
    fn constrain_node(
        &mut self,
        key: &str,
        constraint: &Spec,
        via: Option<&str>,
        actor: &str,
    ) -> Result<bool, ConcretizeError> {
        self.ensure_node(key, via)?;
        let mut c = constraint.clone();
        c.dependencies.clear();
        c.name = Some(key.to_string());

        // shadow posts first: a wipeout here is the justification chain for
        // the spec-level conflict error below
        let mut wipeout: Option<Box<Explanation>> = None;
        if !c.versions.is_any() {
            let version_var = self.nodes[key].version_var;
            let reason = Reason::new(actor, format!("requires `@{}`", c.versions));
            if let Err(e) = self.csp.post(
                version_var,
                ConstraintKind::VersionIn(c.versions.clone()),
                reason,
            ) {
                wipeout.get_or_insert(e);
            }
        }
        for (name, value) in &c.variants {
            let var = self.variant_var(key, name);
            let reason = Reason::new(actor, format!("requires `{}`", value.render(name)));
            if let Err(e) = self
                .csp
                .post(var, ConstraintKind::VariantIs(value.clone()), reason)
            {
                wipeout.get_or_insert(e);
            }
        }
        if let Some(comp) = &c.compiler {
            let keep: Vec<Val> = self
                .cz
                .config
                .compilers
                .iter()
                .filter(|e| e.name == comp.name && comp.versions.contains(&e.version))
                .map(|e| Val::Name(format!("{}@{}", e.name, e.version)))
                .collect();
            let compiler_var = self.nodes[key].compiler_var;
            let reason = Reason::new(actor, format!("requires `%{comp}`"));
            if let Err(e) = self
                .csp
                .post(compiler_var, ConstraintKind::KeepOnly(keep), reason)
            {
                wipeout.get_or_insert(e);
            }
        }

        let node = self.nodes.get_mut(key).expect("ensured above");
        let before = node.spec.clone();
        if let Err(e) = node.spec.constrain(&c) {
            let mut err =
                ConcretizeError::unsatisfiable(e.to_string()).with_path(self.path_to(key));
            if let Some(x) = wipeout {
                err = err.with_explanation(x);
            }
            return Err(err);
        }
        let changed = self.nodes[key].spec != before;
        if changed {
            self.dirty.insert(key.to_string());
            self.touched.insert(key.to_string());
        }
        Ok(changed)
    }

    /// A candidate's viability for providing `virtual_name` under
    /// `constraint` — the same checks the resolution loop applies, without
    /// mutating anything.
    fn provider_viable(&self, candidate: &str, virtual_name: &str, constraint: &Spec) -> bool {
        let Some(pkg) = self.cz.repo.get(candidate) else {
            return false;
        };
        let Some(provide) = pkg.provides.iter().find(|p| p.virtual_name == virtual_name) else {
            return false;
        };
        let mut probe = Spec::named(candidate);
        let mut c = constraint.clone();
        c.name = Some(candidate.to_string());
        if let Some(when) = &provide.when {
            let mut cond = when.clone();
            cond.name = Some(candidate.to_string());
            if c.constrain(&cond).is_err() {
                return false;
            }
        }
        if probe.constrain(&c).is_err() {
            return false;
        }
        if let Some(existing) = self.nodes.get(candidate) {
            if !existing.spec.intersects(&probe) {
                return false;
            }
        }
        true
    }

    /// Chooses a provider for `virtual_name` under `constraint` (an
    /// anonymous spec) by pruning the provider variable's domain: candidates
    /// are tried in preference order (existing DAG nodes, site preferences,
    /// externals-first, then alphabetical), each rejection posts an
    /// `Exclude` with its reason, and the first survivor is assigned. A
    /// wiped-out domain renders as the virtual's justification chain.
    fn resolve_provider(
        &mut self,
        virtual_name: &str,
        constraint: &Spec,
        via: Option<&str>,
    ) -> Result<String, ConcretizeError> {
        // 1. an existing node already providing this virtual wins (unification)
        if let Some((key, _)) = self
            .nodes
            .iter()
            .find(|(_, n)| n.provides.iter().any(|v| v == virtual_name))
        {
            let key = key.clone();
            let actor = format!("virtual `{virtual_name}` constraint");
            self.constrain_node(&key, constraint, via, &actor)?;
            return Ok(key);
        }

        let candidates: Vec<String> = {
            let mut names: Vec<String> = Vec::new();
            // 2. a node already in the DAG whose recipe provides the virtual
            //    (e.g. a user-forced `^openmpi`) wins over site preferences
            for (key, _) in self.nodes.iter() {
                if let Some(pkg) = self.cz.repo.get(key) {
                    if pkg.provides.iter().any(|p| p.virtual_name == virtual_name) {
                        names.push(key.clone());
                    }
                }
            }
            // site preferences next
            if let Some(prefs) = self.cz.config.provider_prefs.get(virtual_name) {
                names.extend(prefs.iter().cloned());
            }
            // then providers with externals, then the rest alphabetically
            let mut rest: Vec<(bool, String)> = self
                .cz
                .repo
                .providers(virtual_name)
                .iter()
                .map(|p| {
                    (
                        self.cz.config.externals_for(&p.name).is_empty(),
                        p.name.clone(),
                    )
                })
                .collect();
            rest.sort();
            names.extend(rest.into_iter().map(|(_, n)| n));
            names
        };

        // provider variable over the deduplicated candidates, keeping
        // first-occurrence preference order
        let mut domain: Vec<Val> = Vec::new();
        for name in &candidates {
            let val = Val::Name(name.clone());
            if !domain.contains(&val) {
                domain.push(val);
            }
        }
        let pvar = self.csp.var(VarKey::provider(virtual_name), domain, false);

        let viable: Vec<String> = if self.cz.analysis {
            let mut seen = BTreeSet::new();
            candidates
                .iter()
                .filter(|c| seen.insert(c.as_str().to_string()))
                .filter(|c| self.provider_viable(c, virtual_name, constraint))
                .cloned()
                .collect()
        } else {
            Vec::new()
        };

        for candidate in candidates {
            let Some(pkg) = self.cz.repo.get(&candidate) else {
                let _ = self.csp.post(
                    pvar,
                    ConstraintKind::Exclude(vec![Val::Name(candidate.clone())]),
                    Reason::new("repository", format!("no recipe for `{candidate}`")),
                );
                continue;
            };
            let Some(provide) = pkg.provides.iter().find(|p| p.virtual_name == virtual_name) else {
                let _ = self.csp.post(
                    pvar,
                    ConstraintKind::Exclude(vec![Val::Name(candidate.clone())]),
                    Reason::new(
                        format!("recipe `{candidate}`"),
                        format!("does not provide `{virtual_name}`"),
                    ),
                );
                continue;
            };
            // candidate must be compatible with the constraint, plus any
            // `provides(…, when=…)` condition (choosing this provider then
            // *forces* the condition, e.g. the variant that enables the
            // virtual interface)
            let mut probe = Spec::named(&candidate);
            let mut c = constraint.clone();
            c.name = Some(candidate.clone());
            if let Some(when) = &provide.when {
                let mut cond = when.clone();
                cond.name = Some(candidate.clone());
                if c.constrain(&cond).is_err() {
                    self.cz.telemetry.incr("concretizer.rejected_providers", 1);
                    let _ = self.csp.post(
                        pvar,
                        ConstraintKind::Exclude(vec![Val::Name(candidate.clone())]),
                        Reason::new(
                            format!("recipe `{candidate}`"),
                            format!(
                                "provides `{virtual_name}` only when `{when}`, which conflicts with `{constraint}`"
                            ),
                        ),
                    );
                    continue;
                }
            }
            if probe.constrain(&c).is_err() {
                self.cz.telemetry.incr("concretizer.rejected_providers", 1);
                let _ = self.csp.post(
                    pvar,
                    ConstraintKind::Exclude(vec![Val::Name(candidate.clone())]),
                    Reason::new(
                        format!("virtual `{virtual_name}` constraint"),
                        format!("`{constraint}` is incompatible with `{candidate}`"),
                    ),
                );
                continue;
            }
            // and with any existing node of that name
            if let Some(existing) = self.nodes.get(&candidate) {
                if !existing.spec.intersects(&probe) {
                    self.cz.telemetry.incr("concretizer.rejected_providers", 1);
                    let _ = self.csp.post(
                        pvar,
                        ConstraintKind::Exclude(vec![Val::Name(candidate.clone())]),
                        Reason::new(
                            format!("existing node `{candidate}`"),
                            format!("is incompatible with `{constraint}`"),
                        ),
                    );
                    continue;
                }
            }
            let actor = format!("virtual `{virtual_name}` constraint");
            self.constrain_node(&candidate, &c, via, &actor)?;
            let _ = self.csp.assign(
                pvar,
                &Val::Name(candidate.clone()),
                Reason::new(
                    "decision",
                    format!("selected `{candidate}` to provide `{virtual_name}`"),
                ),
            );
            let node = self.nodes.get_mut(&candidate).expect("just created");
            if !node.provides.iter().any(|v| v == virtual_name) {
                node.provides.push(virtual_name.to_string());
            }
            // consume matching pending user constraints
            let mut pending_constraints = Vec::new();
            for p in self.pending.iter_mut() {
                if p.virtual_name == virtual_name && !p.consumed {
                    p.consumed = true;
                    pending_constraints.push(p.constraint.clone());
                }
            }
            for pc in pending_constraints {
                let mut c = pc;
                c.name = Some(candidate.clone());
                let actor = format!("user `^{virtual_name}`");
                self.constrain_node(&candidate, &c, via, &actor)?;
            }
            let preferred = self
                .cz
                .config
                .provider_prefs
                .get(virtual_name)
                .is_some_and(|p| p.contains(&candidate))
                || self.cz.config.externals.contains_key(&candidate);
            self.trace.providers.push(ProviderChoice {
                virtual_name: virtual_name.to_string(),
                chosen: candidate.clone(),
                viable: if self.cz.analysis {
                    viable
                } else {
                    vec![candidate.clone()]
                },
                preferred,
            });
            return Ok(candidate);
        }
        let path = self.child_path(via, virtual_name);
        Err(ConcretizeError::new(ConcretizeErrorKind::NoProvider {
            virtual_name: virtual_name.to_string(),
            constraint: constraint.to_string(),
        })
        .with_path(path)
        .with_explanation(Box::new(self.csp.explain(pvar))))
    }

    /// Runs propagation to fixpoint, then finalizes all choices.
    fn run(&mut self) -> Result<(), ConcretizeError> {
        self.prepare()?;
        self.finalize()?;
        Ok(())
    }

    /// Everything up to (but excluding) choice finalization.
    fn prepare(&mut self) -> Result<(), ConcretizeError> {
        self.cz.telemetry.incr("concretizer.solves", 1);
        self.dirty.extend(self.nodes.keys().cloned());
        self.propagate_to_fixpoint()?;
        self.resolve_unconsumed_pending()?;
        self.check_cycles()?;
        if self.cz.config.reuse {
            self.adopt_reusable();
        }
        Ok(())
    }

    /// Drains the dirty-key worklist. A round visits the dirty keys in
    /// ascending order, picking up keys dirtied at later positions within
    /// the same round (the sweep order of the original fixpoint loop); keys
    /// dirtied at earlier positions wait for the next round.
    fn propagate_to_fixpoint(&mut self) -> Result<(), ConcretizeError> {
        const MAX_ROUNDS: usize = 64;
        let mut rounds = 0;
        while !self.dirty.is_empty() {
            rounds += 1;
            self.cz.telemetry.incr("concretizer.passes", 1);
            if rounds > MAX_ROUNDS {
                // mirror the bounded fixpoint of the original solver: stop
                // propagating and let finalization validate what we have
                self.dirty.clear();
                break;
            }
            let mut cursor: Option<String> = None;
            loop {
                let next = match &cursor {
                    None => self.dirty.iter().next().cloned(),
                    Some(c) => self
                        .dirty
                        .range::<str, _>((Bound::Excluded(c.as_str()), Bound::Unbounded))
                        .next()
                        .cloned(),
                };
                let Some(key) = next else { break };
                self.dirty.remove(&key);
                self.step(&key)?;
                cursor = Some(key);
            }
            if self.cz.analysis {
                self.csp_check()?;
            }
        }
        self.trace.rounds += rounds;
        Ok(())
    }

    /// Drains the model's nogood worklist (analysis mode), converting a
    /// violation into the owning package's conflict error.
    fn csp_check(&mut self) -> Result<(), ConcretizeError> {
        if let Err(explanation) = self.csp.propagate() {
            let err = match &explanation.tag {
                Some((name, message)) => {
                    let mut e = ConcretizeError::new(ConcretizeErrorKind::Conflict {
                        name: name.clone(),
                        messages: vec![message.clone()],
                    });
                    if self.nodes.contains_key(name.as_str()) {
                        e = e.with_path(self.path_to(name));
                    }
                    e
                }
                None => ConcretizeError::unsatisfiable(
                    explanation
                        .conflict
                        .clone()
                        .unwrap_or_else(|| "propagation contradiction".to_string()),
                ),
            };
            return Err(err.with_explanation(explanation));
        }
        Ok(())
    }

    /// One worklist visit: apply recipe defaults (once), expand the active
    /// dependencies, and push compiler/target down to children lacking them.
    fn step(&mut self, key: &str) -> Result<(), ConcretizeError> {
        self.touched.insert(key.to_string());
        // 1. apply recipe defaults once
        if !self.nodes[key].defaulted {
            let pkg = self.cz.repo.get(key).expect("nodes have recipes");
            let defaults: Vec<(String, VariantValue)> = pkg
                .variants
                .iter()
                .map(|v| (v.name.clone(), v.default.clone()))
                .collect();
            let node = self.nodes.get_mut(key).unwrap();
            for (name, value) in defaults {
                node.spec.variants.entry(name).or_insert(value);
            }
            node.defaulted = true;
        }

        // 2. expand active dependencies
        let repo: &Repo = self.cz.repo;
        let (active, parent_compiler, parent_target) = {
            let node = &self.nodes[key];
            let pkg = repo.get(key).expect("nodes have recipes");
            (
                pkg.active_dependencies(&node.spec),
                node.spec.compiler.clone(),
                node.spec.target.clone(),
            )
        };
        for dep in active {
            let dep_spec = &dep.spec;
            let dep_name = dep_spec.name_str();
            let child_key = if repo.get(dep_name).is_some() {
                let mut c = dep_spec.clone();
                c.name = Some(dep_name.to_string());
                let actor = format!("recipe `{key}` depends_on `{dep_spec}`");
                self.constrain_node(dep_name, &c, Some(key), &actor)?;
                dep_name.to_string()
            } else if repo.is_virtual(dep_name) {
                let mut c = dep_spec.clone();
                c.name = None;
                self.resolve_provider(dep_name, &c, Some(key))?
            } else {
                let path = self.child_path(Some(key), dep_name);
                return Err(ConcretizeError::new(ConcretizeErrorKind::UnknownPackage {
                    name: dep_name.to_string(),
                })
                .with_path(path));
            };
            let node = self.nodes.get_mut(key).unwrap();
            node.deps.insert(child_key.clone(), child_key);
        }

        // 3. propagate compiler and target to children lacking them
        let child_keys: Vec<String> = self.nodes[key].deps.values().cloned().collect();
        for child in child_keys {
            let node = self.nodes.get_mut(&child).expect("edges point at nodes");
            let mut inherited_compiler = None;
            if node.spec.compiler.is_none() {
                if let Some(c) = &parent_compiler {
                    node.spec.compiler = Some(c.clone());
                    inherited_compiler = Some(c.clone());
                    self.dirty.insert(child.clone());
                    self.touched.insert(child.clone());
                }
            }
            if node.spec.target.is_none() {
                if let Some(t) = &parent_target {
                    node.spec.target = Some(t.clone());
                    self.dirty.insert(child.clone());
                    self.touched.insert(child.clone());
                }
            }
            if let Some(c) = inherited_compiler {
                let keep: Vec<Val> = self
                    .cz
                    .config
                    .compilers
                    .iter()
                    .filter(|e| e.name == c.name && c.versions.contains(&e.version))
                    .map(|e| Val::Name(format!("{}@{}", e.name, e.version)))
                    .collect();
                let compiler_var = self.nodes[&child].compiler_var;
                let _ = self.csp.post(
                    compiler_var,
                    ConstraintKind::KeepOnly(keep),
                    Reason::new(
                        format!("inherited from `{key}`"),
                        format!("requires `%{c}`"),
                    ),
                );
            }
        }
        Ok(())
    }

    /// Any `^virtual` the recipes never asked for becomes a direct edge from
    /// the requesting root.
    fn resolve_unconsumed_pending(&mut self) -> Result<(), ConcretizeError> {
        let unconsumed: Vec<(String, String, Spec)> = self
            .pending
            .iter()
            .filter(|p| !p.consumed)
            .map(|p| (p.root.clone(), p.virtual_name.clone(), p.constraint.clone()))
            .collect();
        for (root, virtual_name, constraint) in unconsumed {
            let provider = self.resolve_provider(&virtual_name, &constraint, Some(&root))?;
            self.nodes
                .get_mut(&root)
                .expect("roots exist")
                .deps
                .insert(provider.clone(), provider);
        }
        for p in self.pending.iter_mut() {
            p.consumed = true;
        }
        Ok(())
    }

    fn check_cycles(&self) -> Result<(), ConcretizeError> {
        // DFS coloring: 0 = white, 1 = gray, 2 = black
        let mut color: BTreeMap<&str, u8> = BTreeMap::new();
        fn dfs<'s>(
            nodes: &'s BTreeMap<String, Node>,
            key: &'s str,
            color: &mut BTreeMap<&'s str, u8>,
        ) -> Result<(), ConcretizeErrorKind> {
            match color.get(key) {
                Some(1) => {
                    return Err(ConcretizeErrorKind::Cycle {
                        through: key.to_string(),
                    })
                }
                Some(2) => return Ok(()),
                _ => {}
            }
            color.insert(key, 1);
            for dep in nodes[key].deps.values() {
                dfs(nodes, dep, color)?;
            }
            color.insert(key, 2);
            Ok(())
        }
        for key in self.nodes.keys() {
            dfs(&self.nodes, key, &mut color).map_err(|kind| {
                let through = match &kind {
                    ConcretizeErrorKind::Cycle { through } => through.clone(),
                    _ => unreachable!("dfs only fails with Cycle"),
                };
                ConcretizeError::new(kind).with_path(self.path_to(&through))
            })?;
        }
        Ok(())
    }

    /// Adopts installed specs that satisfy node constraints (`--reuse`).
    fn adopt_reusable(&mut self) {
        let keys: Vec<String> = self.nodes.keys().cloned().collect();
        for key in keys {
            let node = &self.nodes[&key];
            if node.origin != Origin::Source {
                continue;
            }
            let mut constraint = node.spec.clone();
            constraint.dependencies.clear();
            let adopted = self.cz.config.installed.iter().find_map(|inst| {
                let root = inst.root_node();
                (root.spec.name.as_deref() == Some(key.as_str())
                    && inst.to_spec().satisfies(&constraint))
                .then(|| root.spec.clone())
            });
            if let Some(spec) = adopted {
                let node = self.nodes.get_mut(&key).unwrap();
                node.spec = spec;
                node.origin = Origin::Reused;
            }
        }
    }

    fn finalize(&mut self) -> Result<(), ConcretizeError> {
        let keys: Vec<String> = self.nodes.keys().cloned().collect();
        for key in keys {
            self.finalize_node(&key)?;
        }
        Ok(())
    }

    /// Re-finalizes only the keys touched by an incremental edit; untouched
    /// nodes adopt their already-finalized specs from the base solve.
    fn finalize_incremental(
        &mut self,
        touched: &BTreeSet<String>,
        finalized: &BTreeMap<String, Node>,
    ) -> Result<(), ConcretizeError> {
        let keys: Vec<String> = self.nodes.keys().cloned().collect();
        for key in keys {
            if touched.contains(&key) {
                self.finalize_node(&key)?;
            } else if let Some(done) = finalized.get(&key) {
                let node = self.nodes.get_mut(&key).expect("keys are node keys");
                node.spec = done.spec.clone();
                node.origin = done.origin.clone();
                node.deps = done.deps.clone();
            } else {
                self.finalize_node(&key)?;
            }
        }
        Ok(())
    }

    /// Fills one node's remaining choice points — external adoption, then
    /// version / compiler / target from the most-preferred surviving domain
    /// values — and validates its conflicts.
    fn finalize_node(&mut self, key: &str) -> Result<(), ConcretizeError> {
        if self.nodes[key].origin == Origin::Reused {
            return Ok(());
        }
        let repo: &Repo = self.cz.repo;
        let pkg = repo.get(key).expect("nodes have recipes");

        // externals first: adopting one pins version and variants
        let external = self
            .cz
            .config
            .externals_for(key)
            .iter()
            .find(|e| {
                let mut probe = self.nodes[key].spec.clone();
                probe.dependencies.clear();
                probe.constrain(&e.spec).is_ok()
            })
            .cloned();
        match external {
            Some(ext) => {
                let node = self.nodes.get_mut(key).unwrap();
                if let Err(e) = node.spec.constrain(&ext.spec) {
                    return Err(
                        ConcretizeError::unsatisfiable(e.to_string()).with_path(self.path_to(key))
                    );
                }
                // pin the external's version exactly
                if let Some(v) = ext.spec.versions.highest_mentioned().cloned() {
                    node.spec.versions = VersionConstraint::exactly(v.clone());
                    let version_var = node.version_var;
                    self.csp.reset(
                        version_var,
                        vec![Val::Version(v.clone())],
                        Reason::new(
                            format!("external `{}`", ext.prefix),
                            format!("pins `@={v}`"),
                        ),
                    );
                }
                // externals bring no build-time dependency edges
                let node = self.nodes.get_mut(key).unwrap();
                node.deps.clear();
                node.origin = Origin::External { prefix: ext.prefix };
            }
            None => {
                if !self.cz.config.buildable(key) {
                    return Err(ConcretizeError::new(ConcretizeErrorKind::NotBuildable {
                        name: key.to_string(),
                    })
                    .with_path(self.path_to(key)));
                }
                // version: the domain already holds exactly the admitted
                // declared versions, site preferences first; a user-pinned
                // exact version outside the declared list survives as the
                // accumulated constraint's concrete value
                let node_versions = self.nodes[key].spec.versions.clone();
                let version_var = self.nodes[key].version_var;
                let chosen = match self.csp.first(version_var) {
                    Some(Val::Version(v)) => Some(v.clone()),
                    _ => node_versions.concrete().cloned(),
                };
                let Some(version) = chosen else {
                    return Err(ConcretizeError::new(ConcretizeErrorKind::NoVersion {
                        name: key.to_string(),
                        constraint: node_versions.to_string(),
                    })
                    .with_path(self.path_to(key))
                    .with_explanation(Box::new(self.csp.explain(version_var))));
                };
                if self.cz.analysis {
                    let _ = self.csp.assign(
                        version_var,
                        &Val::Version(version.clone()),
                        Reason::new("decision", format!("selected `@={version}`")),
                    );
                }
                let node = self.nodes.get_mut(key).unwrap();
                node.spec.versions = VersionConstraint::exactly(version);
            }
        }

        // compiler: the domain holds the site entries surviving every
        // requirement, in site preference order
        let node_compiler = self.nodes[key].spec.compiler.clone();
        let compiler_var = self.nodes[key].compiler_var;
        let chosen_compiler = match &node_compiler {
            Some(c) => {
                let found = self.cz.config.find_compiler(c).ok_or_else(|| {
                    ConcretizeError::new(ConcretizeErrorKind::NoCompiler {
                        requested: c.to_string(),
                    })
                    .with_path(self.path_to(key))
                    .with_explanation(Box::new(self.csp.explain(compiler_var)))
                })?;
                CompilerSpec::new(
                    &found.name,
                    VersionConstraint::exactly(found.version.clone()),
                )
            }
            None => {
                let default = self.cz.config.default_compiler().ok_or_else(|| {
                    ConcretizeError::new(ConcretizeErrorKind::NoCompiler {
                        requested: "<site default>".to_string(),
                    })
                    .with_path(self.path_to(key))
                })?;
                CompilerSpec::new(
                    &default.name,
                    VersionConstraint::exactly(default.version.clone()),
                )
            }
        };
        if self.cz.analysis {
            let _ = self.csp.assign(
                compiler_var,
                &Val::Name(chosen_compiler.to_string()),
                Reason::new("decision", format!("selected `%{chosen_compiler}`")),
            );
        }
        // target
        let target = self.nodes[key]
            .spec
            .target
            .clone()
            .unwrap_or_else(|| self.cz.config.default_target.clone());
        {
            let node = self.nodes.get_mut(key).unwrap();
            node.spec.compiler = Some(chosen_compiler);
            node.spec.target = Some(target);
        }

        // keep variant decisions in the model so analysis-mode nogoods see
        // the final assignment
        if self.cz.analysis {
            let assignments: Vec<(VarId, VariantValue)> = self.nodes[key]
                .variant_vars
                .iter()
                .filter_map(|(name, &var)| {
                    self.nodes[key]
                        .spec
                        .variants
                        .get(name)
                        .map(|v| (var, v.clone()))
                })
                .collect();
            for (var, value) in assignments {
                let _ = self.csp.post(
                    var,
                    ConstraintKind::VariantIs(value.clone()),
                    Reason::new("decision", format!("selected `{value}`")),
                );
            }
        }

        // conflicts
        let violations = pkg.violated_conflicts(&self.nodes[key].spec);
        if !violations.is_empty() {
            let mut err = ConcretizeError::new(ConcretizeErrorKind::Conflict {
                name: key.to_string(),
                messages: violations,
            })
            .with_path(self.path_to(key));
            if self.cz.analysis {
                if let Err(explanation) = self.csp.propagate() {
                    err = err.with_explanation(explanation);
                }
            }
            return Err(err);
        }
        Ok(())
    }

    /// Extracts the concrete DAG reachable from `root_key`.
    fn extract(&self, root_key: &str) -> Result<ConcreteSpec, ConcretizeError> {
        self.extract_with(root_key, |_| None)
    }

    /// Incremental extraction: nodes outside the touched set's ancestor
    /// closure keep their base-solve entries (including content hashes).
    fn extract_incremental(
        &self,
        root_key: &str,
        touched: &BTreeSet<String>,
        base: &ConcreteSpec,
    ) -> Result<ConcreteSpec, ConcretizeError> {
        // a node's hash covers its whole subtree, so invalidation flows up:
        // dirty = touched plus every ancestor of a touched node
        let mut parents: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (key, node) in &self.nodes {
            for dep in node.deps.values() {
                parents.entry(dep.as_str()).or_default().push(key.as_str());
            }
        }
        let mut dirty: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<&str> = touched.iter().map(|k| k.as_str()).collect();
        while let Some(key) = stack.pop() {
            if dirty.insert(key) {
                if let Some(ps) = parents.get(key) {
                    stack.extend(ps.iter().copied());
                }
            }
        }
        self.extract_with(root_key, |key| {
            if dirty.contains(key) {
                None
            } else {
                base.nodes.get(key).cloned()
            }
        })
    }

    fn extract_with(
        &self,
        root_key: &str,
        cached: impl Fn(&str) -> Option<ConcreteNode>,
    ) -> Result<ConcreteSpec, ConcretizeError> {
        if !self.nodes.contains_key(root_key) {
            return Err(ConcretizeError::new(ConcretizeErrorKind::UnknownPackage {
                name: root_key.to_string(),
            }));
        }
        // hashes in dependency-first order
        let mut hashes: BTreeMap<String, String> = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        fn topo(
            nodes: &BTreeMap<String, Node>,
            key: &str,
            seen: &mut BTreeSet<String>,
            order: &mut Vec<String>,
        ) {
            if !seen.insert(key.to_string()) {
                return;
            }
            for dep in nodes[key].deps.values() {
                topo(nodes, dep, seen, order);
            }
            order.push(key.to_string());
        }
        let mut seen = BTreeSet::new();
        topo(&self.nodes, root_key, &mut seen, &mut order);

        let mut nodes = BTreeMap::new();
        for key in &order {
            if let Some(done) = cached(key) {
                hashes.insert(key.clone(), done.hash.clone());
                nodes.insert(key.clone(), done);
                continue;
            }
            let node = &self.nodes[key];
            let mut hash_input = node.spec.short();
            for (dep_name, dep_key) in &node.deps {
                hash_input.push_str(dep_name);
                hash_input.push('=');
                hash_input.push_str(&hashes[dep_key]);
                hash_input.push(';');
            }
            let hash = content_hash(&hash_input);
            hashes.insert(key.clone(), hash.clone());
            let mut spec = node.spec.clone();
            spec.dependencies.clear();
            nodes.insert(
                key.clone(),
                ConcreteNode {
                    spec,
                    deps: node.deps.clone(),
                    provides: node.provides.clone(),
                    origin: node.origin.clone(),
                    hash,
                },
            );
        }
        Ok(ConcreteSpec {
            root: root_key.to_string(),
            nodes,
        })
    }
}
