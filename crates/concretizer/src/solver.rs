//! The concretization algorithm: monotone constraint propagation to a
//! fixpoint, then greedy choice-point resolution.

use crate::config::SiteConfig;
use crate::error::ConcretizeError;
use crate::result::{content_hash, ConcreteNode, ConcreteSpec, Origin};
use benchpark_pkg::Repo;
use benchpark_spec::{CompilerSpec, Spec, VersionConstraint};
use benchpark_telemetry::TelemetrySink;
use std::collections::{BTreeMap, BTreeSet};

/// The concretizer: borrows a repository and site configuration.
pub struct Concretizer<'a> {
    repo: &'a Repo,
    config: &'a SiteConfig,
    telemetry: TelemetrySink,
}

impl<'a> Concretizer<'a> {
    /// Creates a solver for the given repository and site.
    pub fn new(repo: &'a Repo, config: &'a SiteConfig) -> Concretizer<'a> {
        Concretizer {
            repo,
            config,
            telemetry: TelemetrySink::noop(),
        }
    }

    /// Routes solver telemetry (solve counts, propagation passes, rejected
    /// provider candidates, per-environment `concretize` spans) to `sink`.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Concretizer<'a> {
        self.telemetry = sink;
        self
    }

    /// Concretizes a single abstract spec.
    pub fn concretize(&self, abstract_spec: &Spec) -> Result<ConcreteSpec, ConcretizeError> {
        let mut results = self.concretize_env(std::slice::from_ref(abstract_spec), true)?;
        Ok(results.pop().expect("one root yields one result"))
    }

    /// Concretizes an environment's root specs.
    ///
    /// With `unify = true` (Figure 3's `concretizer: unify: true`) all roots
    /// share one node table, so the environment contains at most one
    /// configuration of each package; conflicting roots fail with
    /// [`ConcretizeError::UnifyConflict`]. With `unify = false` each root is
    /// solved independently.
    pub fn concretize_env(
        &self,
        roots: &[Spec],
        unify: bool,
    ) -> Result<Vec<ConcreteSpec>, ConcretizeError> {
        let _span = self.telemetry.span("concretize");
        if unify {
            let mut solve = Solve::new(self);
            for root in roots {
                solve.add_root(root).map_err(|e| match e {
                    ConcretizeError::Unsatisfiable { message } => ConcretizeError::UnifyConflict {
                        name: root.name_str().to_string(),
                        message,
                    },
                    other => other,
                })?;
            }
            solve.run()?;
            roots
                .iter()
                .map(|r| solve.extract(&solve.root_key(r)))
                .collect()
        } else {
            roots
                .iter()
                .map(|root| {
                    let mut solve = Solve::new(self);
                    solve.add_root(root)?;
                    solve.run()?;
                    solve.extract(&solve.root_key(root))
                })
                .collect()
        }
    }
}

/// One node of the partial solution.
#[derive(Debug, Clone)]
struct Node {
    /// Accumulated constraints; `name` is always set, `dependencies` unused
    /// (edges live in `deps`).
    spec: Spec,
    /// Edges: resolved dependency package name → node key.
    deps: BTreeMap<String, String>,
    /// Virtuals this node provides in this solution.
    provides: Vec<String>,
    origin: Origin,
    /// Defaults have been applied at least once.
    defaulted: bool,
}

/// A user-requested dependency on a virtual (`^mpi+cuda`) awaiting provider
/// resolution.
#[derive(Debug)]
struct PendingVirtual {
    root: String,
    virtual_name: String,
    constraint: Spec,
    consumed: bool,
}

struct Solve<'a, 'b> {
    cz: &'b Concretizer<'a>,
    nodes: BTreeMap<String, Node>,
    pending: Vec<PendingVirtual>,
}

impl<'a, 'b> Solve<'a, 'b> {
    fn new(cz: &'b Concretizer<'a>) -> Self {
        Solve {
            cz,
            nodes: BTreeMap::new(),
            pending: Vec::new(),
        }
    }

    /// The node key a root spec resolves to (providers for virtual roots).
    fn root_key(&self, root: &Spec) -> String {
        let name = root.name_str();
        if self.nodes.contains_key(name) {
            return name.to_string();
        }
        // virtual root: find its provider
        self.nodes
            .iter()
            .find(|(_, n)| n.provides.iter().any(|v| v == name))
            .map(|(k, _)| k.clone())
            .unwrap_or_else(|| name.to_string())
    }

    fn add_root(&mut self, root: &Spec) -> Result<(), ConcretizeError> {
        let name = root
            .name
            .clone()
            .ok_or_else(|| ConcretizeError::Unsatisfiable {
                message: format!("root spec `{root}` has no package name"),
            })?;

        // Virtual root (`spack add mpi`): resolve the provider immediately.
        let key = if self.cz.repo.get(&name).is_none() && self.cz.repo.is_virtual(&name) {
            let mut constraint = root.clone();
            constraint.name = None;
            constraint.dependencies.clear();
            self.resolve_provider(&name, &constraint)?
        } else {
            name.clone()
        };

        let mut constraint = root.clone();
        constraint.name = Some(key.clone());
        let deps = std::mem::take(&mut constraint.dependencies);
        self.constrain_node(&key, &constraint)?;

        // apply site-wide requirements to roots
        for req in &self.cz.config.require {
            let mut r = req.clone();
            r.name = Some(key.clone());
            self.constrain_node(&key, &r)?;
        }

        // `^dep` constraints: real packages become forced edges now; virtuals
        // wait for provider resolution.
        for (dep_name, dep_spec) in deps {
            if self.cz.repo.get(&dep_name).is_some() {
                self.constrain_node(&dep_name, &dep_spec)?;
                self.nodes
                    .get_mut(&key)
                    .expect("root node exists")
                    .deps
                    .insert(dep_name.clone(), dep_name.clone());
            } else if self.cz.repo.is_virtual(&dep_name) {
                let mut c = dep_spec.clone();
                c.name = None;
                self.pending.push(PendingVirtual {
                    root: key.clone(),
                    virtual_name: dep_name,
                    constraint: c,
                    consumed: false,
                });
            } else {
                return Err(ConcretizeError::UnknownPackage { name: dep_name });
            }
        }
        Ok(())
    }

    /// Creates or constrains a node.
    fn constrain_node(&mut self, key: &str, constraint: &Spec) -> Result<bool, ConcretizeError> {
        if self.cz.repo.get(key).is_none() {
            return Err(ConcretizeError::UnknownPackage {
                name: key.to_string(),
            });
        }
        let node = self.nodes.entry(key.to_string()).or_insert_with(|| Node {
            spec: Spec::named(key),
            deps: BTreeMap::new(),
            provides: Vec::new(),
            origin: Origin::Source,
            defaulted: false,
        });
        let before = node.spec.clone();
        let mut c = constraint.clone();
        c.dependencies.clear();
        c.name = Some(key.to_string());
        node.spec.constrain(&c)?;
        Ok(node.spec != before)
    }

    /// Chooses a provider for `virtual_name` under `constraint`
    /// (an anonymous spec).
    fn resolve_provider(
        &mut self,
        virtual_name: &str,
        constraint: &Spec,
    ) -> Result<String, ConcretizeError> {
        // 1. an existing node already providing this virtual wins (unification)
        if let Some((key, _)) = self
            .nodes
            .iter()
            .find(|(_, n)| n.provides.iter().any(|v| v == virtual_name))
        {
            let key = key.clone();
            self.constrain_node(&key, constraint)?;
            return Ok(key);
        }

        let candidates: Vec<String> = {
            let mut names: Vec<String> = Vec::new();
            // 2. a node already in the DAG whose recipe provides the virtual
            //    (e.g. a user-forced `^openmpi`) wins over site preferences
            for (key, _) in self.nodes.iter() {
                if let Some(pkg) = self.cz.repo.get(key) {
                    if pkg.provides.iter().any(|p| p.virtual_name == virtual_name) {
                        names.push(key.clone());
                    }
                }
            }
            // site preferences next
            if let Some(prefs) = self.cz.config.provider_prefs.get(virtual_name) {
                names.extend(prefs.iter().cloned());
            }
            // then providers with externals, then the rest alphabetically
            let mut rest: Vec<String> = self
                .cz
                .repo
                .providers(virtual_name)
                .iter()
                .map(|p| p.name.clone())
                .collect();
            rest.sort_by_key(|n| (self.cz.config.externals_for(n).is_empty(), n.clone()));
            names.extend(rest);
            names
        };

        for candidate in candidates {
            let Some(pkg) = self.cz.repo.get(&candidate) else {
                continue;
            };
            let Some(provide) = pkg.provides.iter().find(|p| p.virtual_name == virtual_name) else {
                continue;
            };
            // candidate must be compatible with the constraint, plus any
            // `provides(…, when=…)` condition (choosing this provider then
            // *forces* the condition, e.g. the variant that enables the
            // virtual interface)
            let mut probe = Spec::named(&candidate);
            let mut c = constraint.clone();
            c.name = Some(candidate.clone());
            if let Some(when) = &provide.when {
                let mut cond = when.clone();
                cond.name = Some(candidate.clone());
                if c.constrain(&cond).is_err() {
                    self.cz.telemetry.incr("concretizer.rejected_providers", 1);
                    continue;
                }
            }
            if probe.constrain(&c).is_err() {
                self.cz.telemetry.incr("concretizer.rejected_providers", 1);
                continue;
            }
            // and with any existing node of that name
            if let Some(existing) = self.nodes.get(&candidate) {
                if !existing.spec.intersects(&probe) {
                    self.cz.telemetry.incr("concretizer.rejected_providers", 1);
                    continue;
                }
            }
            self.constrain_node(&candidate, &c)?;
            let node = self.nodes.get_mut(&candidate).expect("just created");
            if !node.provides.iter().any(|v| v == virtual_name) {
                node.provides.push(virtual_name.to_string());
            }
            // consume matching pending user constraints
            let mut pending_constraints = Vec::new();
            for p in self.pending.iter_mut() {
                if p.virtual_name == virtual_name && !p.consumed {
                    p.consumed = true;
                    pending_constraints.push(p.constraint.clone());
                }
            }
            for pc in pending_constraints {
                let mut c = pc;
                c.name = Some(candidate.clone());
                self.constrain_node(&candidate, &c)?;
            }
            return Ok(candidate);
        }
        Err(ConcretizeError::NoProvider {
            virtual_name: virtual_name.to_string(),
            constraint: constraint.to_string(),
        })
    }

    /// Runs propagation to fixpoint, then finalizes all choices.
    fn run(&mut self) -> Result<(), ConcretizeError> {
        const MAX_ITERS: usize = 64;
        self.cz.telemetry.incr("concretizer.solves", 1);
        for _ in 0..MAX_ITERS {
            self.cz.telemetry.incr("concretizer.passes", 1);
            if !self.propagate_once()? {
                break;
            }
        }
        self.resolve_unconsumed_pending()?;
        self.check_cycles()?;
        if self.cz.config.reuse {
            self.adopt_reusable();
        }
        self.finalize()?;
        Ok(())
    }

    /// One propagation sweep; returns true if anything changed.
    fn propagate_once(&mut self) -> Result<bool, ConcretizeError> {
        let mut changed = false;
        let keys: Vec<String> = self.nodes.keys().cloned().collect();
        for key in keys {
            // 1. apply recipe defaults once
            if !self.nodes[&key].defaulted {
                let pkg = self.cz.repo.get(&key).expect("nodes have recipes");
                let defaults: Vec<(String, benchpark_spec::VariantValue)> = pkg
                    .variants
                    .iter()
                    .map(|v| (v.name.clone(), v.default.clone()))
                    .collect();
                let node = self.nodes.get_mut(&key).unwrap();
                for (name, value) in defaults {
                    node.spec.variants.entry(name).or_insert(value);
                }
                node.defaulted = true;
                changed = true;
            }

            // 2. expand active dependencies
            let (active, parent_compiler, parent_target): (Vec<(Spec, String)>, _, _) = {
                let node = &self.nodes[&key];
                let pkg = self.cz.repo.get(&key).expect("nodes have recipes");
                let active = pkg
                    .active_dependencies(&node.spec)
                    .into_iter()
                    .map(|d| (d.spec.clone(), d.spec.name_str().to_string()))
                    .collect();
                (active, node.spec.compiler.clone(), node.spec.target.clone())
            };
            for (dep_spec, dep_name) in active {
                let child_key = if self.cz.repo.get(&dep_name).is_some() {
                    let mut c = dep_spec.clone();
                    c.name = Some(dep_name.clone());
                    if self.constrain_node(&dep_name, &c)? {
                        changed = true;
                    }
                    dep_name.clone()
                } else if self.cz.repo.is_virtual(&dep_name) {
                    let mut c = dep_spec.clone();
                    c.name = None;
                    self.resolve_provider(&dep_name, &c)?
                } else {
                    return Err(ConcretizeError::UnknownPackage { name: dep_name });
                };
                let node = self.nodes.get_mut(&key).unwrap();
                if node
                    .deps
                    .insert(child_key.clone(), child_key.clone())
                    .is_none()
                {
                    changed = true;
                }
            }

            // 3. propagate compiler and target to children lacking them
            let child_keys: Vec<String> = self.nodes[&key].deps.values().cloned().collect();
            for child in child_keys {
                let node = self.nodes.get_mut(&child).expect("edges point at nodes");
                if node.spec.compiler.is_none() {
                    if let Some(c) = &parent_compiler {
                        node.spec.compiler = Some(c.clone());
                        changed = true;
                    }
                }
                if node.spec.target.is_none() {
                    if let Some(t) = &parent_target {
                        node.spec.target = Some(t.clone());
                        changed = true;
                    }
                }
            }
        }
        Ok(changed)
    }

    /// Any `^virtual` the recipes never asked for becomes a direct edge from
    /// the requesting root.
    fn resolve_unconsumed_pending(&mut self) -> Result<(), ConcretizeError> {
        let unconsumed: Vec<(String, String, Spec)> = self
            .pending
            .iter()
            .filter(|p| !p.consumed)
            .map(|p| (p.root.clone(), p.virtual_name.clone(), p.constraint.clone()))
            .collect();
        for (root, virtual_name, constraint) in unconsumed {
            let provider = self.resolve_provider(&virtual_name, &constraint)?;
            self.nodes
                .get_mut(&root)
                .expect("roots exist")
                .deps
                .insert(provider.clone(), provider);
        }
        for p in self.pending.iter_mut() {
            p.consumed = true;
        }
        Ok(())
    }

    fn check_cycles(&self) -> Result<(), ConcretizeError> {
        // DFS coloring: 0 = white, 1 = gray, 2 = black
        let mut color: BTreeMap<&str, u8> = BTreeMap::new();
        fn dfs<'s>(
            nodes: &'s BTreeMap<String, Node>,
            key: &'s str,
            color: &mut BTreeMap<&'s str, u8>,
        ) -> Result<(), ConcretizeError> {
            match color.get(key) {
                Some(1) => {
                    return Err(ConcretizeError::Cycle {
                        through: key.to_string(),
                    })
                }
                Some(2) => return Ok(()),
                _ => {}
            }
            color.insert(key, 1);
            for dep in nodes[key].deps.values() {
                dfs(nodes, dep, color)?;
            }
            color.insert(key, 2);
            Ok(())
        }
        for key in self.nodes.keys() {
            dfs(&self.nodes, key, &mut color)?;
        }
        Ok(())
    }

    /// Adopts installed specs that satisfy node constraints (`--reuse`).
    fn adopt_reusable(&mut self) {
        let keys: Vec<String> = self.nodes.keys().cloned().collect();
        for key in keys {
            let node = &self.nodes[&key];
            if node.origin != Origin::Source {
                continue;
            }
            let mut constraint = node.spec.clone();
            constraint.dependencies.clear();
            let adopted = self.cz.config.installed.iter().find_map(|inst| {
                let root = inst.root_node();
                (root.spec.name.as_deref() == Some(key.as_str())
                    && inst.to_spec().satisfies(&constraint))
                .then(|| root.spec.clone())
            });
            if let Some(spec) = adopted {
                let node = self.nodes.get_mut(&key).unwrap();
                node.spec = spec;
                node.origin = Origin::Reused;
            }
        }
    }

    /// Fills remaining choice points: externals, versions, compilers,
    /// targets; then validates conflicts.
    fn finalize(&mut self) -> Result<(), ConcretizeError> {
        let keys: Vec<String> = self.nodes.keys().cloned().collect();
        for key in keys {
            if self.nodes[&key].origin == Origin::Reused {
                continue;
            }
            let pkg = self.cz.repo.get(&key).expect("nodes have recipes").clone();

            // externals first: adopting one pins version and variants
            let external = self
                .cz
                .config
                .externals_for(&key)
                .iter()
                .find(|e| {
                    let mut probe = self.nodes[&key].spec.clone();
                    probe.dependencies.clear();
                    probe.constrain(&e.spec).is_ok()
                })
                .cloned();
            match external {
                Some(ext) => {
                    let node = self.nodes.get_mut(&key).unwrap();
                    node.spec.constrain(&ext.spec)?;
                    // pin the external's version exactly
                    if let Some(v) = ext.spec.versions.highest_mentioned() {
                        node.spec.versions = VersionConstraint::exactly(v.clone());
                    }
                    // externals bring no build-time dependency edges
                    node.deps.clear();
                    node.origin = Origin::External { prefix: ext.prefix };
                }
                None => {
                    if !self.cz.config.buildable(&key) {
                        return Err(ConcretizeError::NotBuildable { name: key });
                    }
                    // version: site preference first, then newest admitted
                    let node_versions = self.nodes[&key].spec.versions.clone();
                    let chosen = {
                        let site_pref = self.cz.config.version_prefs.get(&key);
                        let preferred = pkg
                            .admitted_versions(&node_versions)
                            .find(|v| site_pref.is_some_and(|p| p.contains(v)));
                        preferred
                            .or_else(|| pkg.admitted_versions(&node_versions).next())
                            .cloned()
                            .or_else(|| {
                                // a user-pinned exact version not in the recipe
                                node_versions.concrete().cloned()
                            })
                    };
                    let Some(version) = chosen else {
                        return Err(ConcretizeError::NoVersion {
                            name: key.clone(),
                            constraint: node_versions.to_string(),
                        });
                    };
                    let node = self.nodes.get_mut(&key).unwrap();
                    node.spec.versions = VersionConstraint::exactly(version);
                }
            }

            // compiler
            let node_compiler = self.nodes[&key].spec.compiler.clone();
            let chosen_compiler =
                match &node_compiler {
                    Some(c) => {
                        let found = self.cz.config.find_compiler(c).ok_or_else(|| {
                            ConcretizeError::NoCompiler {
                                requested: c.to_string(),
                            }
                        })?;
                        CompilerSpec::new(
                            &found.name,
                            VersionConstraint::exactly(found.version.clone()),
                        )
                    }
                    None => {
                        let default = self.cz.config.default_compiler().ok_or(
                            ConcretizeError::NoCompiler {
                                requested: "<site default>".to_string(),
                            },
                        )?;
                        CompilerSpec::new(
                            &default.name,
                            VersionConstraint::exactly(default.version.clone()),
                        )
                    }
                };
            // target
            let target = self.nodes[&key]
                .spec
                .target
                .clone()
                .unwrap_or_else(|| self.cz.config.default_target.clone());
            {
                let node = self.nodes.get_mut(&key).unwrap();
                node.spec.compiler = Some(chosen_compiler);
                node.spec.target = Some(target);
            }

            // conflicts
            let violations = pkg.violated_conflicts(&self.nodes[&key].spec);
            if !violations.is_empty() {
                return Err(ConcretizeError::Conflict {
                    name: key,
                    messages: violations,
                });
            }
        }
        Ok(())
    }

    /// Extracts the concrete DAG reachable from `root_key`.
    fn extract(&self, root_key: &str) -> Result<ConcreteSpec, ConcretizeError> {
        if !self.nodes.contains_key(root_key) {
            return Err(ConcretizeError::UnknownPackage {
                name: root_key.to_string(),
            });
        }
        // reachable set
        let mut reach = BTreeSet::new();
        let mut stack = vec![root_key.to_string()];
        while let Some(k) = stack.pop() {
            if reach.insert(k.clone()) {
                for dep in self.nodes[&k].deps.values() {
                    stack.push(dep.clone());
                }
            }
        }
        // hashes in dependency-first order
        let mut hashes: BTreeMap<String, String> = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        fn topo(
            nodes: &BTreeMap<String, Node>,
            key: &str,
            seen: &mut BTreeSet<String>,
            order: &mut Vec<String>,
        ) {
            if !seen.insert(key.to_string()) {
                return;
            }
            for dep in nodes[key].deps.values() {
                topo(nodes, dep, seen, order);
            }
            order.push(key.to_string());
        }
        let mut seen = BTreeSet::new();
        topo(&self.nodes, root_key, &mut seen, &mut order);

        let mut nodes = BTreeMap::new();
        for key in &order {
            let node = &self.nodes[key];
            let mut hash_input = node.spec.short();
            for (dep_name, dep_key) in &node.deps {
                hash_input.push_str(dep_name);
                hash_input.push('=');
                hash_input.push_str(&hashes[dep_key]);
                hash_input.push(';');
            }
            let hash = content_hash(&hash_input);
            hashes.insert(key.clone(), hash.clone());
            let mut spec = node.spec.clone();
            spec.dependencies.clear();
            nodes.insert(
                key.clone(),
                ConcreteNode {
                    spec,
                    deps: node.deps.clone(),
                    provides: node.provides.clone(),
                    origin: node.origin.clone(),
                    hash,
                },
            );
        }
        let _ = reach;
        Ok(ConcreteSpec {
            root: root_key.to_string(),
            nodes,
        })
    }
}
