//! Site configuration consumed by the solver: the semantic content of
//! `compilers.yaml` and `packages.yaml` (paper §3.1.2, Figure 4).

use benchpark_spec::{Spec, Version, VersionConstraint};
use std::collections::BTreeMap;

/// A compiler installation available on the system (one `compilers.yaml`
/// entry).
#[derive(Debug, Clone)]
pub struct CompilerEntry {
    /// Compiler name (`gcc`).
    pub name: String,
    /// Exact version (`12.1.1`).
    pub version: Version,
    /// Installation prefix on the (simulated) system.
    pub prefix: String,
}

impl CompilerEntry {
    /// Builds an entry from `name@version`.
    pub fn new(name: &str, version: &str, prefix: &str) -> CompilerEntry {
        CompilerEntry {
            name: name.to_string(),
            version: Version::new(version),
            prefix: prefix.to_string(),
        }
    }
}

/// An externally-installed package (a `packages.yaml` `externals:` entry,
/// Figure 4).
#[derive(Debug, Clone)]
pub struct External {
    /// The external's spec, e.g. `intel-oneapi-mkl@2022.1.0`. Treated as the
    /// authoritative description of what is installed.
    pub spec: Spec,
    /// Filesystem prefix.
    pub prefix: String,
}

impl External {
    /// Builds an external from spec text and prefix.
    pub fn new(spec: &str, prefix: &str) -> External {
        External {
            spec: spec.parse().expect("external spec must parse"),
            prefix: prefix.to_string(),
        }
    }
}

/// Per-site configuration for the concretizer.
#[derive(Debug, Clone, Default)]
pub struct SiteConfig {
    /// Compilers installed on the system, in preference order.
    pub compilers: Vec<CompilerEntry>,
    /// Externals, keyed by package name.
    pub externals: BTreeMap<String, Vec<External>>,
    /// `buildable: false` packages (must come from externals).
    pub not_buildable: Vec<String>,
    /// Preferred providers per virtual, in order (`mpi → [mvapich2]`).
    pub provider_prefs: BTreeMap<String, Vec<String>>,
    /// Preferred version constraint per package.
    pub version_prefs: BTreeMap<String, VersionConstraint>,
    /// Default target microarchitecture for the system.
    pub default_target: String,
    /// Extra constraints applied to every root (site policy), e.g. a
    /// default variant setting.
    pub require: Vec<Spec>,
    /// Already-installed concrete specs available for reuse.
    pub installed: Vec<crate::result::ConcreteSpec>,
    /// Reuse installed specs when they satisfy the constraints.
    pub reuse: bool,
}

impl SiteConfig {
    /// A minimal config for tests and examples: gcc 12.1.1, MVAPICH2 and MKL
    /// as externals (the Figure 4 setup) on a Skylake system.
    pub fn example_cts() -> SiteConfig {
        let mut externals = BTreeMap::new();
        externals.insert(
            "mvapich2".to_string(),
            vec![External::new(
                "mvapich2@2.3.7 target=skylake_avx512",
                "/path/to/mvapich2",
            )],
        );
        externals.insert(
            "intel-oneapi-mkl".to_string(),
            vec![External::new(
                "intel-oneapi-mkl@2022.1.0 target=skylake_avx512",
                "/path/to/intel-oneapi-mkl",
            )],
        );
        let mut provider_prefs = BTreeMap::new();
        provider_prefs.insert("mpi".to_string(), vec!["mvapich2".to_string()]);
        provider_prefs.insert("blas".to_string(), vec!["intel-oneapi-mkl".to_string()]);
        provider_prefs.insert("lapack".to_string(), vec!["intel-oneapi-mkl".to_string()]);
        SiteConfig {
            compilers: vec![
                CompilerEntry::new("gcc", "12.1.1", "/usr/tce/gcc-12.1.1"),
                CompilerEntry::new("intel", "2021.6.0", "/usr/tce/intel-2021.6.0"),
            ],
            externals,
            not_buildable: vec!["mvapich2".to_string(), "intel-oneapi-mkl".to_string()],
            provider_prefs,
            version_prefs: BTreeMap::new(),
            default_target: "skylake_avx512".to_string(),
            require: Vec::new(),
            installed: Vec::new(),
            reuse: false,
        }
    }

    /// Is this package allowed to be built from source?
    pub fn buildable(&self, name: &str) -> bool {
        !self.not_buildable.iter().any(|n| n == name)
    }

    /// Externals for a package, if any.
    pub fn externals_for(&self, name: &str) -> &[External] {
        self.externals
            .get(name)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The default compiler (first entry).
    pub fn default_compiler(&self) -> Option<&CompilerEntry> {
        self.compilers.first()
    }

    /// Finds an installed compiler matching a constraint.
    pub fn find_compiler(&self, spec: &benchpark_spec::CompilerSpec) -> Option<&CompilerEntry> {
        self.compilers
            .iter()
            .find(|c| c.name == spec.name && spec.versions.contains(&c.version))
    }
}
