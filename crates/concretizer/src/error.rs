//! Concretization failure modes.

use benchpark_spec::SpecError;
use std::fmt;

/// Why concretization failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ConcretizeError {
    /// The repository has no recipe (and no provider) for this name.
    UnknownPackage { name: String },
    /// A virtual package has no provider compatible with the constraints.
    NoProvider {
        virtual_name: String,
        constraint: String,
    },
    /// No declared version of the package satisfies the constraints.
    NoVersion { name: String, constraint: String },
    /// The requested compiler is not installed on this system.
    NoCompiler { requested: String },
    /// Constraint propagation produced a contradiction.
    Unsatisfiable { message: String },
    /// A recipe conflict was violated.
    Conflict { name: String, messages: Vec<String> },
    /// The package may not be built and no external matches.
    NotBuildable { name: String },
    /// The dependency graph contains a cycle.
    Cycle { through: String },
    /// `unify: true` and two roots need incompatible configurations.
    UnifyConflict { name: String, message: String },
}

impl From<SpecError> for ConcretizeError {
    fn from(e: SpecError) -> Self {
        ConcretizeError::Unsatisfiable {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for ConcretizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcretizeError::UnknownPackage { name } => {
                write!(f, "unknown package `{name}`")
            }
            ConcretizeError::NoProvider {
                virtual_name,
                constraint,
            } => write!(
                f,
                "no provider of virtual `{virtual_name}` satisfies `{constraint}`"
            ),
            ConcretizeError::NoVersion { name, constraint } => {
                write!(
                    f,
                    "no declared version of `{name}` satisfies `@{constraint}`"
                )
            }
            ConcretizeError::NoCompiler { requested } => {
                write!(f, "compiler `{requested}` is not installed on this system")
            }
            ConcretizeError::Unsatisfiable { message } => write!(f, "unsatisfiable: {message}"),
            ConcretizeError::Conflict { name, messages } => {
                write!(f, "conflicts in `{name}`: {}", messages.join("; "))
            }
            ConcretizeError::NotBuildable { name } => write!(
                f,
                "package `{name}` is not buildable and no external installation matches"
            ),
            ConcretizeError::Cycle { through } => {
                write!(f, "dependency cycle through `{through}`")
            }
            ConcretizeError::UnifyConflict { name, message } => {
                write!(f, "unify conflict on `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for ConcretizeError {}
