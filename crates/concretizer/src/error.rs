//! Concretization failure modes, with dependency-path context and
//! justification chains.

use crate::csp::Explanation;
use benchpark_spec::SpecError;
use std::fmt;

/// Why concretization failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ConcretizeErrorKind {
    /// The repository has no recipe (and no provider) for this name.
    UnknownPackage { name: String },
    /// A virtual package has no provider compatible with the constraints.
    NoProvider {
        virtual_name: String,
        constraint: String,
    },
    /// No declared version of the package satisfies the constraints.
    NoVersion { name: String, constraint: String },
    /// The requested compiler is not installed on this system.
    NoCompiler { requested: String },
    /// Constraint propagation produced a contradiction.
    Unsatisfiable { message: String },
    /// A recipe conflict was violated.
    Conflict { name: String, messages: Vec<String> },
    /// The package may not be built and no external matches.
    NotBuildable { name: String },
    /// The dependency graph contains a cycle.
    Cycle { through: String },
    /// `unify: true` and two roots need incompatible configurations.
    UnifyConflict { name: String, message: String },
}

/// A concretization failure: the failure kind, the dependency path from the
/// root to the failing package (`a -> b -> c`), and — when the failure came
/// from a domain wipeout in the propagation core — the justification chain
/// recording which constraint removed which candidate and why.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcretizeError {
    pub kind: ConcretizeErrorKind,
    /// Dependency chain from a root to the failing package. Empty or
    /// single-element paths add no context and are not displayed.
    pub path: Vec<String>,
    /// The justification chain, when the propagation core produced one.
    pub explanation: Option<Box<Explanation>>,
}

impl ConcretizeError {
    /// Wraps a failure kind with no path or explanation.
    pub fn new(kind: ConcretizeErrorKind) -> ConcretizeError {
        ConcretizeError {
            kind,
            path: Vec::new(),
            explanation: None,
        }
    }

    /// Shorthand for a propagation contradiction.
    pub fn unsatisfiable(message: impl Into<String>) -> ConcretizeError {
        ConcretizeError::new(ConcretizeErrorKind::Unsatisfiable {
            message: message.into(),
        })
    }

    /// Attaches the dependency path from the root to the failing package.
    pub fn with_path(mut self, path: Vec<String>) -> ConcretizeError {
        self.path = path;
        self
    }

    /// Attaches a justification chain from the propagation core.
    pub fn with_explanation(mut self, explanation: Box<Explanation>) -> ConcretizeError {
        self.explanation = Some(explanation);
        self
    }

    /// The failing package's name, when the kind names one.
    pub fn package(&self) -> Option<&str> {
        match &self.kind {
            ConcretizeErrorKind::UnknownPackage { name }
            | ConcretizeErrorKind::NoVersion { name, .. }
            | ConcretizeErrorKind::Conflict { name, .. }
            | ConcretizeErrorKind::NotBuildable { name }
            | ConcretizeErrorKind::UnifyConflict { name, .. } => Some(name),
            ConcretizeErrorKind::NoProvider { virtual_name, .. } => Some(virtual_name),
            _ => None,
        }
    }

    /// The full rustc-style report: headline, dependency path, and the
    /// justification chain as `= note:` lines.
    pub fn render(&self) -> String {
        let headline = self.kind.to_string();
        let mut out = match &self.explanation {
            Some(explanation) => explanation.render(&headline),
            None => format!("error: {headline}\n"),
        };
        if self.path.len() >= 2 {
            out.push_str(&format!(
                "  = note: required via `{}`\n",
                self.path.join(" -> ")
            ));
        }
        out
    }
}

impl From<SpecError> for ConcretizeError {
    fn from(e: SpecError) -> Self {
        ConcretizeError::unsatisfiable(e.to_string())
    }
}

impl From<ConcretizeErrorKind> for ConcretizeError {
    fn from(kind: ConcretizeErrorKind) -> Self {
        ConcretizeError::new(kind)
    }
}

impl fmt::Display for ConcretizeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcretizeErrorKind::UnknownPackage { name } => {
                write!(f, "unknown package `{name}`")
            }
            ConcretizeErrorKind::NoProvider {
                virtual_name,
                constraint,
            } => write!(
                f,
                "no provider of virtual `{virtual_name}` satisfies `{constraint}`"
            ),
            ConcretizeErrorKind::NoVersion { name, constraint } => {
                write!(
                    f,
                    "no declared version of `{name}` satisfies `@{constraint}`"
                )
            }
            ConcretizeErrorKind::NoCompiler { requested } => {
                write!(f, "compiler `{requested}` is not installed on this system")
            }
            ConcretizeErrorKind::Unsatisfiable { message } => {
                write!(f, "unsatisfiable: {message}")
            }
            ConcretizeErrorKind::Conflict { name, messages } => {
                write!(f, "conflicts in `{name}`: {}", messages.join("; "))
            }
            ConcretizeErrorKind::NotBuildable { name } => write!(
                f,
                "package `{name}` is not buildable and no external installation matches"
            ),
            ConcretizeErrorKind::Cycle { through } => {
                write!(f, "dependency cycle through `{through}`")
            }
            ConcretizeErrorKind::UnifyConflict { name, message } => {
                write!(f, "unify conflict on `{name}`: {message}")
            }
        }
    }
}

impl fmt::Display for ConcretizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.kind.fmt(f)?;
        if self.path.len() >= 2 {
            write!(f, " (required via `{}`)", self.path.join(" -> "))?;
        }
        Ok(())
    }
}

impl std::error::Error for ConcretizeError {}
