//! Tests for the concretizer.

use crate::{ConcretizeErrorKind, Concretizer, External, Origin, SiteConfig};
use benchpark_pkg::Repo;
use benchpark_spec::Spec;

fn spec(s: &str) -> Spec {
    s.parse().unwrap()
}

fn cts<'a>(repo: &'a Repo, config: &'a SiteConfig) -> Concretizer<'a> {
    Concretizer::new(repo, config)
}

#[test]
fn concretize_saxpy_paper_spec() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let result = cts(&repo, &config)
        .concretize(&spec("saxpy@1.0.0 +openmp ^cmake@3.23.1"))
        .unwrap();

    let root = result.root_node();
    assert!(root.spec.is_concrete(), "root not concrete: {}", root.spec);
    assert_eq!(root.spec.versions.concrete().unwrap().as_str(), "1.0.0");
    assert_eq!(root.spec.target.as_deref(), Some("skylake_avx512"));
    let compiler = root.spec.compiler.as_ref().unwrap();
    assert_eq!(compiler.name, "gcc");
    assert_eq!(compiler.versions.concrete().unwrap().as_str(), "12.1.1");

    // dependency closure: cmake (build), mpi→mvapich2 (external), hwloc via mvapich2? (external has no deps)
    assert!(result.nodes.contains_key("cmake"));
    assert!(result.nodes.contains_key("mvapich2"));
    let cmake = &result.nodes["cmake"];
    assert_eq!(cmake.spec.versions.concrete().unwrap().as_str(), "3.23.1");

    // the chosen mpi provider is the external, never built
    let mpi = &result.nodes["mvapich2"];
    assert!(matches!(mpi.origin, Origin::External { .. }));
    assert!(mpi.provides.contains(&"mpi".to_string()));
}

#[test]
fn defaults_fill_unset_variants() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let result = cts(&repo, &config).concretize(&spec("saxpy")).unwrap();
    let root = result.root_node();
    use benchpark_spec::VariantValue;
    assert_eq!(
        root.spec.variants.get("openmp"),
        Some(&VariantValue::Bool(true))
    );
    assert_eq!(
        root.spec.variants.get("cuda"),
        Some(&VariantValue::Bool(false))
    );
    assert_eq!(
        root.spec.variants.get("rocm"),
        Some(&VariantValue::Bool(false))
    );
}

#[test]
fn user_variants_override_defaults() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let result = cts(&repo, &config)
        .concretize(&spec("saxpy~openmp+cuda"))
        .unwrap();
    use benchpark_spec::VariantValue;
    let root = result.root_node();
    assert_eq!(
        root.spec.variants.get("openmp"),
        Some(&VariantValue::Bool(false))
    );
    assert_eq!(
        root.spec.variants.get("cuda"),
        Some(&VariantValue::Bool(true))
    );
    // +cuda activates the conditional dependency
    assert!(result.nodes.contains_key("cuda"));
}

#[test]
fn conditional_deps_follow_variants() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let plain = cts(&repo, &config)
        .concretize(&spec("saxpy+openmp"))
        .unwrap();
    assert!(!plain.nodes.contains_key("cuda"));
    assert!(!plain.nodes.contains_key("hip"));

    let rocm = cts(&repo, &config)
        .concretize(&spec("saxpy+rocm~openmp"))
        .unwrap();
    assert!(rocm.nodes.contains_key("hip"));
    assert!(!rocm.nodes.contains_key("cuda"));
}

#[test]
fn amg_full_stack() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    // Figure 2/3's spec
    let result = cts(&repo, &config)
        .concretize(&spec("amg2023+caliper"))
        .unwrap();
    for dep in [
        "hypre",
        "caliper",
        "adiak",
        "cmake",
        "mvapich2",
        "intel-oneapi-mkl",
    ] {
        assert!(result.nodes.contains_key(dep), "missing {dep}:\n{result}");
    }
    // MKL provides both blas and lapack — exactly one node for both virtuals
    let mkl = &result.nodes["intel-oneapi-mkl"];
    assert!(mkl.provides.contains(&"blas".to_string()));
    assert!(mkl.provides.contains(&"lapack".to_string()));
    assert!(matches!(mkl.origin, Origin::External { .. }));
    // everything concrete
    for node in result.nodes.values() {
        assert!(node.spec.is_concrete(), "not concrete: {}", node.spec);
    }
}

#[test]
fn virtual_root_resolves_to_provider() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let result = cts(&repo, &config).concretize(&spec("mpi")).unwrap();
    assert_eq!(result.root, "mvapich2"); // site preference
}

#[test]
fn provider_preference_is_honored() {
    let repo = Repo::builtin();
    let mut config = SiteConfig::example_cts();
    config
        .provider_prefs
        .insert("mpi".into(), vec!["openmpi".into()]);
    config.not_buildable.clear();
    let result = cts(&repo, &config)
        .concretize(&spec("osu-micro-benchmarks"))
        .unwrap();
    assert!(result.nodes.contains_key("openmpi"), "{result}");
}

#[test]
fn explicit_provider_request_wins() {
    let repo = Repo::builtin();
    let mut config = SiteConfig::example_cts();
    config.not_buildable.clear();
    let result = cts(&repo, &config)
        .concretize(&spec("osu-micro-benchmarks ^openmpi@4.1.4"))
        .unwrap();
    assert!(result.nodes.contains_key("openmpi"), "{result}");
    assert_eq!(
        result.nodes["openmpi"]
            .spec
            .versions
            .concrete()
            .unwrap()
            .as_str(),
        "4.1.4"
    );
    // openmpi is adopted as the mpi provider; mvapich2 is not pulled in
    assert!(!result.nodes.contains_key("mvapich2"));
}

#[test]
fn version_selection_prefers_newest_admitted() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let result = cts(&repo, &config)
        .concretize(&spec("cmake@3.20:"))
        .unwrap();
    assert_eq!(
        result
            .root_node()
            .spec
            .versions
            .concrete()
            .unwrap()
            .as_str(),
        "3.23.1"
    );

    let result = cts(&repo, &config)
        .concretize(&spec("cmake@:3.21"))
        .unwrap();
    assert_eq!(
        result
            .root_node()
            .spec
            .versions
            .concrete()
            .unwrap()
            .as_str(),
        "3.20.2"
    );
}

#[test]
fn site_version_preference() {
    let repo = Repo::builtin();
    let mut config = SiteConfig::example_cts();
    config
        .version_prefs
        .insert("cmake".into(), spec("cmake@3.20.2").versions);
    let result = cts(&repo, &config).concretize(&spec("cmake")).unwrap();
    assert_eq!(
        result
            .root_node()
            .spec
            .versions
            .concrete()
            .unwrap()
            .as_str(),
        "3.20.2"
    );
}

#[test]
fn no_version_error() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let err = cts(&repo, &config)
        .concretize(&spec("cmake@99.9"))
        .unwrap_err();
    assert!(
        matches!(err.kind, ConcretizeErrorKind::NoVersion { .. }),
        "{err}"
    );
}

#[test]
fn unknown_package_error() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let err = cts(&repo, &config)
        .concretize(&spec("no-such-pkg"))
        .unwrap_err();
    assert!(matches!(
        err.kind,
        ConcretizeErrorKind::UnknownPackage { .. }
    ));
}

/// The dependency path in errors must carry the whole parent chain, not
/// just the failing leaf: `a -> b -> c` when `a` pulls `b` pulls an
/// unknown `c`.
#[test]
fn error_path_carries_full_parent_chain() {
    use benchpark_pkg::{DepType, PackageDef};
    let mut repo = Repo::new();
    repo.add(
        PackageDef::new("a", "chain root")
            .version("1.0")
            .depends_on("b", DepType::Link),
    );
    repo.add(
        PackageDef::new("b", "chain middle")
            .version("1.0")
            .depends_on("c", DepType::Link),
    );
    let config = SiteConfig::example_cts();
    let err = cts(&repo, &config).concretize(&spec("a")).unwrap_err();
    assert!(matches!(err.kind, ConcretizeErrorKind::UnknownPackage { ref name } if name == "c"));
    assert_eq!(err.path, vec!["a", "b", "c"]);
    assert!(
        err.to_string().contains("(required via `a -> b -> c`)"),
        "{err}"
    );
}

#[test]
fn unknown_compiler_error() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let err = cts(&repo, &config)
        .concretize(&spec("saxpy%clang@14"))
        .unwrap_err();
    assert!(
        matches!(err.kind, ConcretizeErrorKind::NoCompiler { .. }),
        "{err}"
    );
}

#[test]
fn conflict_error() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let err = cts(&repo, &config)
        .concretize(&spec("saxpy+cuda+rocm"))
        .unwrap_err();
    assert!(
        matches!(err.kind, ConcretizeErrorKind::Conflict { .. }),
        "{err}"
    );
}

#[test]
fn not_buildable_without_external() {
    let repo = Repo::builtin();
    let mut config = SiteConfig::example_cts();
    config.not_buildable.push("cmake".to_string());
    let err = cts(&repo, &config).concretize(&spec("cmake")).unwrap_err();
    assert!(
        matches!(err.kind, ConcretizeErrorKind::NotBuildable { .. }),
        "{err}"
    );
}

/// Figure 4 semantics: `buildable: false` + externals → the external is used.
#[test]
fn golden_fig4_externals_are_used() {
    let repo = Repo::builtin();
    let mut config = SiteConfig::example_cts();
    config.externals.insert(
        "cmake".to_string(),
        vec![External::new("cmake@3.23.1", "/usr/tce/cmake")],
    );
    let result = cts(&repo, &config).concretize(&spec("saxpy")).unwrap();
    let cmake = &result.nodes["cmake"];
    match &cmake.origin {
        Origin::External { prefix } => assert_eq!(prefix, "/usr/tce/cmake"),
        other => panic!("expected external, got {other:?}"),
    }
}

#[test]
fn compiler_propagates_to_dependencies() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let result = cts(&repo, &config)
        .concretize(&spec("amg2023 %gcc@12.1.1"))
        .unwrap();
    for node in result.nodes.values() {
        let c = node.spec.compiler.as_ref().unwrap();
        assert_eq!(c.name, "gcc", "node {} got {}", node.spec.short(), c);
    }
}

#[test]
fn dag_hash_stability_and_sensitivity() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let a = cts(&repo, &config)
        .concretize(&spec("saxpy+openmp"))
        .unwrap();
    let b = cts(&repo, &config)
        .concretize(&spec("saxpy+openmp"))
        .unwrap();
    assert_eq!(a.dag_hash(), b.dag_hash(), "hashes must be deterministic");

    let c = cts(&repo, &config)
        .concretize(&spec("saxpy~openmp"))
        .unwrap();
    assert_ne!(
        a.dag_hash(),
        c.dag_hash(),
        "different variants, different hash"
    );

    // changing a dependency changes the root hash
    let mut config2 = SiteConfig::example_cts();
    config2
        .version_prefs
        .insert("cmake".into(), spec("cmake@3.20.2").versions);
    let d = cts(&repo, &config2)
        .concretize(&spec("saxpy+openmp"))
        .unwrap();
    assert_ne!(a.dag_hash(), d.dag_hash());
}

#[test]
fn build_order_is_dependency_first() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let result = cts(&repo, &config)
        .concretize(&spec("amg2023+caliper"))
        .unwrap();
    let order: Vec<&str> = result
        .build_order()
        .iter()
        .map(|n| n.spec.name.as_deref().unwrap())
        .collect();
    let pos = |name: &str| order.iter().position(|n| *n == name).unwrap();
    assert!(pos("hypre") < pos("amg2023"));
    assert!(pos("adiak") < pos("caliper"));
    assert!(pos("caliper") < pos("amg2023"));
    assert_eq!(*order.last().unwrap(), "amg2023");
}

#[test]
fn concretized_satisfies_abstract() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    for text in [
        "saxpy@1.0.0 +openmp ^cmake@3.23.1",
        "amg2023+caliper",
        "stream",
        "lulesh+openmp",
        "osu-micro-benchmarks",
    ] {
        let abstract_spec = spec(text);
        let result = cts(&repo, &config).concretize(&abstract_spec).unwrap();
        let full = result.to_spec();
        assert!(
            full.satisfies(&abstract_spec),
            "{full} does not satisfy {abstract_spec}"
        );
    }
}

#[test]
fn conditional_provides_forces_condition() {
    use benchpark_pkg::{DepType, PackageDef};
    // netlib provides scalapack only when +scalapack is enabled
    let mut repo = Repo::builtin();
    repo.add(
        PackageDef::new("netlib", "reference BLAS/LAPACK/ScaLAPACK")
            .version("3.10")
            .variant_bool("scalapack", false, "Build the distributed layer")
            .provides_when("scalapack", "+scalapack")
            .depends_on_when("mpi", DepType::Link, "+scalapack"),
    );
    repo.add(
        PackageDef::new("solver-app", "needs a scalapack provider")
            .version("1.0")
            .depends_on("scalapack", DepType::Link),
    );
    let config = SiteConfig::example_cts();
    let result = cts(&repo, &config).concretize(&spec("solver-app")).unwrap();
    let netlib = &result.nodes["netlib"];
    use benchpark_spec::VariantValue;
    assert_eq!(
        netlib.spec.variants.get("scalapack"),
        Some(&VariantValue::Bool(true)),
        "choosing the conditional provider must force its condition:\n{result}"
    );
    assert!(netlib.provides.contains(&"scalapack".to_string()));
    // the forced variant activates the conditional mpi dependency too
    assert!(result.nodes.contains_key("mvapich2"), "{result}");
}

#[test]
fn conditional_provides_skipped_when_contradicted() {
    use benchpark_pkg::{DepType, PackageDef};
    let mut repo = Repo::builtin();
    repo.add(
        PackageDef::new("netlib", "reference implementation")
            .version("3.10")
            .variant_bool("scalapack", false, "distributed layer")
            .provides_when("scalapack", "+scalapack"),
    );
    repo.add(
        PackageDef::new("solver-app", "forces the provider variant off")
            .version("1.0")
            .depends_on("netlib~scalapack", DepType::Link)
            .depends_on("scalapack", DepType::Link),
    );
    let config = SiteConfig::example_cts();
    // netlib is pinned ~scalapack, so it cannot provide the virtual; there is
    // no other provider → NoProvider
    let err = cts(&repo, &config)
        .concretize(&spec("solver-app"))
        .unwrap_err();
    assert!(
        matches!(err.kind, ConcretizeErrorKind::NoProvider { .. }),
        "{err}"
    );
}

// ---------------------------------------------------------------------------
// Environments: unify semantics (Figure 3)
// ---------------------------------------------------------------------------

#[test]
fn unified_env_shares_nodes() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let results = cts(&repo, &config)
        .concretize_env(&[spec("saxpy+openmp"), spec("amg2023")], true)
        .unwrap();
    assert_eq!(results.len(), 2);
    // both DAGs must agree on every shared package (one config per package)
    let saxpy_cmake = &results[0].nodes["cmake"];
    let amg_cmake = &results[1].nodes["cmake"];
    assert_eq!(saxpy_cmake.hash, amg_cmake.hash);
    let a_mpi = &results[0].nodes["mvapich2"];
    let b_mpi = &results[1].nodes["mvapich2"];
    assert_eq!(a_mpi.hash, b_mpi.hash);
}

#[test]
fn unify_conflict_detected() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let err = cts(&repo, &config)
        .concretize_env(&[spec("cmake@=3.23.1"), spec("cmake@=3.20.2")], true)
        .unwrap_err();
    assert!(
        matches!(err.kind, ConcretizeErrorKind::UnifyConflict { .. }),
        "{err}"
    );
}

#[test]
fn non_unified_env_allows_divergence() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let results = cts(&repo, &config)
        .concretize_env(&[spec("cmake@=3.23.1"), spec("cmake@=3.20.2")], false)
        .unwrap();
    assert_eq!(results.len(), 2);
    assert_ne!(results[0].dag_hash(), results[1].dag_hash());
}

// ---------------------------------------------------------------------------
// Reuse
// ---------------------------------------------------------------------------

#[test]
fn reuse_adopts_installed_specs() {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let first = cts(&repo, &config).concretize(&spec("cmake")).unwrap();

    let mut config2 = SiteConfig::example_cts();
    config2.reuse = true;
    config2.installed.push(first.clone());
    let second = cts(&repo, &config2).concretize(&spec("saxpy")).unwrap();
    let cmake = &second.nodes["cmake"];
    assert_eq!(cmake.origin, Origin::Reused);
    assert_eq!(
        cmake.spec.versions.concrete().unwrap().as_str(),
        first.root_node().spec.versions.concrete().unwrap().as_str()
    );
}

#[test]
fn reuse_respects_constraints() {
    let repo = Repo::builtin();
    let first = cts(&repo, &SiteConfig::example_cts())
        .concretize(&spec("cmake@=3.20.2"))
        .unwrap();

    let mut config2 = SiteConfig::example_cts();
    config2.reuse = true;
    config2.installed.push(first);
    // saxpy needs cmake@3.20: — 3.20.2 qualifies, adopt it
    let second = cts(&repo, &config2).concretize(&spec("saxpy")).unwrap();
    assert_eq!(second.nodes["cmake"].origin, Origin::Reused);

    // but an explicit newer pin must NOT reuse the old one
    let third = cts(&repo, &config2)
        .concretize(&spec("saxpy ^cmake@=3.23.1"))
        .unwrap();
    assert_eq!(third.nodes["cmake"].origin, Origin::Source);
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const PKGS: &[&str] = &[
        "saxpy", "amg2023", "stream", "lulesh", "hypre", "caliper", "cmake",
    ];
    const VARIANTS: &[&str] = &["", "+openmp", "~openmp", "+caliper"];

    fn arb_root() -> impl Strategy<Value = String> {
        (prop::sample::select(PKGS), prop::sample::select(VARIANTS)).prop_map(|(p, v)| {
            // only attach variants the package declares
            let repo = Repo::builtin();
            let pkg = repo.get(p).unwrap();
            let vname = v.trim_start_matches(['+', '~']);
            if v.is_empty() || !pkg.has_variant(vname) {
                p.to_string()
            } else {
                format!("{p}{v}")
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every solvable root yields an all-concrete DAG that satisfies the
        /// abstract input, with dependency-first build order and unique hashes
        /// per distinct node.
        #[test]
        fn concretization_invariants(root in arb_root()) {
            let repo = Repo::builtin();
            let config = SiteConfig::example_cts();
            let abstract_spec: Spec = root.parse().unwrap();
            let result = Concretizer::new(&repo, &config).concretize(&abstract_spec).unwrap();

            for node in result.nodes.values() {
                prop_assert!(node.spec.is_concrete(), "{} not concrete", node.spec);
            }
            prop_assert!(result.to_spec().satisfies(&abstract_spec));

            // build order: every dep precedes its dependent
            let order: Vec<&str> = result.build_order().iter()
                .map(|n| n.spec.name.as_deref().unwrap()).collect();
            for node in result.nodes.values() {
                let me = node.spec.name.as_deref().unwrap();
                for dep in node.deps.values() {
                    let (a, b) = (
                        order.iter().position(|n| n == dep).unwrap(),
                        order.iter().position(|n| *n == me).unwrap(),
                    );
                    prop_assert!(a < b, "{dep} must precede {me}");
                }
            }

            // determinism
            let again = Concretizer::new(&repo, &config).concretize(&abstract_spec).unwrap();
            prop_assert_eq!(result.dag_hash(), again.dag_hash());
        }

        /// Incremental re-propagation after one version edit produces the
        /// same concrete spec as a cold solve with the edit folded into the
        /// abstract input — node for node, hash for hash. Unsatisfiable
        /// edits must fail both ways.
        #[test]
        fn incremental_edit_matches_cold_solve(
            root in prop::sample::select(PKGS),
            pick in 0usize..64,
            vpick in 0usize..8,
        ) {
            let repo = Repo::builtin();
            let config = SiteConfig::example_cts();
            let root_spec: Spec = root.parse().unwrap();
            let cz = Concretizer::new(&repo, &config);
            let mut session = cz.session(&root_spec).unwrap();

            // pick the root or one of its direct dependencies (a `^dep@=v`
            // user spec adds a root edge, so a transitive dep would make the
            // cold formulation a different DAG, not an equivalent edit) and
            // any of its declared versions as the edit
            let root_node = session.base().nodes.values()
                .find(|n| n.spec.name.as_deref() == Some(root))
                .unwrap();
            let mut names: Vec<String> = vec![root.to_string()];
            names.extend(root_node.deps.values().cloned());
            let target = names[pick % names.len()].clone();
            let pkg = repo.get(&target).unwrap();
            let version = &pkg.versions[vpick % pkg.versions.len()];
            let constraint =
                benchpark_spec::VersionConstraint::exactly(version.clone());

            let cold_text = if target == root {
                format!("{root}@={version}")
            } else {
                format!("{root} ^{target}@={version}")
            };
            let cold = Concretizer::new(&repo, &config).concretize(&spec(&cold_text));
            let incremental = session.resolve_version(&target, &constraint);

            match (cold, incremental) {
                (Ok(c), Ok(i)) => {
                    prop_assert_eq!(
                        c.dag_hash(), i.dag_hash(),
                        "cold and incremental solves diverged for `{}`", cold_text
                    );
                }
                (Err(_), Err(_)) => {} // both reject the edit — consistent
                (Ok(_), Err(e)) => {
                    return Err(TestCaseError::fail(
                        format!("incremental rejected `{cold_text}` that cold solves: {e}")));
                }
                (Err(e), Ok(_)) => {
                    return Err(TestCaseError::fail(
                        format!("incremental solved `{cold_text}` that cold rejects: {e}")));
                }
            }
        }

        /// A satisfiable spec never yields a justification chain: chains
        /// exist only to explain failure.
        #[test]
        fn satisfiable_specs_have_no_chain(root in arb_root()) {
            let repo = Repo::builtin();
            let config = SiteConfig::example_cts();
            let abstract_spec: Spec = root.parse().unwrap();
            let report = crate::analyze_spec(&repo, &config, &abstract_spec, false);
            prop_assert!(report.satisfiable, "corpus root `{}` became unsat", root);
            prop_assert!(report.error.is_none());
            prop_assert!(
                report.chain.is_empty(),
                "satisfiable `{}` produced a justification chain: {:?}", root, report.chain
            );
        }
    }
}
