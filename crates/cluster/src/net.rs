//! Interconnect and MPI collective cost models.
//!
//! These analytical models (Hockney point-to-point plus standard collective
//! algorithm costs) are what give Figure 14 a real signal: the CTS
//! configuration uses a **linear** broadcast, whose completion time grows as
//! `(p-1)·(α + m/β)` — matching the paper's Extra-P fit of
//! `-0.64 + 0.047·p¹` for `MPI_Bcast` — while tree-based machines grow as
//! `⌈log₂ p⌉`. The broadcast-algorithm choice is ablation A4.

/// Broadcast algorithm used by the machine's MPI library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastAlgorithm {
    /// Root sends to each rank in turn: `(p-1)` sequential messages.
    Linear,
    /// Binomial tree: `⌈log₂ p⌉` rounds.
    BinomialTree,
    /// Scatter + ring allgather (good for large messages):
    /// `(log₂ p + p-1)` phases on `m/p` chunks.
    ScatterAllgather,
}

/// Hockney-model interconnect parameters.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// One-way small-message latency α, microseconds.
    pub latency_us: f64,
    /// Per-link bandwidth β, GB/s.
    pub bandwidth_gb_s: f64,
    /// Broadcast algorithm the MPI library picks on this machine.
    pub bcast: BcastAlgorithm,
}

impl NetworkModel {
    /// Point-to-point time for `bytes`, in seconds.
    pub fn ptp_seconds(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.bandwidth_gb_s * 1e9)
    }

    /// Broadcast completion time for `bytes` across `p` ranks, seconds.
    pub fn bcast_seconds(&self, p: usize, bytes: u64) -> f64 {
        CollectiveModel::new(self).bcast(self.bcast, p, bytes)
    }
}

/// Collective cost calculator over a network model.
pub struct CollectiveModel<'a> {
    net: &'a NetworkModel,
}

impl<'a> CollectiveModel<'a> {
    /// Wraps a network model.
    pub fn new(net: &'a NetworkModel) -> CollectiveModel<'a> {
        CollectiveModel { net }
    }

    fn ptp(&self, bytes: u64) -> f64 {
        self.net.ptp_seconds(bytes)
    }

    /// Broadcast with an explicit algorithm.
    pub fn bcast(&self, algorithm: BcastAlgorithm, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        match algorithm {
            BcastAlgorithm::Linear => (p as f64 - 1.0) * self.ptp(bytes),
            BcastAlgorithm::BinomialTree => rounds * self.ptp(bytes),
            BcastAlgorithm::ScatterAllgather => {
                let chunk = (bytes as f64 / p as f64).ceil() as u64;
                rounds * self.ptp(chunk) + (p as f64 - 1.0) * self.ptp(chunk)
            }
        }
    }

    /// Recursive-doubling allreduce.
    pub fn allreduce(&self, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * self.ptp(bytes)
    }

    /// Binomial-tree reduce.
    pub fn reduce(&self, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * self.ptp(bytes)
    }

    /// Ring allgather of `bytes` per rank.
    pub fn allgather(&self, p: usize, bytes_per_rank: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64 - 1.0) * self.ptp(bytes_per_rank)
    }

    /// Dissemination barrier.
    pub fn barrier(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * self.ptp(0)
    }

    /// Nearest-neighbor halo exchange (6 faces, overlapping pairs).
    pub fn halo3d(&self, face_bytes: u64) -> f64 {
        2.0 * self.ptp(face_bytes) * 3.0
    }
}
