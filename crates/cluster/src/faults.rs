//! Fault injection (paper §1: benchmarking is *"a useful tool for tracking
//! system performance over time and diagnosing hardware failures"*; §7.1's
//! cloud math-library bug).
//!
//! Two layers:
//!
//! * [`FaultSpec`] — *static* faults applied to a machine description before
//!   a run (masked CPU features, degraded bandwidth, dead nodes).
//! * [`TransientFault`] / [`FaultPlan`] — *transient* faults that strike
//!   probabilistically or at a scheduled virtual time while the pipeline is
//!   running: flaky CI runners, failed binary-cache fetches, nodes dying
//!   mid-job, jobs hanging until their wall-time limit. All randomness is
//!   seeded, so a fault plan replays identically.

use crate::machine::Machine;
use benchpark_resilience::FaultInjector;

/// A fault to inject into a machine before (or while) running jobs.
#[derive(Debug, Clone)]
pub enum FaultSpec {
    /// Hypervisor / firmware masks CPU features (the §7.1 scenario: cloud
    /// instances of "similar architecture" lacking a hardware feature the
    /// math library uses).
    MaskCpuFeatures(Vec<String>),
    /// Memory bandwidth degraded to `factor` of nominal (failing DIMM,
    /// misconfigured NUMA) — continuous benchmarking catches the regression.
    DegradeMemoryBandwidth(f64),
    /// Interconnect latency inflated by `factor` (bad cable / flaky switch).
    InflateNetworkLatency(f64),
    /// `count` nodes taken out of service (applied via
    /// [`crate::Cluster::fail_nodes`] by the caller for running clusters).
    FailNodes(usize),
}

impl FaultSpec {
    /// Applies the fault to a machine description, returning the degraded
    /// machine. `FailNodes` reduces the node count.
    ///
    /// Degradation factors are validated: a non-finite factor (NaN, ±inf)
    /// is treated as neutral — it neither degrades nor "improves" the
    /// machine — and finite factors are clamped to their physical range
    /// (`[0, 1]` for bandwidth degradation, `>= 1` for latency inflation),
    /// so a buggy caller can never propagate NaN into performance models.
    pub fn apply(&self, mut machine: Machine) -> Machine {
        match self {
            FaultSpec::MaskCpuFeatures(features) => {
                for f in features {
                    machine.cpu.features.remove(f);
                }
            }
            FaultSpec::DegradeMemoryBandwidth(factor) => {
                let factor = if factor.is_finite() {
                    factor.clamp(0.0, 1.0)
                } else {
                    1.0
                };
                machine.memory_bw_gb_s *= factor;
            }
            FaultSpec::InflateNetworkLatency(factor) => {
                let factor = if factor.is_finite() {
                    factor.max(1.0)
                } else {
                    1.0
                };
                machine.network.latency_us *= factor;
            }
            FaultSpec::FailNodes(count) => {
                machine.nodes = machine.nodes.saturating_sub(*count);
            }
        }
        machine
    }
}

/// A transient fault: strikes while the pipeline runs, not before.
#[derive(Debug, Clone, PartialEq)]
pub enum TransientFault {
    /// The CI runner machinery fails a job attempt with probability `rate`
    /// before the job even reaches the cluster (stale mount, dead agent).
    /// Recovered by per-job `retry:` in the pipeline executor.
    FlakyRunner {
        /// Per-attempt failure probability in `[0, 1]`.
        rate: f64,
    },
    /// A binary-cache fetch fails with probability `rate` (S3 hiccup).
    /// Recovered by the installer's retry policy and circuit breaker.
    FlakyCacheFetch {
        /// Per-fetch failure probability in `[0, 1]`.
        rate: f64,
    },
    /// `nodes` nodes die at virtual time `at_s` during a scheduler drain.
    /// Recovered by preempting and requeueing onto the survivors.
    NodeFailureAt {
        /// Virtual time of the failure, seconds.
        at_s: f64,
        /// Nodes taken out of service.
        nodes: usize,
    },
    /// A submitted job hangs until its wall-time limit with probability
    /// `rate` and exits as a timeout. Recovered by resubmission.
    TransientTimeout {
        /// Per-job hang probability in `[0, 1]`.
        rate: f64,
    },
}

/// A seeded, replayable collection of transient faults for one pipeline
/// run. Each consumer (CI executor, binary cache, cluster) derives its own
/// independent injector stream from the plan seed, so adding one fault kind
/// never perturbs another kind's random sequence.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<TransientFault>,
    budget: Option<u64>,
}

/// Per-consumer seed salts: distinct streams per fault kind.
const RUNNER_SALT: u64 = 0x72756e6e65720001;
const CACHE_SALT: u64 = 0x6361636865000002;
const TIMEOUT_SALT: u64 = 0x74696d656f757403;

impl FaultPlan {
    /// An empty plan with a master seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
            budget: None,
        }
    }

    /// Adds a fault to the plan.
    pub fn with(mut self, fault: TransientFault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Caps the number of failures *each* derived injector may fire over its
    /// lifetime, guaranteeing that retried operations converge.
    pub fn with_budget(mut self, max_failures_per_kind: u64) -> FaultPlan {
        self.budget = Some(max_failures_per_kind);
        self
    }

    /// The plan's master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults in the plan.
    pub fn faults(&self) -> &[TransientFault] {
        &self.faults
    }

    /// Injector for flaky-runner faults, if any are planned.
    pub fn runner_injector(&self) -> Option<FaultInjector> {
        self.injector_for(RUNNER_SALT, |f| match f {
            TransientFault::FlakyRunner { rate } => Some(*rate),
            _ => None,
        })
    }

    /// Injector for flaky cache-fetch faults, if any are planned.
    pub fn cache_injector(&self) -> Option<FaultInjector> {
        self.injector_for(CACHE_SALT, |f| match f {
            TransientFault::FlakyCacheFetch { rate } => Some(*rate),
            _ => None,
        })
    }

    /// Injector for transient job timeouts, if any are planned.
    pub fn timeout_injector(&self) -> Option<FaultInjector> {
        self.injector_for(TIMEOUT_SALT, |f| match f {
            TransientFault::TransientTimeout { rate } => Some(*rate),
            _ => None,
        })
    }

    /// Scheduled node failures as `(virtual time, nodes)` pairs.
    pub fn node_failures(&self) -> Vec<(f64, usize)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                TransientFault::NodeFailureAt { at_s, nodes } => Some((*at_s, *nodes)),
                _ => None,
            })
            .collect()
    }

    /// Wires the plan's cluster-side faults (node failures, transient
    /// timeouts) into a cluster.
    pub fn apply_to_cluster(&self, cluster: &mut crate::Cluster) {
        for (at_s, nodes) in self.node_failures() {
            cluster.schedule_node_failure(at_s, nodes);
        }
        if let Some(injector) = self.timeout_injector() {
            cluster.inject_transient_timeouts(injector);
        }
    }

    /// Builds one injector from the strongest matching rate (or none when no
    /// fault of this kind is planned).
    fn injector_for(
        &self,
        salt: u64,
        rate_of: impl Fn(&TransientFault) -> Option<f64>,
    ) -> Option<FaultInjector> {
        let rate = self
            .faults
            .iter()
            .filter_map(rate_of)
            .fold(None::<f64>, |acc, r| Some(acc.map_or(r, |a| a.max(r))))?;
        let injector = FaultInjector::new(rate, self.seed ^ salt);
        Some(match self.budget {
            Some(budget) => injector.with_budget(budget),
            None => injector,
        })
    }
}
