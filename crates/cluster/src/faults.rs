//! Fault injection (paper §1: benchmarking is *"a useful tool for tracking
//! system performance over time and diagnosing hardware failures"*; §7.1's
//! cloud math-library bug).

use crate::machine::Machine;

/// A fault to inject into a machine before (or while) running jobs.
#[derive(Debug, Clone)]
pub enum FaultSpec {
    /// Hypervisor / firmware masks CPU features (the §7.1 scenario: cloud
    /// instances of "similar architecture" lacking a hardware feature the
    /// math library uses).
    MaskCpuFeatures(Vec<String>),
    /// Memory bandwidth degraded to `factor` of nominal (failing DIMM,
    /// misconfigured NUMA) — continuous benchmarking catches the regression.
    DegradeMemoryBandwidth(f64),
    /// Interconnect latency inflated by `factor` (bad cable / flaky switch).
    InflateNetworkLatency(f64),
    /// `count` nodes taken out of service (applied via
    /// [`crate::Cluster::fail_nodes`] by the caller for running clusters).
    FailNodes(usize),
}

impl FaultSpec {
    /// Applies the fault to a machine description, returning the degraded
    /// machine. `FailNodes` reduces the node count.
    pub fn apply(&self, mut machine: Machine) -> Machine {
        match self {
            FaultSpec::MaskCpuFeatures(features) => {
                for f in features {
                    machine.cpu.features.remove(f);
                }
            }
            FaultSpec::DegradeMemoryBandwidth(factor) => {
                machine.memory_bw_gb_s *= factor.clamp(0.0, 1.0);
            }
            FaultSpec::InflateNetworkLatency(factor) => {
                machine.network.latency_us *= factor.max(1.0);
            }
            FaultSpec::FailNodes(count) => {
                machine.nodes = machine.nodes.saturating_sub(*count);
            }
        }
        machine
    }
}
