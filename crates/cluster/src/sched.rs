//! The batch scheduler: job queue, node accounting, FIFO and conservative
//! backfill policies (ablation A3).

use std::collections::BTreeMap;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Strict first-in-first-out: the head of the queue blocks everyone.
    Fifo,
    /// Conservative backfill: later jobs may start early if they fit in the
    /// free nodes *and* finish (by their wall-time limit) before the head
    /// job's reservation.
    Backfill,
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Pending,
    Running,
    Completed,
    Failed,
    Timeout,
    Cancelled,
}

/// What the scheduler needs to place a job.
#[derive(Debug, Clone)]
pub struct JobRequest {
    pub id: u64,
    pub nodes: usize,
    /// Wall-time limit (the reservation length for backfill planning).
    pub time_limit_s: f64,
    /// Actual runtime, known to the simulator (not the scheduler) up front.
    pub actual_runtime_s: f64,
}

/// One running job's reservation.
#[derive(Debug, Clone)]
struct Running {
    nodes: usize,
    /// When the job will actually finish.
    end: f64,
    /// When its reservation (limit) expires — backfill plans against this.
    reservation_end: f64,
}

/// An event-driven scheduler over `total_nodes` identical nodes.
#[derive(Debug)]
pub struct Scheduler {
    pub policy: SchedulerPolicy,
    total_nodes: usize,
    free_nodes: usize,
    queue: Vec<JobRequest>,
    running: BTreeMap<u64, Running>,
    /// Original requests of running jobs, kept so a preempted job can be
    /// requeued from scratch after a node failure.
    requests: BTreeMap<u64, JobRequest>,
    now: f64,
    /// `(job id, start time)` log.
    pub starts: Vec<(u64, f64)>,
    /// `(job id, end time)` log.
    pub finishes: Vec<(u64, f64)>,
    /// `(job id, preemption time)` log of node-failure victims.
    pub preemptions: Vec<(u64, f64)>,
    /// node-seconds of useful work, for utilization accounting
    busy_node_seconds: f64,
}

impl Scheduler {
    /// Creates an idle scheduler.
    pub fn new(total_nodes: usize, policy: SchedulerPolicy) -> Scheduler {
        Scheduler {
            policy,
            total_nodes,
            free_nodes: total_nodes,
            queue: Vec::new(),
            running: BTreeMap::new(),
            requests: BTreeMap::new(),
            now: 0.0,
            starts: Vec::new(),
            finishes: Vec::new(),
            preemptions: Vec::new(),
            busy_node_seconds: 0.0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Nodes not currently allocated.
    pub fn free_nodes(&self) -> usize {
        self.free_nodes
    }

    /// Total nodes (possibly reduced by fault injection).
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Removes `n` nodes from service (hardware failure injection). Nodes
    /// are taken from the free pool first; if fewer are free, capacity
    /// shrinks below the running total and frees reconcile on completion.
    pub fn fail_nodes(&mut self, n: usize) {
        let n = n.min(self.total_nodes);
        self.total_nodes -= n;
        self.free_nodes = self.free_nodes.saturating_sub(n);
    }

    /// Enqueues a job.
    pub fn submit(&mut self, request: JobRequest) {
        self.requests.insert(request.id, request.clone());
        self.queue.push(request);
    }

    /// Jobs waiting in the queue (not yet started).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// True if any work remains.
    pub fn busy(&self) -> bool {
        !self.queue.is_empty() || !self.running.is_empty()
    }

    /// Starts every job the policy allows right now. Returns started ids.
    pub fn try_start(&mut self) -> Vec<u64> {
        let mut started = Vec::new();
        loop {
            let mut launched = false;
            // head-of-queue first
            while let Some(head) = self.queue.first() {
                if head.nodes <= self.free_nodes {
                    let job = self.queue.remove(0);
                    self.start(job, &mut started);
                    launched = true;
                } else {
                    break;
                }
            }
            if self.policy == SchedulerPolicy::Backfill && !self.queue.is_empty() {
                // shadow time: when the head job could start, given current
                // reservations
                let head_nodes = self.queue[0].nodes;
                let shadow = self.shadow_time(head_nodes);
                let mut i = 1;
                while i < self.queue.len() {
                    let fits = self.queue[i].nodes <= self.free_nodes;
                    let harmless = self.now + self.queue[i].time_limit_s <= shadow
                        || self.queue[i].nodes
                            <= self
                                .free_nodes
                                .saturating_sub(head_nodes.min(self.free_nodes));
                    if fits && harmless {
                        let job = self.queue.remove(i);
                        self.start(job, &mut started);
                        launched = true;
                    } else {
                        i += 1;
                    }
                }
            }
            if !launched {
                break;
            }
        }
        started
    }

    /// Earliest time `nodes` become free, assuming running jobs hold their
    /// reservations to the limit (conservative).
    fn shadow_time(&self, nodes: usize) -> f64 {
        if nodes <= self.free_nodes {
            return self.now;
        }
        let mut ends: Vec<(f64, usize)> = self
            .running
            .values()
            .map(|r| (r.reservation_end, r.nodes))
            .collect();
        ends.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut free = self.free_nodes;
        for (end, n) in ends {
            free += n;
            if free >= nodes {
                return end;
            }
        }
        f64::INFINITY
    }

    fn start(&mut self, job: JobRequest, started: &mut Vec<u64>) {
        debug_assert!(job.nodes <= self.free_nodes);
        self.free_nodes -= job.nodes;
        let run = job.actual_runtime_s.min(job.time_limit_s);
        self.running.insert(
            job.id,
            Running {
                nodes: job.nodes,
                end: self.now + run,
                reservation_end: self.now + job.time_limit_s,
            },
        );
        self.busy_node_seconds += run * job.nodes as f64;
        self.starts.push((job.id, self.now));
        started.push(job.id);
    }

    /// Virtual time of the next job completion, if anything is running.
    pub fn next_completion(&self) -> Option<f64> {
        self.running.values().map(|r| r.end).min_by(f64::total_cmp)
    }

    /// Advances to the next completion event. Returns ids of jobs that
    /// finished, or an empty vec when nothing is running.
    pub fn advance(&mut self) -> Vec<u64> {
        let Some(next_end) = self.next_completion() else {
            return Vec::new();
        };
        self.now = next_end.max(self.now);
        let finished: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, r)| r.end <= self.now + 1e-12)
            .map(|(id, _)| *id)
            .collect();
        for id in &finished {
            let r = self.running.remove(id).expect("listed as running");
            self.free_nodes = (self.free_nodes + r.nodes).min(self.total_nodes);
            self.finishes.push((*id, self.now));
            self.requests.remove(id);
        }
        finished
    }

    /// Injects a node failure at virtual time `at` (clamped forward to the
    /// current clock): removes `n` nodes from service and, when the
    /// survivors cannot hold every running job, preempts the most recently
    /// submitted running jobs until the rest fit. Preempted jobs are
    /// requeued at the head of the queue for a full restart on the surviving
    /// nodes; their ids are returned.
    pub fn fail_nodes_at(&mut self, at: f64, n: usize) -> Vec<u64> {
        self.now = self.now.max(at);
        let n = n.min(self.total_nodes);
        self.total_nodes -= n;
        let mut used: usize = self.running.values().map(|r| r.nodes).sum();
        let mut preempted = Vec::new();
        while used > self.total_nodes {
            let (&id, _) = self
                .running
                .iter()
                .next_back()
                .expect("used > 0 implies a running job");
            let run = self.running.remove(&id).expect("present");
            used -= run.nodes;
            // the unfinished remainder never runs: refund its accounting
            let remaining = (run.end - self.now).max(0.0);
            self.busy_node_seconds -= remaining * run.nodes as f64;
            self.preemptions.push((id, self.now));
            preempted.push(id);
        }
        self.free_nodes = self.total_nodes - used;
        // requeue oldest-first at the head so victims restart before newer work
        preempted.sort_unstable();
        for (offset, id) in preempted.iter().enumerate() {
            if let Some(request) = self.requests.get(id).cloned() {
                self.queue.insert(offset.min(self.queue.len()), request);
            }
        }
        preempted
    }

    /// Machine utilization so far: busy node-seconds over capacity.
    pub fn utilization(&self) -> f64 {
        if self.now <= 0.0 || self.total_nodes == 0 {
            return 0.0;
        }
        self.busy_node_seconds / (self.now * self.total_nodes as f64)
    }
}
