//! Batch script parsing: the consumer of Figure 13's rendered template.
//!
//! A generated `execute_experiment` script looks like:
//!
//! ```text
//! #!/bin/bash
//! #SBATCH -N 2
//! #SBATCH -n 16
//! #SBATCH -t 120:00
//! cd /workspace/experiments/saxpy_512_2_16_4
//! export OMP_NUM_THREADS=4
//! srun -N 2 -n 16 saxpy -n 512
//! ```
//!
//! The parser understands Slurm (`#SBATCH`/`srun`), LSF (`#BSUB`/`jsrun`),
//! and Flux (`#flux:`/`flux run`) dialects, since Benchpark's per-system
//! `variables.yaml` (Figure 12) renders whichever the system uses.

use std::collections::BTreeMap;

/// One launcher invocation inside a batch script.
#[derive(Debug, Clone, PartialEq)]
pub struct SrunCommand {
    /// `-N` override, if given on the launcher line.
    pub nodes: Option<usize>,
    /// `-n` override, if given on the launcher line.
    pub ranks: Option<usize>,
    /// Executable base name (path stripped).
    pub exe: String,
    /// Arguments after the executable.
    pub args: Vec<String>,
    /// True if launched via an MPI launcher (vs. run directly).
    pub via_launcher: bool,
    /// The raw line, for diagnostics.
    pub raw: String,
}

/// A parsed batch script.
#[derive(Debug, Clone, Default)]
pub struct BatchScript {
    /// Requested node count (directives; defaults to 1).
    pub nodes: usize,
    /// Requested task/rank count (defaults to `nodes`).
    pub tasks: usize,
    /// Wall-time limit in seconds (defaults to 1 hour).
    pub time_limit_s: f64,
    /// Environment set in the script (`export K=V` and `K=V` lines).
    pub env: BTreeMap<String, String>,
    /// Working directory from a `cd` line, if any.
    pub workdir: Option<String>,
    /// Commands to execute, in order.
    pub commands: Vec<SrunCommand>,
}

impl BatchScript {
    /// Parses a script. Never fails: unrecognized lines are ignored, exactly
    /// like a shell ignoring comments — but a script with no commands is
    /// still a valid (empty) job.
    pub fn parse(text: &str) -> BatchScript {
        let mut script = BatchScript {
            nodes: 1,
            tasks: 0,
            time_limit_s: 3600.0,
            ..BatchScript::default()
        };
        for raw_line in text.lines() {
            let line = raw_line.trim();
            if line.is_empty() || line == "#!/bin/bash" || line == "#!/bin/sh" {
                continue;
            }
            if let Some(rest) = line.strip_prefix("#SBATCH ") {
                script.parse_directive(rest);
            } else if let Some(rest) = line.strip_prefix("#BSUB ") {
                script.parse_bsub(rest);
            } else if let Some(rest) = line.strip_prefix("#flux:") {
                script.parse_directive(rest.trim());
            } else if line.starts_with('#') {
                continue;
            } else if let Some(rest) = line.strip_prefix("cd ") {
                script.workdir = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("export ") {
                if let Some((k, v)) = rest.split_once('=') {
                    script
                        .env
                        .insert(k.trim().to_string(), v.trim().to_string());
                }
            } else if is_plain_assignment(line) {
                if let Some((k, v)) = line.split_once('=') {
                    script
                        .env
                        .insert(k.trim().to_string(), v.trim().to_string());
                }
            } else {
                if let Some(cmd) = parse_command(line) {
                    script.commands.push(cmd);
                }
            }
        }
        if script.tasks == 0 {
            script.tasks = script.nodes;
        }
        script
    }

    fn parse_directive(&mut self, rest: &str) {
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        let mut i = 0;
        while i < tokens.len() {
            match tokens[i] {
                "-N" | "--nodes" => {
                    if let Some(v) = tokens.get(i + 1).and_then(|t| t.parse().ok()) {
                        self.nodes = v;
                    }
                    i += 2;
                }
                "-n" | "--ntasks" => {
                    if let Some(v) = tokens.get(i + 1).and_then(|t| t.parse().ok()) {
                        self.tasks = v;
                    }
                    i += 2;
                }
                "-t" | "--time" => {
                    if let Some(t) = tokens.get(i + 1) {
                        self.time_limit_s = parse_time_limit(t);
                    }
                    i += 2;
                }
                t => {
                    // combined forms: -N2, -n16
                    if let Some(v) = t.strip_prefix("-N").and_then(|s| s.parse().ok()) {
                        self.nodes = v;
                    } else if let Some(v) = t.strip_prefix("-n").and_then(|s| s.parse().ok()) {
                        self.tasks = v;
                    }
                    i += 1;
                }
            }
        }
    }

    fn parse_bsub(&mut self, rest: &str) {
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        let mut i = 0;
        while i < tokens.len() {
            match tokens[i] {
                "-nnodes" => {
                    if let Some(v) = tokens.get(i + 1).and_then(|t| t.parse().ok()) {
                        self.nodes = v;
                    }
                    i += 2;
                }
                "-n" => {
                    if let Some(v) = tokens.get(i + 1).and_then(|t| t.parse().ok()) {
                        self.tasks = v;
                    }
                    i += 2;
                }
                "-W" => {
                    if let Some(t) = tokens.get(i + 1) {
                        self.time_limit_s = parse_time_limit(t);
                    }
                    i += 2;
                }
                _ => i += 1,
            }
        }
    }
}

/// `KEY=VALUE` with a shell-identifier key.
fn is_plain_assignment(line: &str) -> bool {
    match line.split_once('=') {
        Some((k, _)) => {
            !k.is_empty()
                && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !k.starts_with(|c: char| c.is_ascii_digit())
        }
        None => false,
    }
}

/// `"120:00"` (MM:SS), `"1:30:00"` (HH:MM:SS), or plain minutes.
fn parse_time_limit(text: &str) -> f64 {
    let parts: Vec<&str> = text.split(':').collect();
    let nums: Vec<f64> = parts.iter().map(|p| p.parse().unwrap_or(0.0)).collect();
    match nums.as_slice() {
        [m] => m * 60.0,
        [m, s] => m * 60.0 + s,
        [h, m, s] => h * 3600.0 + m * 60.0 + s,
        _ => 3600.0,
    }
}

/// Parses a command line, recognizing MPI launchers.
fn parse_command(line: &str) -> Option<SrunCommand> {
    let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
    if tokens.is_empty() {
        return None;
    }
    let mut idx = 0;
    let mut nodes = None;
    let mut ranks = None;
    let mut via_launcher = false;

    let launcher = tokens[0].as_str();
    if launcher == "srun" || launcher == "jsrun" || launcher == "lrun" {
        via_launcher = true;
        idx = 1;
    } else if launcher == "flux" && tokens.get(1).map(String::as_str) == Some("run") {
        via_launcher = true;
        idx = 2;
    }
    if via_launcher {
        while idx < tokens.len() && tokens[idx].starts_with('-') {
            match tokens[idx].as_str() {
                "-N" => {
                    nodes = tokens.get(idx + 1).and_then(|t| t.parse().ok());
                    idx += 2;
                }
                "-n" => {
                    ranks = tokens.get(idx + 1).and_then(|t| t.parse().ok());
                    idx += 2;
                }
                "-a" | "-c" | "-g" => idx += 2, // per-resource flags with value
                _ => idx += 1,
            }
        }
    }
    let exe_path = tokens.get(idx)?;
    let exe = exe_path.rsplit('/').next().unwrap_or(exe_path).to_string();
    let args = tokens[idx + 1..].to_vec();
    Some(SrunCommand {
        nodes,
        ranks,
        exe,
        args,
        via_launcher,
        raw: line.to_string(),
    })
}
