//! Machine descriptions: the hardware the simulator "runs" on.

use crate::net::{BcastAlgorithm, NetworkModel};
use benchpark_archspec::{detect, taxonomy, CpuDescription, Vendor};

/// Which batch system front-end the machine speaks (affects launcher and
/// directive syntax rendered by `variables.yaml`, Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Slurm: `sbatch` + `srun` (cts1, cloud).
    Slurm,
    /// LSF: `bsub` + `jsrun`/`lrun` (ats2-class Power systems).
    Lsf,
    /// Flux: `flux batch` + `flux run` (ats4-class El Capitan EAS).
    Flux,
}

impl SchedulerKind {
    /// The MPI launcher command template for this scheduler.
    pub fn mpi_command(&self) -> &'static str {
        match self {
            SchedulerKind::Slurm => "srun -N {n_nodes} -n {n_ranks}",
            SchedulerKind::Lsf => "jsrun -n {n_ranks} -a 1",
            SchedulerKind::Flux => "flux run -N {n_nodes} -n {n_ranks}",
        }
    }

    /// The batch submission command template.
    pub fn batch_submit(&self) -> &'static str {
        match self {
            SchedulerKind::Slurm => "sbatch {execute_experiment}",
            SchedulerKind::Lsf => "bsub {execute_experiment}",
            SchedulerKind::Flux => "flux batch {execute_experiment}",
        }
    }
}

/// A GPU model attached to nodes.
#[derive(Debug, Clone)]
pub struct GpuModel {
    pub name: String,
    /// Peak double-precision TFLOP/s per GPU.
    pub fp64_tflops: f64,
    /// Device memory, GiB.
    pub memory_gb: f64,
    /// Device memory bandwidth, GB/s.
    pub memory_bw_gb_s: f64,
}

/// A complete machine description.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Site-unique name (`cts1`, `ats2`, `ats4`, `cloud-c5`).
    pub name: String,
    pub description: String,
    /// Number of compute nodes.
    pub nodes: usize,
    pub sockets_per_node: usize,
    pub cores_per_socket: usize,
    /// CPU description (vendor + features) for archspec detection.
    pub cpu: CpuDescription,
    /// Peak GFLOP/s per core (fp64, with vector units the CPU has).
    pub gflops_per_core: f64,
    /// Memory per node, GiB.
    pub memory_per_node_gb: f64,
    /// STREAM-class memory bandwidth per node, GB/s.
    pub memory_bw_gb_s: f64,
    /// GPUs per node, if any.
    pub gpus_per_node: usize,
    pub gpu: Option<GpuModel>,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Which batch system runs here.
    pub scheduler: SchedulerKind,
    /// Mean power draw per busy node, kilowatts (CPU + GPUs + fabric share).
    /// Drives the energy accounting used by procurement studies.
    pub node_power_kw: f64,
}

impl Machine {
    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Total cores.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// The archspec microarchitecture this machine detects as.
    pub fn target(&self) -> &'static benchpark_archspec::Microarch {
        detect(&self.cpu).unwrap_or_else(|| {
            taxonomy()
                .get("x86_64")
                .expect("generic x86_64 always exists")
        })
    }

    /// True if the machine's CPU supports every feature of `uarch_name` —
    /// i.e. a binary compiled *for* `uarch_name` can run here. This is the
    /// check behind the §7.1 cloud-portability fault.
    pub fn can_run_binary_for(&self, uarch_name: &str) -> bool {
        match taxonomy().get(uarch_name) {
            Some(uarch) => uarch.all_features.is_subset(&self.cpu.features),
            None => false,
        }
    }

    // --- presets (paper §4 and §7.2) ---------------------------------------

    /// `cts1`: the Commodity Technology System — dual-socket Intel Xeon,
    /// CPU-only, Omni-Path, Slurm (the paper's CTS / Figure 14 system).
    pub fn cts1() -> Machine {
        let skx = taxonomy().get("skylake_avx512").expect("in taxonomy");
        Machine {
            name: "cts1".to_string(),
            description: "CPU-only Intel Xeon commodity cluster (Slurm)".to_string(),
            nodes: 1302,
            sockets_per_node: 2,
            cores_per_socket: 18,
            cpu: CpuDescription::of(skx),
            gflops_per_core: 41.6, // 2.1 GHz × 8-wide FMA × 2 pipes… ballpark
            memory_per_node_gb: 128.0,
            memory_bw_gb_s: 205.0,
            gpus_per_node: 0,
            gpu: None,
            network: NetworkModel {
                latency_us: 1.3,
                bandwidth_gb_s: 12.5, // 100 Gb/s Omni-Path
                bcast: BcastAlgorithm::Linear,
            },
            scheduler: SchedulerKind::Slurm,
            node_power_kw: 0.35,
        }
    }

    /// `ats2`: IBM Power9 + 4×NVIDIA V100 per node, EDR InfiniBand, LSF
    /// (a Sierra/Lassen-class Advanced Technology System).
    pub fn ats2() -> Machine {
        let p9 = taxonomy().get("power9le").expect("in taxonomy");
        Machine {
            name: "ats2".to_string(),
            description: "IBM Power9 + 4x NVIDIA V100 hybrid system (LSF)".to_string(),
            nodes: 756,
            sockets_per_node: 2,
            cores_per_socket: 22,
            cpu: CpuDescription::of(p9),
            gflops_per_core: 23.0,
            memory_per_node_gb: 256.0,
            memory_bw_gb_s: 340.0,
            gpus_per_node: 4,
            gpu: Some(GpuModel {
                name: "V100".to_string(),
                fp64_tflops: 7.8,
                memory_gb: 16.0,
                memory_bw_gb_s: 900.0,
            }),
            network: NetworkModel {
                latency_us: 1.0,
                bandwidth_gb_s: 25.0, // 2× EDR
                bcast: BcastAlgorithm::BinomialTree,
            },
            scheduler: SchedulerKind::Lsf,
            node_power_kw: 2.9,
        }
    }

    /// `ats4` EAS: AMD Trento + 4×MI250X, Slingshot, Flux
    /// (an El Capitan early-access system).
    pub fn ats4() -> Machine {
        let zen3 = taxonomy().get("zen3").expect("in taxonomy");
        Machine {
            name: "ats4".to_string(),
            description: "AMD Trento + 4x MI250X hybrid EAS (Flux)".to_string(),
            nodes: 64,
            sockets_per_node: 1,
            cores_per_socket: 64,
            cpu: CpuDescription::of(zen3),
            gflops_per_core: 31.2,
            memory_per_node_gb: 512.0,
            memory_bw_gb_s: 400.0,
            gpus_per_node: 4,
            gpu: Some(GpuModel {
                name: "MI250X".to_string(),
                fp64_tflops: 47.9,
                memory_gb: 128.0,
                memory_bw_gb_s: 3200.0,
            }),
            network: NetworkModel {
                latency_us: 0.9,
                bandwidth_gb_s: 25.0, // Slingshot-11
                bcast: BcastAlgorithm::BinomialTree,
            },
            scheduler: SchedulerKind::Flux,
            node_power_kw: 3.6,
        }
    }

    /// A cloud instance pool of "similar architecture" to cts1 (§7.1/§7.2):
    /// same Skylake generation but with AVX-512 masked by the hypervisor —
    /// the missing hardware feature at the heart of the math-library bug
    /// anecdote.
    pub fn cloud_c5() -> Machine {
        let skx = taxonomy().get("skylake_avx512").expect("in taxonomy");
        let mut cpu = CpuDescription::of(skx);
        for feature in [
            "avx512f", "avx512bw", "avx512cd", "avx512dq", "avx512vl", "clwb",
        ] {
            cpu.features.remove(feature);
        }
        cpu.vendor = Vendor::Intel;
        Machine {
            name: "cloud-c5".to_string(),
            description: "Cloud instances of similar architecture to cts1 (AVX-512 masked)"
                .to_string(),
            nodes: 64,
            sockets_per_node: 1,
            cores_per_socket: 36,
            cpu,
            gflops_per_core: 38.0,
            memory_per_node_gb: 96.0,
            memory_bw_gb_s: 180.0,
            gpus_per_node: 0,
            gpu: None,
            network: NetworkModel {
                latency_us: 15.0, // cloud ethernet fabric
                bandwidth_gb_s: 3.1,
                bcast: BcastAlgorithm::BinomialTree,
            },
            scheduler: SchedulerKind::Slurm,
            node_power_kw: 0.3,
        }
    }

    /// All presets.
    pub fn presets() -> Vec<Machine> {
        vec![
            Machine::cts1(),
            Machine::ats2(),
            Machine::ats4(),
            Machine::cloud_c5(),
        ]
    }

    /// Looks up a preset by name.
    pub fn preset(name: &str) -> Option<Machine> {
        Machine::presets().into_iter().find(|m| m.name == name)
    }
}
