//! `benchpark-cluster` — simulated HPC systems: machines, a Slurm-like batch
//! scheduler, MPI collective cost models, and an application execution engine.
//!
//! The paper runs saxpy and AMG2023 on three LLNL systems (§4): `cts1`
//! (Intel Xeon CPU-only), `ats2` (Power9 + 4×V100), and `ats4` (AMD Trento +
//! MI250X), plus cloud instances (§7.2). We obviously cannot ship those
//! machines, so this crate provides the closest synthetic equivalent that
//! exercises the same code paths Benchpark exercises on real systems:
//!
//! * [`Machine`] descriptions with node/socket/core/GPU/memory topology and a
//!   CPU feature set fed through `benchpark-archspec` detection — including
//!   the three paper systems as presets and a "cloud" preset whose masked
//!   AVX-512 reproduces the §7.1 debugging story.
//! * A [`Cluster`] with a Slurm-like batch scheduler: `#SBATCH` directive
//!   parsing (the output of Figure 13's template), FIFO and conservative
//!   backfill policies, job lifecycle (pending → running → completed /
//!   failed / timeout), and node accounting.
//! * An analytical performance model per application (roofline compute +
//!   memory bandwidth + MPI collective costs with selectable broadcast
//!   algorithms — the knob behind Figure 14's linear-in-`p` model) with
//!   deterministic noise. The saxpy kernel (Figure 7) is additionally
//!   executed for real, multithreaded, via crossbeam scoped threads.
//! * Fault injection ([`FaultSpec`]): running a binary built for a
//!   microarchitecture whose features the host lacks dies with an
//!   illegal-instruction error, reproducing the paper's cloud-portability
//!   anecdote.

mod apps;
mod batch;
mod cluster;
mod faults;
mod machine;
mod net;
mod sched;

pub use apps::{
    saxpy_kernel, AppModelFn, AppOutput, AppRegistry, BinaryInfo, ProgrammingModel, RunContext,
};
pub use batch::{BatchScript, SrunCommand};
pub use cluster::{Cluster, JobId, JobOutcome};
pub use faults::{FaultPlan, FaultSpec, TransientFault};
pub use machine::{GpuModel, Machine, SchedulerKind};
pub use net::{BcastAlgorithm, CollectiveModel, NetworkModel};
pub use sched::{JobRequest, JobState, SchedulerPolicy};

#[cfg(test)]
mod tests;
