//! Tests for machines, the network model, batch parsing, scheduling, app
//! models, and fault injection.

use crate::{
    saxpy_kernel, BatchScript, BcastAlgorithm, BinaryInfo, Cluster, CollectiveModel, FaultSpec,
    JobState, Machine, ProgrammingModel, SchedulerKind, SchedulerPolicy,
};

// ---------------------------------------------------------------------------
// Machines
// ---------------------------------------------------------------------------

#[test]
fn presets_detect_expected_targets() {
    assert_eq!(Machine::cts1().target().name, "skylake_avx512");
    assert_eq!(Machine::ats2().target().name, "power9le");
    assert_eq!(Machine::ats4().target().name, "zen3");
    // the cloud preset masks AVX-512 and detects one step down
    assert_eq!(Machine::cloud_c5().target().name, "skylake");
}

#[test]
fn preset_lookup_and_shape() {
    let cts = Machine::preset("cts1").unwrap();
    assert_eq!(cts.cores_per_node(), 36);
    assert_eq!(cts.scheduler, SchedulerKind::Slurm);
    assert!(cts.total_cores() > 40_000);
    assert!(Machine::preset("ats2").unwrap().gpus_per_node == 4);
    assert!(Machine::preset("nope").is_none());
}

#[test]
fn binary_feature_compatibility() {
    let cts = Machine::cts1();
    let cloud = Machine::cloud_c5();
    // a binary built for skylake_avx512 runs on cts1 but not in the cloud
    assert!(cts.can_run_binary_for("skylake_avx512"));
    assert!(!cloud.can_run_binary_for("skylake_avx512"));
    // built for plain skylake it runs on both
    assert!(cts.can_run_binary_for("skylake"));
    assert!(cloud.can_run_binary_for("skylake"));
}

#[test]
fn scheduler_kind_commands() {
    assert!(SchedulerKind::Slurm.mpi_command().starts_with("srun"));
    assert!(SchedulerKind::Lsf.mpi_command().starts_with("jsrun"));
    assert!(SchedulerKind::Flux.batch_submit().starts_with("flux batch"));
}

// ---------------------------------------------------------------------------
// Network / collectives (basis of Figure 14)
// ---------------------------------------------------------------------------

#[test]
fn linear_bcast_grows_linearly() {
    let net = Machine::cts1().network;
    let coll = CollectiveModel::new(&net);
    let t64 = coll.bcast(BcastAlgorithm::Linear, 64, 8);
    let t128 = coll.bcast(BcastAlgorithm::Linear, 128, 8);
    // (p-1) scaling: doubling p roughly doubles the time
    let ratio = t128 / t64;
    assert!((ratio - 127.0 / 63.0).abs() < 1e-9, "ratio {ratio}");
}

#[test]
fn tree_bcast_grows_logarithmically() {
    let net = Machine::cts1().network;
    let coll = CollectiveModel::new(&net);
    let t64 = coll.bcast(BcastAlgorithm::BinomialTree, 64, 8);
    let t4096 = coll.bcast(BcastAlgorithm::BinomialTree, 4096, 8);
    assert!((t4096 / t64 - 2.0).abs() < 1e-9); // log2: 6 rounds vs 12 rounds
}

#[test]
fn bcast_trivial_cases() {
    let net = Machine::cts1().network;
    let coll = CollectiveModel::new(&net);
    for alg in [
        BcastAlgorithm::Linear,
        BcastAlgorithm::BinomialTree,
        BcastAlgorithm::ScatterAllgather,
    ] {
        assert_eq!(coll.bcast(alg, 1, 1024), 0.0);
        assert!(coll.bcast(alg, 2, 1024) > 0.0);
    }
    assert_eq!(coll.allreduce(1, 8), 0.0);
    assert_eq!(coll.barrier(1), 0.0);
}

#[test]
fn large_message_prefers_scatter_allgather() {
    let net = Machine::cts1().network;
    let coll = CollectiveModel::new(&net);
    let m = 64 * 1024 * 1024;
    let tree = coll.bcast(BcastAlgorithm::BinomialTree, 256, m);
    let sag = coll.bcast(BcastAlgorithm::ScatterAllgather, 256, m);
    assert!(sag < tree, "scatter-allgather should win at {m} bytes");
}

// ---------------------------------------------------------------------------
// Batch script parsing (consumer of Figures 12/13)
// ---------------------------------------------------------------------------

const SCRIPT: &str = "#!/bin/bash\n#SBATCH -N 2\n#SBATCH -n 16\n#SBATCH -t 120:00\ncd /ws/experiments/saxpy_512_2_16_4\nexport OMP_NUM_THREADS=4\nsrun -N 2 -n 16 /install/bin/saxpy -n 512\n";

#[test]
fn parse_slurm_script() {
    let s = BatchScript::parse(SCRIPT);
    assert_eq!(s.nodes, 2);
    assert_eq!(s.tasks, 16);
    assert_eq!(s.time_limit_s, 120.0 * 60.0);
    assert_eq!(s.env.get("OMP_NUM_THREADS").unwrap(), "4");
    assert_eq!(
        s.workdir.as_deref(),
        Some("/ws/experiments/saxpy_512_2_16_4")
    );
    assert_eq!(s.commands.len(), 1);
    let cmd = &s.commands[0];
    assert_eq!(cmd.exe, "saxpy"); // path stripped
    assert_eq!(cmd.args, vec!["-n", "512"]);
    assert_eq!(cmd.nodes, Some(2));
    assert_eq!(cmd.ranks, Some(16));
    assert!(cmd.via_launcher);
}

#[test]
fn parse_lsf_and_flux_dialects() {
    let lsf = BatchScript::parse(
        "#BSUB -nnodes 4\n#BSUB -W 30\njsrun -n 16 -a 1 amg -P 2 2 4 -n 64 64 64 -problem 1\n",
    );
    assert_eq!(lsf.nodes, 4);
    assert_eq!(lsf.time_limit_s, 1800.0);
    assert_eq!(lsf.commands[0].exe, "amg");
    assert_eq!(lsf.commands[0].ranks, Some(16));

    let flux = BatchScript::parse("#flux: -N 2\nflux run -N 2 -n 8 lulesh2.0 -s 20 -i 10\n");
    assert_eq!(flux.nodes, 2);
    assert_eq!(flux.commands[0].exe, "lulesh2.0");
    assert_eq!(flux.commands[0].ranks, Some(8));
}

#[test]
fn parse_defaults_and_plain_commands() {
    let s = BatchScript::parse("stream -s 1000\n");
    assert_eq!(s.nodes, 1);
    assert_eq!(s.tasks, 1);
    let cmd = &s.commands[0];
    assert!(!cmd.via_launcher);
    assert_eq!(cmd.exe, "stream");
}

// ---------------------------------------------------------------------------
// The real saxpy kernel (Figure 7)
// ---------------------------------------------------------------------------

#[test]
fn saxpy_kernel_correct_serial_and_parallel() {
    let n = 100_000;
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (i * 2) as f32).collect();
    for threads in [1, 2, 4, 8] {
        let mut r = vec![0.0f32; n];
        saxpy_kernel(&mut r, &x, &y, 3.0, threads);
        for i in (0..n).step_by(9973) {
            assert_eq!(
                r[i],
                3.0 * x[i] + y[i],
                "mismatch at {i} with {threads} threads"
            );
        }
    }
}

#[test]
fn saxpy_kernel_empty_and_tiny() {
    let mut r: Vec<f32> = vec![];
    saxpy_kernel(&mut r, &[], &[], 1.0, 4);
    let mut r = vec![0.0f32; 3];
    saxpy_kernel(&mut r, &[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0], 2.0, 4);
    assert_eq!(r, vec![3.0, 5.0, 7.0]);
}

// ---------------------------------------------------------------------------
// End-to-end job execution
// ---------------------------------------------------------------------------

#[test]
fn submit_and_run_saxpy_job() {
    let mut cluster = Cluster::new(Machine::cts1());
    let id = cluster.submit_script(SCRIPT, "alice").unwrap();
    cluster.run_until_idle();
    let job = cluster.job(id).unwrap();
    assert_eq!(job.state, JobState::Completed, "{}", job.stdout);
    assert!(job.success());
    assert!(job.stdout.contains("Kernel done"));
    assert!(job.stdout.contains("Kernel time (s):"));
    assert!(job.start_time.is_some() && job.end_time.is_some());
    assert!(job.profile.iter().any(|(r, _)| r == "MPI_Bcast"));
}

#[test]
fn output_is_deterministic() {
    let run = || {
        let mut cluster = Cluster::new(Machine::cts1());
        let id = cluster.submit_script(SCRIPT, "alice").unwrap();
        cluster.run_until_idle();
        cluster.job(id).unwrap().stdout.clone()
    };
    assert_eq!(run(), run());
}

#[test]
fn amg_runs_on_all_three_paper_systems() {
    for machine in [Machine::cts1(), Machine::ats2(), Machine::ats4()] {
        let script =
            "#SBATCH -N 1\n#SBATCH -n 8\nsrun -N 1 -n 8 amg -P 2 2 2 -n 64 64 64 -problem 1\n";
        let mut cluster = Cluster::new(machine);
        let id = cluster.submit_script(script, "bob").unwrap();
        cluster.run_until_idle();
        let job = cluster.job(id).unwrap();
        assert!(job.success(), "{}: {}", cluster.machine.name, job.stdout);
        assert!(job.stdout.contains("Figure of Merit (FOM_Solve):"));
        assert!(job.stdout.contains("Iterations = 17"));
    }
}

#[test]
fn amg_topology_mismatch_fails() {
    let script = "#SBATCH -N 1\n#SBATCH -n 4\nsrun -n 4 amg -P 2 2 2 -n 64 64 64 -problem 1\n";
    let mut cluster = Cluster::new(Machine::cts1());
    let id = cluster.submit_script(script, "bob").unwrap();
    cluster.run_until_idle();
    let job = cluster.job(id).unwrap();
    assert_eq!(job.state, JobState::Failed);
    assert!(job.stdout.contains("requires 8 ranks"));
}

#[test]
fn gpu_machines_solve_faster_on_amg() {
    let run = |machine: Machine, model: ProgrammingModel| {
        let script =
            "#SBATCH -N 1\n#SBATCH -n 8\nsrun -n 8 amg -P 2 2 2 -n 128 128 128 -problem 1\n";
        let mut cluster = Cluster::new(machine);
        let target = cluster.machine.target().name.clone();
        cluster.install_binary(BinaryInfo::for_target("amg", &target, model));
        let id = cluster.submit_script(script, "bob").unwrap();
        cluster.run_until_idle();
        let job = cluster.job(id).unwrap();
        assert!(job.success(), "{}", job.stdout);
        // extract solve time
        let line = job
            .stdout
            .lines()
            .find(|l| l.starts_with("Solve phase time:"))
            .unwrap()
            .to_string();
        line.split_whitespace()
            .nth(3)
            .unwrap()
            .parse::<f64>()
            .unwrap()
    };
    let cpu = run(Machine::cts1(), ProgrammingModel::OpenMp);
    let gpu = run(Machine::ats4(), ProgrammingModel::Rocm);
    assert!(
        gpu < cpu,
        "MI250X solve ({gpu}) should beat CPU solve ({cpu})"
    );
}

#[test]
fn unknown_command_gives_127() {
    let mut cluster = Cluster::new(Machine::cts1());
    let id = cluster
        .submit_script("srun -n 2 not_a_real_binary --flag\n", "x")
        .unwrap();
    cluster.run_until_idle();
    let job = cluster.job(id).unwrap();
    assert_eq!(job.exit_code, 127);
    assert!(job.stdout.contains("command not found"));
    assert_eq!(job.state, JobState::Failed);
}

#[test]
fn time_limit_enforced() {
    // 1-second limit on a large AMG solve → timeout
    let script = "#SBATCH -N 1\n#SBATCH -n 8\n#SBATCH -t 0:01\nsrun -n 8 amg -P 2 2 2 -n 400 400 400 -problem 2\n";
    let mut cluster = Cluster::new(Machine::cts1());
    let id = cluster.submit_script(script, "bob").unwrap();
    cluster.run_until_idle();
    let job = cluster.job(id).unwrap();
    assert_eq!(job.state, JobState::Timeout, "{}", job.stdout);
    assert!(job.stdout.contains("TIME LIMIT"));
}

#[test]
fn oversized_request_rejected() {
    let mut cluster = Cluster::new(Machine::ats4()); // 64 nodes
    let err = cluster
        .submit_script("#SBATCH -N 65\nsrun -n 65 stream -s 10\n", "x")
        .unwrap_err();
    assert!(err.contains("only 64"));
}

// ---------------------------------------------------------------------------
// Scheduling policies (ablation A3)
// ---------------------------------------------------------------------------

fn submit_mix(cluster: &mut Cluster) -> Vec<crate::JobId> {
    // one wide job that must wait, plus narrow fillers
    let mut ids = Vec::new();
    let wide = format!(
        "#SBATCH -N {}\n#SBATCH -n 8\n#SBATCH -t 60:00\nsrun -n 8 amg -P 2 2 2 -n 96 96 96 -problem 1\n",
        cluster.machine.nodes
    );
    let narrow = "#SBATCH -N 1\n#SBATCH -n 4\n#SBATCH -t 5:00\nsrun -n 4 amg -P 2 2 1 -n 64 64 64 -problem 1\n";
    ids.push(cluster.submit_script(&wide, "w").unwrap());
    for _ in 0..6 {
        ids.push(cluster.submit_script(narrow, "n").unwrap());
    }
    // another wide job at the head after fillers
    ids.push(cluster.submit_script(&wide, "w").unwrap());
    ids
}

#[test]
fn backfill_improves_utilization_over_fifo() {
    let run = |policy| {
        let mut cluster = Cluster::with_policy(Machine::ats4(), policy);
        submit_mix(&mut cluster);
        cluster.run_until_idle();
        (cluster.utilization(), cluster.now())
    };
    let (_fifo_util, fifo_makespan) = run(SchedulerPolicy::Fifo);
    let (_bf_util, bf_makespan) = run(SchedulerPolicy::Backfill);
    assert!(
        bf_makespan <= fifo_makespan + 1e-9,
        "backfill ({bf_makespan}) must not be slower than FIFO ({fifo_makespan})"
    );
}

#[test]
fn all_jobs_complete_under_both_policies() {
    for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::Backfill] {
        let mut cluster = Cluster::with_policy(Machine::ats4(), policy);
        let ids = submit_mix(&mut cluster);
        cluster.run_until_idle();
        for id in ids {
            let job = cluster.job(id).unwrap();
            assert_eq!(job.state, JobState::Completed, "{policy:?}: {}", job.stdout);
        }
    }
}

#[test]
fn scheduler_never_oversubscribes() {
    // sequential wide jobs must serialize
    let mut cluster = Cluster::with_policy(Machine::ats4(), SchedulerPolicy::Backfill);
    let wide = format!(
        "#SBATCH -N {}\n#SBATCH -n 8\nsrun -n 8 amg -P 2 2 2 -n 64 64 64 -problem 1\n",
        Machine::ats4().nodes
    );
    let a = cluster.submit_script(&wide, "x").unwrap();
    let b = cluster.submit_script(&wide, "x").unwrap();
    cluster.run_until_idle();
    let (ja, jb) = (
        cluster.job(a).unwrap().clone(),
        cluster.job(b).unwrap().clone(),
    );
    assert!(jb.start_time.unwrap() >= ja.end_time.unwrap() - 1e-9);
}

// ---------------------------------------------------------------------------
// Fault injection (§7.1 and hardware diagnosis)
// ---------------------------------------------------------------------------

/// The §7.1 story: the same binary runs on-premise but dies in the cloud
/// because a hardware feature the math library uses is missing.
#[test]
fn cloud_feature_mismatch_reproduces_paper_anecdote() {
    let script = "#SBATCH -N 1\n#SBATCH -n 4\nsrun -n 4 saxpy -n 1024\n";
    let binary = BinaryInfo::for_target("saxpy", "skylake_avx512", ProgrammingModel::OpenMp);

    // on-premise: works
    let mut onprem = Cluster::new(Machine::cts1());
    onprem.install_binary(binary.clone());
    let id = onprem.submit_script(script, "jens").unwrap();
    onprem.run_until_idle();
    assert!(onprem.job(id).unwrap().success());

    // cloud: same binary crashes with SIGILL
    let mut cloud = Cluster::new(Machine::cloud_c5());
    cloud.install_binary(binary);
    let id = cloud.submit_script(script, "jens").unwrap();
    cloud.run_until_idle();
    let job = cloud.job(id).unwrap();
    assert_eq!(job.state, JobState::Failed);
    assert_eq!(job.exit_code, 132);
    assert!(job.stdout.contains("illegal instruction"));

    // rebuilding for the lowest common target fixes it
    let portable = BinaryInfo::for_target("saxpy", "skylake", ProgrammingModel::OpenMp);
    let mut cloud = Cluster::new(Machine::cloud_c5());
    cloud.install_binary(portable);
    let id = cloud.submit_script(script, "jens").unwrap();
    cloud.run_until_idle();
    assert!(cloud.job(id).unwrap().success());
}

#[test]
fn degraded_memory_bandwidth_shows_in_stream() {
    let run = |machine: Machine| {
        let mut cluster = Cluster::new(machine);
        let id = cluster
            .submit_script("export OMP_NUM_THREADS=36\nstream -s 10000000\n", "x")
            .unwrap();
        cluster.run_until_idle();
        let out = cluster.job(id).unwrap().stdout.clone();
        let line = out
            .lines()
            .find(|l| l.starts_with("Triad:"))
            .unwrap()
            .to_string();
        line.split_whitespace()
            .nth(1)
            .unwrap()
            .parse::<f64>()
            .unwrap()
    };
    let healthy = run(Machine::cts1());
    let degraded = run(FaultSpec::DegradeMemoryBandwidth(0.5).apply(Machine::cts1()));
    assert!(
        degraded < healthy * 0.6,
        "triad {degraded} vs healthy {healthy}"
    );
}

#[test]
fn fault_apply_edge_cases() {
    // a "degradation" factor above 1.0 clamps: faults never improve bandwidth
    let healthy = Machine::cts1();
    let boosted = FaultSpec::DegradeMemoryBandwidth(3.0).apply(Machine::cts1());
    assert!(boosted.memory_bw_gb_s <= healthy.memory_bw_gb_s);

    // failing more nodes than exist saturates at zero instead of wrapping
    let emptied = FaultSpec::FailNodes(healthy.nodes + 100).apply(Machine::cts1());
    assert_eq!(emptied.nodes, 0);

    // masking a feature the CPU never had is a no-op
    let feature_count = healthy.cpu.features.len();
    let masked =
        FaultSpec::MaskCpuFeatures(vec!["not_a_real_feature".to_string()]).apply(Machine::cts1());
    assert_eq!(masked.cpu.features.len(), feature_count);

    // latency can only inflate: a factor below 1.0 is treated as 1.0
    let faster = FaultSpec::InflateNetworkLatency(0.25).apply(Machine::cts1());
    assert!(faster.network.latency_us >= healthy.network.latency_us);
}

#[test]
fn fault_apply_rejects_non_finite_factors() {
    let healthy = Machine::cts1();

    // regression: DegradeMemoryBandwidth(NaN) used to propagate NaN into the
    // bandwidth, poisoning every downstream performance model
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let degraded = FaultSpec::DegradeMemoryBandwidth(bad).apply(Machine::cts1());
        assert!(
            degraded.memory_bw_gb_s.is_finite(),
            "factor {bad} must not poison bandwidth"
        );
        assert_eq!(degraded.memory_bw_gb_s, healthy.memory_bw_gb_s);

        let inflated = FaultSpec::InflateNetworkLatency(bad).apply(Machine::cts1());
        assert!(inflated.network.latency_us.is_finite());
        assert_eq!(inflated.network.latency_us, healthy.network.latency_us);
    }

    // negative degradation clamps to a full outage, not a negative bandwidth
    let dead = FaultSpec::DegradeMemoryBandwidth(-2.5).apply(Machine::cts1());
    assert_eq!(dead.memory_bw_gb_s, 0.0);
}

// ---------------------------------------------------------------------------
// Transient faults: mid-run node failures, requeue, timeouts
// ---------------------------------------------------------------------------

#[test]
fn mid_run_node_failure_requeues_onto_survivors() {
    use benchpark_telemetry::TelemetrySink;

    let sink = TelemetrySink::recording();
    let mut cluster = Cluster::new(Machine::ats4()); // 64 nodes
    cluster.set_telemetry(sink.clone());

    // two 24-node jobs run side by side on the 64-node machine (48 in use)
    let script = "#SBATCH -N 24\n#SBATCH -n 48\n#SBATCH -t 120:00\nsrun -n 48 amg -P 4 4 3 -n 96 96 96 -problem 1\n";
    let first = cluster.submit_script(script, "x").unwrap();
    let second = cluster.submit_script(script, "x").unwrap();
    // 20 nodes die almost immediately: 44 survive, 48 in use → the newest
    // job is preempted (24 freed), requeued, and restarts on the survivors
    cluster.schedule_node_failure(1e-6, 20);
    cluster.run_until_idle();

    let victim = cluster.job(second).unwrap();
    assert_eq!(victim.state, JobState::Completed, "{victim:?}");
    assert!(victim.success());
    let restart = victim.start_time.unwrap();
    assert!(
        restart > 0.0,
        "restart implies a later start, got {restart}"
    );
    assert!(cluster.job(first).unwrap().success());

    let report = sink.report().unwrap();
    assert_eq!(report.counter("sched.requeued"), 1);
    assert_eq!(report.counter("sched.node_failures"), 1);
}

#[test]
fn node_failure_with_spare_capacity_preempts_nothing() {
    use benchpark_telemetry::TelemetrySink;

    let sink = TelemetrySink::recording();
    let mut cluster = Cluster::new(Machine::ats4());
    cluster.set_telemetry(sink.clone());
    let script = "#SBATCH -N 2\n#SBATCH -n 4\n#SBATCH -t 60:00\nsrun -n 4 amg -P 2 2 1 -n 64 64 64 -problem 1\n";
    let id = cluster.submit_script(script, "x").unwrap();
    cluster.schedule_node_failure(1e-6, 10); // plenty of spare nodes
    cluster.run_until_idle();
    assert!(cluster.job(id).unwrap().success());
    let report = sink.report().unwrap();
    assert_eq!(report.counter("sched.requeued"), 0);
    assert_eq!(report.counter("sched.node_failures"), 1);
}

#[test]
fn transient_timeout_injection_is_seeded_and_recoverable() {
    use benchpark_resilience::FaultInjector;

    let script = "#SBATCH -N 1\n#SBATCH -n 4\n#SBATCH -t 5:00\nsrun -n 4 stream -s 1000000\n";

    // rate 1.0 with a budget of 1: first submission times out, the retry runs
    let mut cluster = Cluster::new(Machine::cts1());
    cluster.inject_transient_timeouts(FaultInjector::new(1.0, 9).with_budget(1));
    let first = cluster.submit_script(script, "x").unwrap();
    cluster.run_until_idle();
    let job = cluster.job(first).unwrap();
    assert_eq!(job.state, JobState::Timeout);
    assert_eq!(job.exit_code, 143);
    assert!(
        job.stdout.contains("CANCELLED DUE TO TIME LIMIT"),
        "{}",
        job.stdout
    );

    let second = cluster.submit_script(script, "x").unwrap();
    cluster.run_until_idle();
    assert!(
        cluster.job(second).unwrap().success(),
        "budget exhausted: retry runs clean"
    );
}

#[test]
fn fault_plan_derives_independent_seeded_streams() {
    use crate::{FaultPlan, TransientFault};

    let plan = FaultPlan::new(7)
        .with(TransientFault::FlakyRunner { rate: 0.5 })
        .with(TransientFault::FlakyCacheFetch { rate: 0.5 })
        .with(TransientFault::NodeFailureAt {
            at_s: 3.0,
            nodes: 2,
        })
        .with(TransientFault::TransientTimeout { rate: 0.25 });

    assert_eq!(plan.node_failures(), vec![(3.0, 2)]);
    assert!(plan.timeout_injector().is_some());

    // same plan seed → identical runner stream; replayable
    let a: Vec<bool> = {
        let i = plan.runner_injector().unwrap();
        (0..64).map(|_| i.should_fail()).collect()
    };
    let b: Vec<bool> = {
        let i = FaultPlan::new(7)
            .with(TransientFault::FlakyRunner { rate: 0.5 })
            .runner_injector()
            .unwrap();
        (0..64).map(|_| i.should_fail()).collect()
    };
    assert_eq!(a, b);

    // runner and cache streams differ despite equal rates
    let c: Vec<bool> = {
        let i = plan.cache_injector().unwrap();
        (0..64).map(|_| i.should_fail()).collect()
    };
    assert_ne!(a, c, "per-kind salts decorrelate the streams");

    // a plan without a fault kind derives no injector for it
    assert!(FaultPlan::new(7).runner_injector().is_none());
    assert!(FaultPlan::new(7).cache_injector().is_none());
    assert!(FaultPlan::new(7).timeout_injector().is_none());
    assert!(FaultPlan::new(7).node_failures().is_empty());
}

#[test]
fn failed_nodes_shrink_capacity() {
    let mut cluster = Cluster::new(Machine::ats4());
    cluster.fail_nodes(60); // 4 nodes left
    let err = cluster.submit_script("#SBATCH -N 5\nsrun -n 5 stream -s 10\n", "x");
    assert!(err.is_err());
    let ok = cluster.submit_script("#SBATCH -N 4\nsrun -n 4 stream -s 10\n", "x");
    assert!(ok.is_ok());
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The batch-script parser never panics on arbitrary text.
        #[test]
        fn batch_parse_total(input in "[ -~\n]{0,300}") {
            let script = BatchScript::parse(&input);
            prop_assert!(script.nodes >= 1);
            prop_assert!(script.tasks >= 1);
            prop_assert!(script.time_limit_s > 0.0);
        }

        /// Directive round trip: rendering `#SBATCH -N n -n t` and parsing
        /// recovers the numbers.
        #[test]
        fn sbatch_directives_roundtrip(nodes in 1usize..2000, tasks in 1usize..20000, minutes in 1u32..10000) {
            let text = format!(
                "#!/bin/bash\n#SBATCH -N {nodes}\n#SBATCH -n {tasks}\n#SBATCH -t {minutes}:00\nsrun -n {tasks} stream -s 10\n"
            );
            let script = BatchScript::parse(&text);
            prop_assert_eq!(script.nodes, nodes);
            prop_assert_eq!(script.tasks, tasks);
            prop_assert_eq!(script.time_limit_s, minutes as f64 * 60.0);
            prop_assert_eq!(script.commands.len(), 1);
        }

        /// Collective models are monotone in message size and rank count.
        #[test]
        fn collectives_monotone(p in 2usize..4096, bytes in 1u64..1_000_000) {
            let net = Machine::cts1().network;
            let coll = CollectiveModel::new(&net);
            for alg in [BcastAlgorithm::Linear, BcastAlgorithm::BinomialTree, BcastAlgorithm::ScatterAllgather] {
                let t = coll.bcast(alg, p, bytes);
                prop_assert!(t > 0.0);
                prop_assert!(coll.bcast(alg, p * 2, bytes) >= t, "{alg:?} rank monotonicity");
                prop_assert!(coll.bcast(alg, p, bytes * 2) >= t, "{alg:?} size monotonicity");
            }
            prop_assert!(coll.allreduce(p, bytes) > 0.0);
            prop_assert!(coll.barrier(p) > 0.0);
        }

        /// The scheduler conserves nodes: free + allocated never exceeds the
        /// total, and utilization stays within [0, 1].
        #[test]
        fn scheduler_conserves_nodes(jobs in prop::collection::vec((1usize..8, 1u32..20), 1..20)) {
            let mut cluster = Cluster::new(Machine::ats4());
            for (nodes, reps) in jobs {
                let script = format!(
                    "#SBATCH -N {nodes}\n#SBATCH -n {nodes}\n#SBATCH -t 30:00\nsrun -n {nodes} stream -s {}\n",
                    reps * 100_000
                );
                cluster.submit_script(&script, "x").unwrap();
                prop_assert!(cluster.free_nodes() <= Machine::ats4().nodes);
            }
            cluster.run_until_idle();
            prop_assert_eq!(cluster.free_nodes(), Machine::ats4().nodes);
            let u = cluster.utilization();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }
    }
}

#[test]
fn inflate_latency_slows_osu_bcast() {
    let run = |machine: Machine| {
        let mut cluster = Cluster::new(machine);
        let id = cluster
            .submit_script(
                "#SBATCH -N 8\n#SBATCH -n 64\nsrun -n 64 osu_bcast -m 8:8 -i 100\n",
                "x",
            )
            .unwrap();
        cluster.run_until_idle();
        let out = cluster.job(id).unwrap().stdout.clone();
        let line = out
            .lines()
            .find(|l| l.starts_with("8 "))
            .unwrap()
            .to_string();
        line.split_whitespace()
            .nth(1)
            .unwrap()
            .parse::<f64>()
            .unwrap()
    };
    let healthy = run(Machine::cts1());
    let slow = run(FaultSpec::InflateNetworkLatency(10.0).apply(Machine::cts1()));
    assert!(slow > healthy * 5.0, "{slow} vs {healthy}");
}
