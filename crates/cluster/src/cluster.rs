//! The cluster facade: submit batch scripts, run the event loop, collect
//! output — everything `ramble on` needs from a machine.

use crate::apps::{AppModelFn, AppRegistry, BinaryInfo, ProgrammingModel, RunContext};
use crate::batch::BatchScript;
use crate::machine::Machine;
use crate::sched::{JobRequest, JobState, Scheduler, SchedulerPolicy};
use benchpark_resilience::FaultInjector;
use benchpark_telemetry::TelemetrySink;
use std::collections::BTreeMap;

/// A node failure scheduled to strike at a fixed virtual time.
#[derive(Debug, Clone)]
struct ScheduledNodeFailure {
    at_s: f64,
    nodes: usize,
    fired: bool,
}

/// Opaque job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Everything known about a finished (or failed) job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub id: JobId,
    pub user: String,
    pub state: JobState,
    pub submit_time: f64,
    pub start_time: Option<f64>,
    pub end_time: Option<f64>,
    /// Combined stdout of all commands.
    pub stdout: String,
    /// Exit code of the job script (first failing command wins).
    pub exit_code: i32,
    /// Caliper-style profile aggregated across commands.
    pub profile: Vec<(String, f64)>,
    /// Nodes the job used.
    pub nodes: usize,
    /// Energy consumed, kWh (nodes × node power × wall time) — available for
    /// energy-aware procurement scoring.
    pub energy_kwh: f64,
}

impl JobOutcome {
    /// Did every command succeed within the time limit?
    pub fn success(&self) -> bool {
        self.state == JobState::Completed && self.exit_code == 0
    }
}

/// A simulated cluster: one machine + its batch scheduler + installed
/// binaries.
pub struct Cluster {
    pub machine: Machine,
    sched: Scheduler,
    jobs: BTreeMap<JobId, JobOutcome>,
    binaries: BTreeMap<String, BinaryInfo>,
    /// User-registered application models (the §4 "adding benchmarks"
    /// extension point): checked before the built-in registry.
    custom_models: BTreeMap<String, AppModelFn>,
    next_id: u64,
    telemetry: TelemetrySink,
    /// Node failures waiting to strike mid-run (transient fault injection).
    node_failures: Vec<ScheduledNodeFailure>,
    /// When set, each submitted job may transiently hang until its wall-time
    /// limit (a flaky filesystem, a stuck rank) and exit as a timeout.
    timeout_injector: Option<FaultInjector>,
}

impl Cluster {
    /// Boots a cluster with the machine's native scheduler and backfill.
    pub fn new(machine: Machine) -> Cluster {
        Cluster::with_policy(machine, SchedulerPolicy::Backfill)
    }

    /// Boots with an explicit scheduling policy (ablation A3).
    pub fn with_policy(machine: Machine, policy: SchedulerPolicy) -> Cluster {
        let sched = Scheduler::new(machine.nodes, policy);
        Cluster {
            machine,
            sched,
            jobs: BTreeMap::new(),
            binaries: BTreeMap::new(),
            custom_models: BTreeMap::new(),
            next_id: 1,
            telemetry: TelemetrySink::noop(),
            node_failures: Vec::new(),
            timeout_injector: None,
        }
    }

    /// Routes scheduler telemetry (queue depth per submit, utilization and
    /// completion counts per drain) to `sink`.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Registers a performance model for a new executable name — how a
    /// contributed benchmark (paper §4) becomes runnable on the simulated
    /// cluster. Custom models shadow built-in ones.
    pub fn register_app_model(&mut self, exe: &str, model: AppModelFn) {
        self.custom_models.insert(exe.to_string(), model);
    }

    /// Registers an installed executable (what `spack install` produced).
    /// Unregistered executables run as if built natively for this machine.
    pub fn install_binary(&mut self, binary: BinaryInfo) {
        self.binaries.insert(binary.name.clone(), binary);
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.sched.now()
    }

    /// Scheduler utilization so far.
    pub fn utilization(&self) -> f64 {
        self.sched.utilization()
    }

    /// Nodes currently unallocated.
    pub fn free_nodes(&self) -> usize {
        self.sched.free_nodes()
    }

    /// Injects hardware failure: removes `n` nodes from service.
    pub fn fail_nodes(&mut self, n: usize) {
        self.sched.fail_nodes(n);
    }

    /// Schedules a *mid-run* node failure: at virtual time `at_s` (during a
    /// future [`Cluster::run_until_idle`] drain), `nodes` nodes die. Running
    /// jobs that no longer fit on the survivors are preempted and requeued
    /// for a full restart, counted under the `sched.requeued` telemetry
    /// counter.
    pub fn schedule_node_failure(&mut self, at_s: f64, nodes: usize) {
        self.node_failures.push(ScheduledNodeFailure {
            at_s: if at_s.is_finite() { at_s.max(0.0) } else { 0.0 },
            nodes,
            fired: false,
        });
    }

    /// Installs a transient-timeout injector: each submitted job rolls the
    /// injector's dice, and an unlucky job hangs until its wall-time limit
    /// and exits as a Slurm-style timeout (exit 143). Retrying the
    /// submission (e.g. from a CI job with `retry:`) draws fresh dice.
    pub fn inject_transient_timeouts(&mut self, injector: FaultInjector) {
        self.timeout_injector = Some(injector);
    }

    /// Submits a batch script (e.g. the output of Figure 13's template).
    ///
    /// The job's stdout and runtime are computed immediately from the
    /// performance models, but delivery waits until the scheduler actually
    /// starts and finishes the job in virtual time.
    pub fn submit_script(&mut self, script_text: &str, user: &str) -> Result<JobId, String> {
        let script = BatchScript::parse(script_text);
        if script.nodes > self.sched.total_nodes() {
            return Err(format!(
                "job requests {} nodes but {} has only {}",
                script.nodes,
                self.machine.name,
                self.sched.total_nodes()
            ));
        }
        let id = JobId(self.next_id);
        self.next_id += 1;

        // execute the commands against the models now; the scheduler decides
        // *when* this output becomes visible
        let (stdout, exit_code, mut duration, profile) = self.execute_commands(&script, id);
        // transient fault: an unlucky job hangs until the scheduler kills it
        let injected_hang = self
            .timeout_injector
            .as_ref()
            .is_some_and(|injector| injector.should_fail());
        if injected_hang {
            duration = duration.max(script.time_limit_s);
            self.telemetry.incr("cluster.transient_timeouts", 1);
        }
        let timed_out = injected_hang || duration > script.time_limit_s;

        let outcome = JobOutcome {
            id,
            user: user.to_string(),
            state: JobState::Pending,
            submit_time: self.sched.now(),
            start_time: None,
            end_time: None,
            stdout: if timed_out {
                format!(
                    "{stdout}slurmstepd: error: *** JOB {} ON {} CANCELLED DUE TO TIME LIMIT ***\n",
                    id.0, self.machine.name
                )
            } else {
                stdout
            },
            exit_code: if timed_out { 143 } else { exit_code },
            profile,
            nodes: script.nodes,
            energy_kwh: self.machine.node_power_kw
                * script.nodes as f64
                * duration.min(script.time_limit_s)
                / 3600.0,
        };
        self.jobs.insert(id, outcome);
        self.sched.submit(JobRequest {
            id: id.0,
            nodes: script.nodes,
            time_limit_s: script.time_limit_s,
            actual_runtime_s: duration,
        });
        self.telemetry
            .observe("scheduler.queue_depth", self.sched.queue_depth() as f64);
        Ok(id)
    }

    fn execute_commands(
        &self,
        script: &BatchScript,
        id: JobId,
    ) -> (String, i32, f64, Vec<(String, f64)>) {
        let mut stdout = String::new();
        let mut exit_code = 0;
        let mut duration = 0.0f64;
        let mut profile: BTreeMap<String, f64> = BTreeMap::new();

        let n_threads = script
            .env
            .get("OMP_NUM_THREADS")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);

        for cmd in &script.commands {
            let ranks = if cmd.via_launcher {
                cmd.ranks.unwrap_or(script.tasks).max(1)
            } else {
                1
            };
            let nodes = cmd.nodes.unwrap_or(script.nodes).max(1);
            let binary = self.binaries.get(&cmd.exe).cloned().unwrap_or_else(|| {
                BinaryInfo::for_target(
                    &cmd.exe,
                    &self.machine.target().name,
                    ProgrammingModel::OpenMp,
                )
            });
            let seed = seed_for(&self.machine.name, id.0, &cmd.raw);
            let ctx = RunContext {
                machine: &self.machine,
                n_nodes: nodes,
                n_ranks: ranks,
                n_threads,
                binary,
                seed,
            };
            let result = match self.custom_models.get(&cmd.exe) {
                Some(model) => AppRegistry::feature_checked(&ctx, || model(&ctx, &cmd.args)),
                None => AppRegistry::run(&cmd.exe, &cmd.args, &ctx),
            };
            match result {
                Some(output) => {
                    stdout.push_str(&output.stdout);
                    duration += output.duration_seconds;
                    for (region, t) in output.profile {
                        *profile.entry(region).or_insert(0.0) += t;
                    }
                    if output.exit_code != 0 && exit_code == 0 {
                        exit_code = output.exit_code;
                    }
                    if output.exit_code != 0 {
                        break; // `set -e` semantics
                    }
                }
                None => {
                    stdout.push_str(&format!("bash: {}: command not found\n", cmd.exe));
                    exit_code = 127;
                    break;
                }
            }
        }
        let profile: Vec<(String, f64)> = profile.into_iter().collect();
        (stdout, exit_code, duration.max(0.001), profile)
    }

    /// Runs the scheduler event loop until all jobs are done. Scheduled node
    /// failures fire at their virtual times during the drain; preempted jobs
    /// are requeued onto the surviving nodes and restart from scratch.
    pub fn run_until_idle(&mut self) {
        let span = self.telemetry.span("scheduler.drain");
        let mut completed: u64 = 0;
        loop {
            for id in self.sched.try_start() {
                let now = self.sched.now();
                if let Some(job) = self.jobs.get_mut(&JobId(id)) {
                    job.state = JobState::Running;
                    job.start_time = Some(now);
                }
            }
            if !self.sched.busy() {
                break;
            }
            // a node failure due before the next completion strikes first
            if self.fire_due_node_failure() {
                continue;
            }
            let finished = self.sched.advance();
            if finished.is_empty() && self.sched.busy() {
                // jobs pending but nothing running and nothing startable:
                // the queue is wedged (request larger than the machine)
                break;
            }
            let now = self.sched.now();
            for id in finished {
                completed += 1;
                if let Some(job) = self.jobs.get_mut(&JobId(id)) {
                    job.end_time = Some(now);
                    job.state = if job.exit_code == 143 {
                        JobState::Timeout
                    } else if job.exit_code != 0 {
                        JobState::Failed
                    } else {
                        JobState::Completed
                    };
                }
            }
        }
        if self.telemetry.is_enabled() {
            self.telemetry.incr("scheduler.jobs_completed", completed);
            self.telemetry
                .observe("scheduler.utilization", self.sched.utilization());
            span.set_virtual(self.sched.now());
            span.set_attr("jobs_completed", completed);
        }
    }

    /// Fires the earliest unfired scheduled node failure if it is due before
    /// the next job completion. Returns true when a failure fired (the drain
    /// loop should re-plan before advancing).
    fn fire_due_node_failure(&mut self) -> bool {
        let next_end = self.sched.next_completion();
        let due = self
            .node_failures
            .iter_mut()
            .filter(|f| !f.fired)
            .min_by(|a, b| a.at_s.total_cmp(&b.at_s));
        let Some(failure) = due else {
            return false;
        };
        if next_end.is_some_and(|end| failure.at_s >= end) {
            return false; // the running job finishes before the nodes die
        }
        failure.fired = true;
        let (at_s, nodes) = (failure.at_s, failure.nodes);
        // the failure is an event in *virtual* scheduler time, so its span
        // carries the event's attributes rather than a meaningful wall time
        let failure_span = self.telemetry.span("sched.node_failure");
        let preempted = self.sched.fail_nodes_at(at_s, nodes);
        for id in &preempted {
            if let Some(job) = self.jobs.get_mut(&JobId(*id)) {
                job.state = JobState::Pending;
                job.start_time = None;
            }
        }
        self.telemetry.incr("sched.node_failures", 1);
        if !preempted.is_empty() {
            self.telemetry
                .incr("sched.requeued", preempted.len() as u64);
        }
        failure_span.set_attr("at_s", at_s);
        failure_span.set_attr("nodes_lost", nodes);
        failure_span.set_attr("preempted", preempted.len());
        true
    }

    /// Looks up a job.
    pub fn job(&self, id: JobId) -> Option<&JobOutcome> {
        self.jobs.get(&id)
    }

    /// All jobs in submission order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobOutcome> {
        self.jobs.values()
    }
}

/// Deterministic seed from machine + job + command identity.
fn seed_for(machine: &str, job: u64, raw: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in machine.bytes().chain(raw.bytes()) {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash ^ job.wrapping_mul(0x9e3779b97f4a7c15)
}
