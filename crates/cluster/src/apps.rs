//! Application execution: analytical performance models plus the real saxpy
//! kernel (paper Figure 7).
//!
//! Benchpark treats applications as black boxes that print FOM-bearing
//! stdout; the models here produce exactly that, with run times derived from
//! roofline compute, memory bandwidth, and MPI collective costs on the
//! simulated machine, plus deterministic seeded noise.

use crate::machine::Machine;
use crate::net::CollectiveModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the binary was built (drives GPU-vs-CPU execution and the §7.1
/// feature-mismatch fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgrammingModel {
    Serial,
    OpenMp,
    Cuda,
    Rocm,
}

/// An installed executable on a cluster: what the Spack build produced.
#[derive(Debug, Clone)]
pub struct BinaryInfo {
    /// Executable base name (`saxpy`, `amg`, `osu_bcast`…).
    pub name: String,
    /// Microarchitecture the binary was compiled for (`target=` in the spec).
    pub target: String,
    /// Programming model variants enabled at build time.
    pub model: ProgrammingModel,
    /// Hardware features the binary (including its math libraries) executes —
    /// running on a machine lacking any of these dies with SIGILL (§7.1).
    pub required_features: Vec<String>,
}

impl BinaryInfo {
    /// Builds a `BinaryInfo` whose required features are the SIMD features
    /// of the compile target — what an optimizing compiler and vendored math
    /// library would actually emit.
    pub fn for_target(name: &str, target: &str, model: ProgrammingModel) -> BinaryInfo {
        let simd = [
            "sse4_2", "avx", "avx2", "fma", "avx512f", "avx512bw", "avx512dq", "avx512vl", "vsx",
            "altivec", "sve", "asimd",
        ];
        let required = benchpark_archspec::taxonomy()
            .get(target)
            .map(|u| {
                simd.iter()
                    .filter(|f| u.all_features.contains(**f))
                    .map(|f| f.to_string())
                    .collect()
            })
            .unwrap_or_default();
        BinaryInfo {
            name: name.to_string(),
            target: target.to_string(),
            model,
            required_features: required,
        }
    }
}

/// The context one application run executes in.
#[derive(Debug, Clone)]
pub struct RunContext<'a> {
    pub machine: &'a Machine,
    pub n_nodes: usize,
    pub n_ranks: usize,
    pub n_threads: usize,
    pub binary: BinaryInfo,
    /// Seed for deterministic noise (derived from experiment identity).
    pub seed: u64,
}

impl RunContext<'_> {
    fn noise(&self, salt: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9e3779b97f4a7c15));
        1.0 + 0.04 * (rng.gen::<f64>() - 0.5)
    }

    fn uses_gpu(&self) -> bool {
        matches!(
            self.binary.model,
            ProgrammingModel::Cuda | ProgrammingModel::Rocm
        ) && self.machine.gpus_per_node > 0
    }
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct AppOutput {
    /// Simulated stdout (what Ramble's FOM regexes scan).
    pub stdout: String,
    /// Wall-clock seconds the job consumed on the machine.
    pub duration_seconds: f64,
    /// 0 on success; 132 models SIGILL (illegal instruction, §7.1).
    pub exit_code: i32,
    /// Caliper-style flat profile: `(region path, seconds)`.
    pub profile: Vec<(String, f64)>,
}

impl AppOutput {
    fn crash_sigill(binary: &BinaryInfo, machine: &Machine) -> AppOutput {
        AppOutput {
            stdout: format!(
                "[{}] {}: illegal instruction (core dumped)\n\
                 binary compiled for target={} requires features the host lacks\n",
                machine.name, binary.name, binary.target
            ),
            duration_seconds: 0.01,
            exit_code: 132, // 128 + SIGILL(4)
            profile: Vec::new(),
        }
    }

    /// Success?
    pub fn success(&self) -> bool {
        self.exit_code == 0
    }
}

/// A pluggable application performance model: `(context, argv) → output`.
pub type AppModelFn = fn(&RunContext<'_>, &[String]) -> AppOutput;

/// Dispatches executable names to their models.
pub struct AppRegistry;

impl AppRegistry {
    /// Known executable base names.
    pub fn known() -> &'static [&'static str] {
        &["saxpy", "amg", "stream", "osu_bcast", "xhpl", "lulesh2.0"]
    }

    /// Applies the §7.1 hardware-feature check, then runs `model`. The crash
    /// happens in the loader/math library, before any application logic —
    /// custom models get the same treatment as built-ins.
    pub fn feature_checked(
        ctx: &RunContext<'_>,
        model: impl FnOnce() -> AppOutput,
    ) -> Option<AppOutput> {
        let missing = ctx
            .binary
            .required_features
            .iter()
            .any(|f| !ctx.machine.cpu.features.contains(f.as_str()));
        if missing {
            return Some(AppOutput::crash_sigill(&ctx.binary, ctx.machine));
        }
        Some(model())
    }

    /// Runs `exe args…` under `ctx`. Returns `None` for unknown executables
    /// (the batch layer turns that into `command not found`, exit 127).
    pub fn run(exe: &str, args: &[String], ctx: &RunContext<'_>) -> Option<AppOutput> {
        // §7.1 feature check happens before any application logic: the crash
        // is in the loader/math library, not the app.
        let missing: Vec<&String> = ctx
            .binary
            .required_features
            .iter()
            .filter(|f| !ctx.machine.cpu.features.contains(f.as_str()))
            .collect();
        if !missing.is_empty() {
            return Some(AppOutput::crash_sigill(&ctx.binary, ctx.machine));
        }
        match exe {
            "saxpy" => Some(saxpy(args, ctx)),
            "amg" => Some(amg(args, ctx)),
            "stream" => Some(stream(args, ctx)),
            "osu_bcast" => Some(osu_bcast(args, ctx)),
            "xhpl" => Some(hpl(args, ctx)),
            "lulesh2.0" => Some(lulesh(args, ctx)),
            _ => None,
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_values(args: &[String], flag: &str, n: usize) -> Option<Vec<u64>> {
    let i = args.iter().position(|a| a == flag)?;
    let vals: Vec<u64> = args[i + 1..]
        .iter()
        .take(n)
        .filter_map(|a| a.parse().ok())
        .collect();
    (vals.len() == n).then_some(vals)
}

/// Figure 7's kernel, executed for real (multithreaded via crossbeam scoped
/// threads) in addition to the distributed-time model.
pub fn saxpy_kernel(r: &mut [f32], x: &[f32], y: &[f32], a: f32, threads: usize) {
    let threads = threads.clamp(1, 16);
    if threads == 1 || r.len() < 4096 {
        for i in 0..r.len() {
            r[i] = a * x[i] + y[i];
        }
        return;
    }
    let chunk = r.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for ((r_chunk, x_chunk), y_chunk) in r
            .chunks_mut(chunk)
            .zip(x.chunks(chunk))
            .zip(y.chunks(chunk))
        {
            s.spawn(move |_| {
                for i in 0..r_chunk.len() {
                    r_chunk[i] = a * x_chunk[i] + y_chunk[i];
                }
            });
        }
    })
    .expect("saxpy workers must not panic");
}

fn saxpy(args: &[String], ctx: &RunContext<'_>) -> AppOutput {
    let n: u64 = flag_value(args, "-n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    // really run the kernel (bounded size so tests stay fast)
    let real_n = n.min(1 << 22) as usize;
    let x = vec![1.0f32; real_n];
    let y = vec![2.0f32; real_n];
    let mut r = vec![0.0f32; real_n];
    saxpy_kernel(&mut r, &x, &y, 2.5, ctx.n_threads);
    debug_assert!(r.iter().all(|&v| (v - 4.5).abs() < 1e-6));

    // distributed-time model: bandwidth-bound streaming kernel + a parameter
    // broadcast
    let per_rank = n.div_ceil(ctx.n_ranks.max(1) as u64);
    let bytes = per_rank * 3 * 4; // read x, y; write r
    let ranks_per_node = ctx.n_ranks.div_ceil(ctx.n_nodes.max(1));
    let node_bw = ctx.machine.memory_bw_gb_s * 1e9;
    let rank_bw = node_bw / ranks_per_node.max(1) as f64;
    let kernel = bytes as f64 / rank_bw * ctx.noise(1);
    let coll = CollectiveModel::new(&ctx.machine.network);
    let bcast = coll.bcast(ctx.machine.network.bcast, ctx.n_ranks, 16);
    let total = kernel + bcast;

    AppOutput {
        stdout: format!(
            "Running saxpy: n={} ranks={} threads={}\nKernel done\nKernel time (s): {:.6}\n",
            n, ctx.n_ranks, ctx.n_threads, total
        ),
        duration_seconds: total + 0.05,
        exit_code: 0,
        profile: vec![
            ("main".to_string(), total),
            ("main/saxpy_kernel".to_string(), kernel),
            ("MPI_Bcast".to_string(), bcast),
        ],
    }
}

fn amg(args: &[String], ctx: &RunContext<'_>) -> AppOutput {
    let p = flag_values(args, "-P", 3).unwrap_or(vec![1, 1, 1]);
    let n = flag_values(args, "-n", 3).unwrap_or(vec![10, 10, 10]);
    let needed = (p[0] * p[1] * p[2]) as usize;
    if needed != ctx.n_ranks {
        return AppOutput {
            stdout: format!(
                "ERROR: processor topology {}x{}x{} requires {} ranks, got {}\n",
                p[0], p[1], p[2], needed, ctx.n_ranks
            ),
            duration_seconds: 0.01,
            exit_code: 1,
            profile: Vec::new(),
        };
    }
    let per_rank_dof = (n[0] * n[1] * n[2]) as f64;
    let total_dof = per_rank_dof * needed as f64;

    // effective per-rank memory bandwidth (GPU runs use device bandwidth)
    let ranks_per_node = ctx.n_ranks.div_ceil(ctx.n_nodes.max(1));
    let bw = if ctx.uses_gpu() {
        let g = ctx.machine.gpu.as_ref().expect("uses_gpu checked");
        g.memory_bw_gb_s * 1e9 * ctx.machine.gpus_per_node as f64 / ranks_per_node.max(1) as f64
    } else {
        ctx.machine.memory_bw_gb_s * 1e9 / ranks_per_node.max(1) as f64
    };

    let coll = CollectiveModel::new(&ctx.machine.network);
    // setup: matrix + hierarchy construction, ~250 bytes/DOF of traffic,
    // plus an allgather of coarse-grid info
    let setup = per_rank_dof * 250.0 / bw * ctx.noise(2)
        + coll.allgather(ctx.n_ranks, 4096)
        + coll.bcast(ctx.machine.network.bcast, ctx.n_ranks, 1024);
    // solve: V-cycles; 27-pt SpMV traffic dominates; each iteration does
    // halo exchanges and two dot-product allreduces
    let iterations = 17u32;
    let face_bytes = (n[0] * n[1] * 8) as u64;
    let per_iter = per_rank_dof * 27.0 * 8.0 * 1.7 / bw // 1.7: V-cycle levels
        + coll.halo3d(face_bytes)
        + 2.0 * coll.allreduce(ctx.n_ranks, 8);
    let solve = per_iter * iterations as f64 * ctx.noise(3);

    let fom_setup = total_dof / setup;
    let fom_solve = total_dof * iterations as f64 / solve;
    let total = setup + solve;

    AppOutput {
        stdout: format!(
            "AMG2023 driver\nProblem: {} x {} x {} per process, P = {} {} {}\n\
             Iterations = {}\nFinal relative residual = 1.0e-08\n\
             Setup phase time: {:.6} seconds\nSolve phase time: {:.6} seconds\n\
             Figure of Merit (FOM_Setup): {:.6e}\nFigure of Merit (FOM_Solve): {:.6e}\n",
            n[0], n[1], n[2], p[0], p[1], p[2], iterations, setup, solve, fom_setup, fom_solve
        ),
        duration_seconds: total + 0.3,
        exit_code: 0,
        profile: vec![
            ("main".to_string(), total),
            ("main/setup".to_string(), setup),
            ("main/solve".to_string(), solve),
            (
                "MPI_Allreduce".to_string(),
                2.0 * coll.allreduce(ctx.n_ranks, 8) * iterations as f64,
            ),
            (
                "MPI_Bcast".to_string(),
                coll.bcast(ctx.machine.network.bcast, ctx.n_ranks, 1024),
            ),
        ],
    }
}

fn stream(args: &[String], ctx: &RunContext<'_>) -> AppOutput {
    let size: u64 = flag_value(args, "-s")
        .and_then(|v| v.parse().ok())
        .unwrap_or(80_000_000);
    // bandwidth saturates once ~half the cores participate
    let cores = ctx.machine.cores_per_node() as f64;
    let saturation = (ctx.n_threads as f64 / (cores / 2.0)).min(1.0);
    let bw = ctx.machine.memory_bw_gb_s * 1e9 * (0.25 + 0.75 * saturation);
    let mbps = |factor: f64, salt: u64| bw * factor / 1e6 * ctx.noise(salt);
    let copy = mbps(0.92, 10);
    let scale = mbps(0.90, 11);
    let add = mbps(0.95, 12);
    let triad = mbps(0.96, 13);
    let duration = (size * 8 * 10) as f64 / bw;
    AppOutput {
        stdout: format!(
            "STREAM version $Revision: 5.10 $\nArray size = {size}\n\
             Function    Best Rate MB/s\nCopy:     {copy:.1}\nScale:    {scale:.1}\n\
             Add:      {add:.1}\nTriad:    {triad:.1}\nSolution Validates\n"
        ),
        duration_seconds: duration,
        exit_code: 0,
        profile: vec![("main/triad".to_string(), duration / 4.0)],
    }
}

fn osu_bcast(args: &[String], ctx: &RunContext<'_>) -> AppOutput {
    let sizes = flag_value(args, "-m").unwrap_or_else(|| "8:8".to_string());
    let iterations: u64 = flag_value(args, "-i")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let (lo, hi) = match sizes.split_once(':') {
        Some((a, b)) => (a.parse::<u64>().unwrap_or(8), b.parse::<u64>().unwrap_or(8)),
        None => {
            let v = sizes.parse::<u64>().unwrap_or(8);
            (v, v)
        }
    };
    let coll = CollectiveModel::new(&ctx.machine.network);
    let mut stdout =
        String::from("# OSU MPI Broadcast Latency Test\n# Size       Avg Latency(us)\n");
    let mut total = 0.0;
    let mut profile = Vec::new();
    let mut size = lo.max(1);
    while size <= hi.max(1) {
        let one = coll.bcast(ctx.machine.network.bcast, ctx.n_ranks, size) * ctx.noise(size);
        stdout.push_str(&format!("{} {:.2}\n", size, one * 1e6));
        total += one * iterations as f64;
        profile.push((format!("MPI_Bcast/{size}"), one * iterations as f64));
        if size == hi.max(1) {
            break;
        }
        size = (size * 2).min(hi.max(1));
    }
    profile.push(("MPI_Bcast".to_string(), total));
    AppOutput {
        stdout,
        duration_seconds: total + 0.02,
        exit_code: 0,
        profile,
    }
}

/// High-Performance Linpack: compute-bound LU factorization,
/// `2/3·N³ + 2·N²` flops at a machine-dependent efficiency.
fn hpl(args: &[String], ctx: &RunContext<'_>) -> AppOutput {
    let n: f64 = flag_value(args, "-N")
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000.0);
    let nb: u64 = flag_value(args, "-NB")
        .and_then(|v| v.parse().ok())
        .unwrap_or(192);

    // peak flops of the allocation
    let ranks_per_node = ctx.n_ranks.div_ceil(ctx.n_nodes.max(1));
    let (peak_flops, efficiency) = if ctx.uses_gpu() {
        let g = ctx.machine.gpu.as_ref().expect("uses_gpu checked");
        let node_peak = g.fp64_tflops * 1e12 * ctx.machine.gpus_per_node as f64;
        (node_peak * ctx.n_nodes as f64, 0.70)
    } else {
        let threads = ctx.n_threads.max(1) as f64;
        let cores_used = (ranks_per_node as f64 * threads).min(ctx.machine.cores_per_node() as f64);
        let node_peak = ctx.machine.gflops_per_core * 1e9 * cores_used;
        (node_peak * ctx.n_nodes as f64, 0.82)
    };
    let flops = 2.0 / 3.0 * n * n * n + 2.0 * n * n;
    let compute = flops / (peak_flops * efficiency);
    // panel broadcasts: one per block column
    let coll = CollectiveModel::new(&ctx.machine.network);
    let panels = (n / nb as f64).ceil();
    let comm = panels * coll.bcast(ctx.machine.network.bcast, ctx.n_ranks, nb * nb * 8);
    let time = (compute + comm) * ctx.noise(31);
    let gflops = flops / time / 1e9;

    AppOutput {
        stdout: format!(
            "================================================================================\n             T/V                N    NB               Time                 Gflops\n             --------------------------------------------------------------------------------\n             WR11C2R4 {} {} {:.2} {:.4e}\n             Time   :   {:.2}\n             ||Ax-b||_oo/(eps*(||A||_oo*||x||_oo+||b||_oo)*N)=   0.0023820 ...... PASSED\n",
            n as u64, nb, time, gflops, time
        ),
        duration_seconds: time + 1.0,
        exit_code: 0,
        profile: vec![
            ("main".to_string(), time),
            ("main/pdgesv".to_string(), compute),
            ("MPI_Bcast".to_string(), comm),
        ],
    }
}

fn lulesh(args: &[String], ctx: &RunContext<'_>) -> AppOutput {
    let s: u64 = flag_value(args, "-s")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let iterations: u64 = flag_value(args, "-i")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let zones_per_domain = (s * s * s) as f64;
    let total_zones = zones_per_domain * ctx.n_ranks as f64;

    let ranks_per_node = ctx.n_ranks.div_ceil(ctx.n_nodes.max(1));
    let flops_per_zone_step = 8000.0;
    let core_gflops = ctx.machine.gflops_per_core * 1e9;
    let threads = ctx.n_threads.max(1) as f64;
    let compute =
        zones_per_domain * flops_per_zone_step / (core_gflops * threads.min(8.0)) * ctx.noise(21);
    let coll = CollectiveModel::new(&ctx.machine.network);
    let face_bytes = s * s * 8;
    let comm = coll.halo3d(face_bytes) + coll.allreduce(ctx.n_ranks, 8);
    let per_step = compute + comm;
    let elapsed = per_step * iterations as f64;
    let fom = total_zones * iterations as f64 / elapsed / 1.0;
    let _ = ranks_per_node;

    AppOutput {
        stdout: format!(
            "Running problem size {s}^3 per domain until completion\n\
             Num processors: {}\nIterations: {iterations}\n\
             Elapsed time         =      {elapsed:.2} (s)\n\
             FOM                  =      {fom:.2} (z/s)\nRun completed\n",
            ctx.n_ranks
        ),
        duration_seconds: elapsed,
        exit_code: 0,
        profile: vec![
            ("main".to_string(), elapsed),
            (
                "main/LagrangeLeapFrog".to_string(),
                compute * iterations as f64,
            ),
            (
                "MPI_Allreduce".to_string(),
                coll.allreduce(ctx.n_ranks, 8) * iterations as f64,
            ),
        ],
    }
}
