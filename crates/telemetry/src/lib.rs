//! Pipeline-wide self-instrumentation for Benchpark, in the spirit of
//! Caliper/Adiak annotations the paper's experiments rely on — except turned
//! inward, on the benchmarking pipeline itself.
//!
//! Three primitives:
//!
//! * **Spans** — hierarchical timed regions (`pipeline.setup` →
//!   `workspace.setup` → `environment` → `concretize` / `install` → …).
//!   Every span records *real* wall-clock duration; phases that simulate
//!   time (the installer's makespan, the cluster scheduler) may additionally
//!   attach a *virtual* duration.
//! * **Counters** — monotonically increasing named totals
//!   (`concretizer.solves`, `cache.hit`, `ci.jobs.success`, …).
//! * **Observations** — point samples aggregated into count/sum/min/max/last
//!   (`scheduler.queue_depth`, `install.worker_utilization`, …).
//! * **Histograms** — latency distributions over deterministic
//!   power-of-two buckets ([`TelemetrySink::record_hist`]): bucket `i`
//!   counts samples `<= 2^i` ticks, so two runs that record the same
//!   virtual-time values build byte-identical distributions regardless of
//!   worker count. Mergeable, with rank-based quantile estimates
//!   ([`HistogramStats::quantile`]).
//!
//! Every event is also appended to a structured journal, so a report can
//! replay the exact instrumentation sequence. (Histogram samples are the
//! one exception: they aggregate in place without a journal entry, so a
//! million-sample latency distribution does not swamp the journal.) The
//! whole subsystem is reached
//! through a [`TelemetrySink`] handle: a disabled sink (the default
//! everywhere) is a `None` and costs one branch per call site.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A cheap-to-clone handle to a telemetry recorder, or a no-op.
///
/// All pipeline components accept a sink and default to [`TelemetrySink::noop`],
/// so instrumentation is zero-cost unless a recording sink is plumbed in
/// (e.g. by `benchpark trace`).
#[derive(Clone, Default)]
pub struct TelemetrySink(Option<Arc<Recorder>>);

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("TelemetrySink")
            .field(&if self.0.is_some() {
                "recording"
            } else {
                "noop"
            })
            .finish()
    }
}

impl TelemetrySink {
    /// The disabled sink: every call is a no-op.
    pub fn noop() -> TelemetrySink {
        TelemetrySink(None)
    }

    /// A live sink backed by a fresh recorder.
    pub fn recording() -> TelemetrySink {
        TelemetrySink(Some(Arc::new(Recorder::new())))
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a span; it closes (and records its real duration) when the
    /// returned guard drops. Nested `span` calls on clones of the same sink
    /// form the hierarchy.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(recorder) = &self.0 else {
            return SpanGuard {
                recorder: None,
                index: 0,
            };
        };
        let index = recorder.start_span(name);
        SpanGuard {
            recorder: Some(Arc::clone(recorder)),
            index,
        }
    }

    /// Adds `delta` to the named counter.
    pub fn incr(&self, name: &str, delta: u64) {
        if let Some(recorder) = &self.0 {
            recorder.incr(name, delta);
        }
    }

    /// Records one sample of a named quantity.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(recorder) = &self.0 {
            recorder.observe(name, value, false);
        }
    }

    /// Records one sample of a *volatile* quantity — one whose value depends
    /// on wall clock or worker count (e.g. a parallel makespan or a
    /// utilization ratio). Volatile streams are aggregated and journaled like
    /// ordinary observations, but are flagged in the report so deterministic
    /// consumers (canonical trace exports, the run ledger) can exclude them.
    pub fn observe_volatile(&self, name: &str, value: f64) {
        if let Some(recorder) = &self.0 {
            recorder.observe(name, value, true);
        }
    }

    /// Records one sample into the named log-bucketed histogram. Values are
    /// virtual-time ticks (or any deterministic non-negative quantity);
    /// bucket boundaries are fixed powers of two, so the resulting
    /// distribution is byte-identical across runs that observe the same
    /// values, whatever order they arrive in.
    pub fn record_hist(&self, name: &str, value: u64) {
        if let Some(recorder) = &self.0 {
            recorder.record_hist(name, value);
        }
    }

    /// A snapshot of everything recorded so far (`None` for a no-op sink).
    pub fn report(&self) -> Option<TelemetryReport> {
        self.0.as_ref().map(|r| r.snapshot())
    }
}

/// RAII guard for an open span; ends the span when dropped.
pub struct SpanGuard {
    recorder: Option<Arc<Recorder>>,
    index: usize,
}

impl SpanGuard {
    /// Attaches a simulated-time duration to this span (e.g. the installer's
    /// virtual makespan), alongside the real wall-clock time measured on drop.
    pub fn set_virtual(&self, seconds: f64) {
        if let Some(recorder) = &self.recorder {
            recorder.set_virtual(self.index, seconds, false);
        }
    }

    /// Like [`SpanGuard::set_virtual`], but marks the duration as *volatile*:
    /// its value depends on the worker count (e.g. a parallel schedule's
    /// makespan), so canonical exports must not compare it across runs.
    pub fn set_virtual_volatile(&self, seconds: f64) {
        if let Some(recorder) = &self.recorder {
            recorder.set_virtual(self.index, seconds, true);
        }
    }

    /// Attaches a `key=value` attribute to this span (e.g. a task's dispatch
    /// index, its scheduled slot, or a CI job's stage). Attributes surface in
    /// trace exports as Chrome `args`. Setting the same key twice keeps the
    /// last value.
    pub fn set_attr(&self, key: &str, value: impl ToString) {
        if let Some(recorder) = &self.recorder {
            recorder.set_attr(self.index, key, value.to_string(), false);
        }
    }

    /// Like [`SpanGuard::set_attr`], but marks the attribute as *volatile*
    /// (worker-count- or wall-clock-dependent, e.g. a task's planned slot
    /// when the plan width is user-chosen). Volatile attributes appear in
    /// wall-time exports but are excluded from canonical ones.
    pub fn set_attr_volatile(&self, key: &str, value: impl ToString) {
        if let Some(recorder) = &self.recorder {
            recorder.set_attr(self.index, key, value.to_string(), true);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(recorder) = &self.recorder {
            recorder.end_span(self.index);
        }
    }
}

/// One entry in the append-only journal. `at` is seconds since the recorder
/// was created.
///
/// Names are interned `Arc<str>`s: instrumentation points fire the same few
/// dozen names millions of times, so each append clones a refcount instead
/// of allocating a `String`. `&Event.name` coerces to `&str` wherever one is
/// expected.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    SpanStart {
        at: f64,
        name: Arc<str>,
        depth: usize,
    },
    SpanEnd {
        at: f64,
        name: Arc<str>,
        real_seconds: f64,
    },
    Counter {
        at: f64,
        name: Arc<str>,
        delta: u64,
        total: u64,
    },
    Observe {
        at: f64,
        name: Arc<str>,
        value: f64,
    },
}

/// A recorded span, in creation order (preorder of the span tree).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Interned span name (coerces to `&str`).
    pub name: Arc<str>,
    /// Index of the parent span in the arena, or `None` for a root.
    pub parent: Option<usize>,
    /// Depth in the tree: roots are 1.
    pub depth: usize,
    /// Start offset in seconds since the recorder epoch.
    pub started_at: f64,
    /// Real wall-clock duration; `None` while the span is still open.
    pub real_seconds: Option<f64>,
    /// Simulated-time duration, if the phase attached one.
    pub virtual_seconds: Option<f64>,
    /// True when `virtual_seconds` depends on worker count (a parallel
    /// makespan) rather than being a deterministic property of the workload.
    pub virtual_volatile: bool,
    /// Stable `key=value` attributes attached via [`SpanGuard::set_attr`],
    /// in insertion order (last write per key wins).
    pub attrs: Vec<(String, String)>,
    /// Volatile attributes ([`SpanGuard::set_attr_volatile`]): present in
    /// wall-time exports, excluded from canonical ones.
    pub volatile_attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Looks up a stable attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a volatile attribute by key.
    pub fn volatile_attr(&self, key: &str) -> Option<&str> {
        self.volatile_attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Aggregate statistics for one observation stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservationStats {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub last: f64,
}

impl ObservationStats {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Number of finite histogram buckets: bucket `i` counts samples
/// `<= 2^i`, for `i` in `0..32`; anything above `2^31` lands in the
/// overflow bucket (Prometheus `+Inf`).
pub const HIST_BUCKET_COUNT: usize = 32;

/// A log-bucketed latency histogram with deterministic power-of-two
/// boundaries. Bucket `i` holds the count of samples `<= 2^i` (exclusive of
/// smaller buckets — counts are per-bucket, not cumulative); samples above
/// `2^31` land in `overflow`. Because the boundaries are fixed and samples
/// are integers, two runs recording the same multiset of values produce
/// identical histograms regardless of arrival order or worker count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramStats {
    /// Per-bucket sample counts; bucket `i` covers `(2^(i-1), 2^i]`
    /// (bucket 0 covers `[0, 1]`).
    pub buckets: [u64; HIST_BUCKET_COUNT],
    /// Samples above the largest finite boundary (`2^31`).
    pub overflow: u64,
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples (integer, so merge order cannot change it).
    pub sum: u64,
    /// Smallest sample seen (0 when empty).
    pub min: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
}

impl HistogramStats {
    /// An empty histogram.
    pub fn new() -> HistogramStats {
        HistogramStats::default()
    }

    /// The finite bucket index for `value`, or `None` for the overflow
    /// bucket: the smallest `i` with `value <= 2^i`.
    pub fn bucket_index(value: u64) -> Option<usize> {
        if value <= 1 {
            return Some(0);
        }
        let index = 64 - (value - 1).leading_zeros() as usize;
        (index < HIST_BUCKET_COUNT).then_some(index)
    }

    /// The inclusive upper boundary of finite bucket `i` (`2^i`).
    pub fn bucket_le(index: usize) -> u64 {
        1u64 << index
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        match HistogramStats::bucket_index(value) {
            Some(index) => self.buckets[index] += 1,
            None => self.overflow += 1,
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Folds another histogram into this one. Buckets are aligned by
    /// construction, so merging is elementwise addition — the basis for
    /// per-tenant → global rollups.
    pub fn merge(&mut self, other: &HistogramStats) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The estimated `q`-quantile (`0.0..=1.0`): the upper boundary of the
    /// bucket containing the ceil(q·count)-th sample, clamped to the
    /// observed max so a one-value histogram reports that value exactly.
    /// Deterministic — a pure function of the bucket counts.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return HistogramStats::bucket_le(index).min(self.max);
            }
        }
        self.max
    }
}

#[derive(Default)]
struct RecorderState {
    spans: Vec<SpanRecord>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<usize>,
    counters: BTreeMap<Arc<str>, u64>,
    observations: BTreeMap<Arc<str>, ObservationStats>,
    histograms: BTreeMap<Arc<str>, HistogramStats>,
    /// Names of observation streams that were ever recorded as volatile.
    volatile_observations: BTreeSet<Arc<str>>,
    journal: Vec<Event>,
    /// Intern table: every distinct name seen by this recorder, so the hot
    /// journal/counter/observation paths allocate a name string at most once
    /// per distinct name over the recorder's lifetime.
    names: BTreeSet<Arc<str>>,
}

impl RecorderState {
    fn intern(&mut self, name: &str) -> Arc<str> {
        if let Some(existing) = self.names.get(name) {
            return Arc::clone(existing);
        }
        let interned: Arc<str> = Arc::from(name);
        self.names.insert(Arc::clone(&interned));
        interned
    }
}

/// The shared mutable core behind a recording [`TelemetrySink`].
pub struct Recorder {
    epoch: Instant,
    state: Mutex<RecorderState>,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            state: Mutex::new(RecorderState::default()),
        }
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn start_span(&self, name: &str) -> usize {
        let at = self.now();
        let mut state = self.state.lock().unwrap();
        let name = state.intern(name);
        let parent = state.stack.last().copied();
        let depth = parent.map(|p| state.spans[p].depth + 1).unwrap_or(1);
        let index = state.spans.len();
        state.spans.push(SpanRecord {
            name: Arc::clone(&name),
            parent,
            depth,
            started_at: at,
            real_seconds: None,
            virtual_seconds: None,
            virtual_volatile: false,
            attrs: Vec::new(),
            volatile_attrs: Vec::new(),
        });
        state.stack.push(index);
        state.journal.push(Event::SpanStart { at, name, depth });
        index
    }

    fn end_span(&self, index: usize) {
        let at = self.now();
        let mut state = self.state.lock().unwrap();
        // Close any spans opened after this one that leaked (guard dropped
        // out of order); normal RAII nesting pops exactly one.
        while let Some(top) = state.stack.pop() {
            let span = &mut state.spans[top];
            let real = at - span.started_at;
            span.real_seconds = Some(real);
            let name = Arc::clone(&span.name);
            state.journal.push(Event::SpanEnd {
                at,
                name,
                real_seconds: real,
            });
            if top == index {
                break;
            }
        }
    }

    fn set_virtual(&self, index: usize, seconds: f64, volatile: bool) {
        let mut state = self.state.lock().unwrap();
        if let Some(span) = state.spans.get_mut(index) {
            span.virtual_seconds = Some(seconds);
            span.virtual_volatile = volatile;
        }
    }

    fn set_attr(&self, index: usize, key: &str, value: String, volatile: bool) {
        let mut state = self.state.lock().unwrap();
        if let Some(span) = state.spans.get_mut(index) {
            let list = if volatile {
                &mut span.volatile_attrs
            } else {
                &mut span.attrs
            };
            if let Some(slot) = list.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                list.push((key.to_string(), value));
            }
        }
    }

    fn incr(&self, name: &str, delta: u64) {
        let at = self.now();
        let mut state = self.state.lock().unwrap();
        let name = state.intern(name);
        let total = state.counters.entry(Arc::clone(&name)).or_insert(0);
        *total += delta;
        let total = *total;
        state.journal.push(Event::Counter {
            at,
            name,
            delta,
            total,
        });
    }

    fn observe(&self, name: &str, value: f64, volatile: bool) {
        let at = self.now();
        let mut state = self.state.lock().unwrap();
        let name = state.intern(name);
        if volatile {
            state.volatile_observations.insert(Arc::clone(&name));
        }
        state
            .observations
            .entry(Arc::clone(&name))
            .and_modify(|s| {
                s.count += 1;
                s.sum += value;
                s.min = s.min.min(value);
                s.max = s.max.max(value);
                s.last = value;
            })
            .or_insert(ObservationStats {
                count: 1,
                sum: value,
                min: value,
                max: value,
                last: value,
            });
        state.journal.push(Event::Observe { at, name, value });
    }

    fn record_hist(&self, name: &str, value: u64) {
        // Deliberately not journaled: histogram call sites fire per-sample
        // at high rates and the aggregate is the product.
        let mut state = self.state.lock().unwrap();
        let name = state.intern(name);
        state.histograms.entry(name).or_default().record(value);
    }

    fn snapshot(&self) -> TelemetryReport {
        // The cold path pays the String conversions the hot paths avoided,
        // keeping the report's public maps `String`-keyed.
        let state = self.state.lock().unwrap();
        TelemetryReport {
            spans: state.spans.clone(),
            counters: state
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            observations: state
                .observations
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            volatile_observations: state
                .volatile_observations
                .iter()
                .map(|k| k.to_string())
                .collect(),
            journal: state.journal.clone(),
        }
    }
}

/// An immutable snapshot of a recorder: the span tree, counter totals,
/// observation statistics, and the full event journal.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    pub spans: Vec<SpanRecord>,
    pub counters: BTreeMap<String, u64>,
    pub observations: BTreeMap<String, ObservationStats>,
    /// Log-bucketed latency histograms ([`TelemetrySink::record_hist`]),
    /// keyed by name. Deterministic by construction — never volatile.
    pub histograms: BTreeMap<String, HistogramStats>,
    /// Streams recorded via [`TelemetrySink::observe_volatile`] — their
    /// values are wall-clock- or worker-count-dependent and must be skipped
    /// by deterministic consumers (canonical exports, the run ledger).
    pub volatile_observations: BTreeSet<String>,
    pub journal: Vec<Event>,
}

impl TelemetryReport {
    /// Total for a named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Statistics for a named observation stream, if any samples exist.
    pub fn observation(&self, name: &str) -> Option<&ObservationStats> {
        self.observations.get(name)
    }

    /// True when the named observation stream was recorded as volatile.
    pub fn is_volatile_observation(&self, name: &str) -> bool {
        self.volatile_observations.contains(name)
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStats> {
        self.histograms.get(name)
    }

    /// Histogram `(name, stats)` pairs, explicitly sorted by name — same
    /// contract as [`TelemetryReport::sorted_counters`].
    pub fn sorted_histograms(&self) -> Vec<(&str, &HistogramStats)> {
        let mut out: Vec<(&str, &HistogramStats)> = self
            .histograms
            .iter()
            .map(|(k, v)| (k.as_str(), v))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Counter `(name, total)` pairs, explicitly sorted by name. Rendering
    /// and exports go through this so the ordering contract does not silently
    /// depend on the backing map's iteration order.
    pub fn sorted_counters(&self) -> Vec<(&str, u64)> {
        let mut out: Vec<(&str, u64)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Observation `(name, stats)` pairs, explicitly sorted by name — same
    /// contract as [`TelemetryReport::sorted_counters`].
    pub fn sorted_observations(&self) -> Vec<(&str, &ObservationStats)> {
        let mut out: Vec<(&str, &ObservationStats)> = self
            .observations
            .iter()
            .map(|(k, v)| (k.as_str(), v))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Deepest nesting level reached in the span tree (roots are 1).
    pub fn max_depth(&self) -> usize {
        self.spans.iter().map(|s| s.depth).max().unwrap_or(0)
    }

    /// Renders the span tree, counters, and observations as aligned text —
    /// the body of `benchpark trace`.
    ///
    /// Ordering invariant: spans appear in creation order (preorder of the
    /// span tree); counters and observations appear in ascending
    /// lexicographic name order via [`TelemetryReport::sorted_counters`] /
    /// [`TelemetryReport::sorted_observations`], never in backing-map
    /// iteration order. Volatile observation streams are marked with a
    /// trailing `*`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry: span tree (real wall-clock; ~virtual where simulated)\n");
        for span in &self.spans {
            let indent = "  ".repeat(span.depth - 1);
            let real = span
                .real_seconds
                .map(|s| format!("{:.6}s", s))
                .unwrap_or_else(|| "open".to_string());
            match span.virtual_seconds {
                Some(v) => {
                    let _ = writeln!(out, "  {indent}{:<32} {real:>12}  ~{v:.3}s", span.name);
                }
                None => {
                    let _ = writeln!(out, "  {indent}{:<32} {real:>12}", span.name);
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\ntelemetry: counters\n");
            for (name, total) in self.sorted_counters() {
                let _ = writeln!(out, "  {name:<36} {total:>10}");
            }
        }
        if !self.observations.is_empty() {
            out.push_str("\ntelemetry: observations (mean/min/max over samples)\n");
            let mut any_volatile = false;
            for (name, stats) in self.sorted_observations() {
                let mark = if self.is_volatile_observation(name) {
                    any_volatile = true;
                    "*"
                } else {
                    ""
                };
                let label = format!("{name}{mark}");
                let _ = writeln!(
                    out,
                    "  {label:<36} mean {:>9.3}  min {:>9.3}  max {:>9.3}  n={}",
                    stats.mean(),
                    stats.min,
                    stats.max,
                    stats.count
                );
            }
            if any_volatile {
                out.push_str("  (* volatile: wall-clock/worker-count dependent)\n");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\ntelemetry: histograms (power-of-two buckets, ticks)\n");
            for (name, hist) in self.sorted_histograms() {
                let _ = writeln!(
                    out,
                    "  {name:<36} p50 {:>6}  p95 {:>6}  p99 {:>6}  max {:>6}  n={}",
                    hist.quantile(0.50),
                    hist.quantile(0.95),
                    hist.quantile(0.99),
                    hist.max,
                    hist.count
                );
            }
        }
        let _ = writeln!(
            out,
            "\ntelemetry: {} journal events, max span depth {}",
            self.journal.len(),
            self.max_depth()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_records_nothing() {
        let sink = TelemetrySink::noop();
        assert!(!sink.is_enabled());
        {
            let span = sink.span("anything");
            span.set_virtual(1.0);
            sink.incr("x", 5);
            sink.observe("y", 2.0);
        }
        assert!(sink.report().is_none());
    }

    #[test]
    fn default_sink_is_noop() {
        assert!(!TelemetrySink::default().is_enabled());
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let sink = TelemetrySink::recording();
        {
            let _a = sink.span("a");
            {
                let _b = sink.span("b");
                let _c = sink.span("c");
            }
            let _d = sink.span("d");
        }
        let report = sink.report().unwrap();
        assert_eq!(report.spans.len(), 4);
        assert_eq!(report.max_depth(), 3);
        let by_name: BTreeMap<&str, &SpanRecord> =
            report.spans.iter().map(|s| (s.name.as_ref(), s)).collect();
        assert_eq!(by_name["a"].depth, 1);
        assert_eq!(by_name["b"].depth, 2);
        assert_eq!(by_name["c"].depth, 3);
        assert_eq!(by_name["d"].depth, 2);
        assert_eq!(by_name["c"].parent, Some(1));
        // all closed
        assert!(report.spans.iter().all(|s| s.real_seconds.is_some()));
    }

    #[test]
    fn counters_accumulate_and_journal_orders_events() {
        let sink = TelemetrySink::recording();
        sink.incr("cache.hit", 2);
        sink.incr("cache.hit", 3);
        sink.incr("cache.miss", 1);
        let report = sink.report().unwrap();
        assert_eq!(report.counter("cache.hit"), 5);
        assert_eq!(report.counter("cache.miss"), 1);
        assert_eq!(report.counter("never"), 0);
        assert_eq!(report.journal.len(), 3);
        match &report.journal[1] {
            Event::Counter {
                name, delta, total, ..
            } => {
                assert_eq!(name.as_ref(), "cache.hit");
                assert_eq!(*delta, 3);
                assert_eq!(*total, 5);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn observations_aggregate() {
        let sink = TelemetrySink::recording();
        sink.observe("queue_depth", 4.0);
        sink.observe("queue_depth", 1.0);
        sink.observe("queue_depth", 7.0);
        let report = sink.report().unwrap();
        let stats = report.observation("queue_depth").unwrap();
        assert_eq!(stats.count, 3);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 7.0);
        assert_eq!(stats.last, 7.0);
        assert!((stats.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn virtual_time_is_attached() {
        let sink = TelemetrySink::recording();
        {
            let span = sink.span("install");
            span.set_virtual(123.5);
        }
        let report = sink.report().unwrap();
        assert_eq!(report.spans[0].virtual_seconds, Some(123.5));
        assert!(report.render().contains("~123.500s"));
    }

    #[test]
    fn cloned_sinks_share_one_recorder() {
        let sink = TelemetrySink::recording();
        let clone = sink.clone();
        let _outer = sink.span("outer");
        {
            let _inner = clone.span("inner");
        }
        clone.incr("shared", 1);
        drop(_outer);
        let report = sink.report().unwrap();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[1].parent, Some(0));
        assert_eq!(report.counter("shared"), 1);
    }

    #[test]
    fn out_of_order_drop_closes_leaked_children() {
        let sink = TelemetrySink::recording();
        let outer = sink.span("outer");
        let _leaked = sink.span("leaked");
        drop(outer); // closes `leaked` too
        let report = sink.report().unwrap();
        assert!(report.spans.iter().all(|s| s.real_seconds.is_some()));
    }

    #[test]
    fn span_attrs_are_recorded_last_write_wins() {
        let sink = TelemetrySink::recording();
        {
            let span = sink.span("engine.task");
            span.set_attr("dispatch", 3);
            span.set_attr("worker", 1);
            span.set_attr("worker", 2);
        }
        let report = sink.report().unwrap();
        let span = &report.spans[0];
        assert_eq!(span.attr("dispatch"), Some("3"));
        assert_eq!(span.attr("worker"), Some("2"));
        assert_eq!(span.attrs.len(), 2);
        assert_eq!(span.attr("missing"), None);
    }

    #[test]
    fn volatile_attrs_live_in_their_own_list() {
        let sink = TelemetrySink::recording();
        {
            let span = sink.span("engine.task");
            span.set_attr("dispatch", 0);
            span.set_attr_volatile("slot.start", 1.5);
            span.set_attr_volatile("slot.start", 2.5);
        }
        let report = sink.report().unwrap();
        let span = &report.spans[0];
        assert_eq!(span.attr("dispatch"), Some("0"));
        assert_eq!(span.attr("slot.start"), None);
        assert_eq!(span.volatile_attr("slot.start"), Some("2.5"));
        assert_eq!(span.volatile_attrs.len(), 1);
    }

    #[test]
    fn volatile_observations_are_flagged() {
        let sink = TelemetrySink::recording();
        sink.observe("stable.metric", 1.0);
        sink.observe_volatile("install.makespan_seconds", 42.0);
        let report = sink.report().unwrap();
        assert!(!report.is_volatile_observation("stable.metric"));
        assert!(report.is_volatile_observation("install.makespan_seconds"));
        // volatile streams still aggregate and journal normally
        assert_eq!(
            report.observation("install.makespan_seconds").unwrap().last,
            42.0
        );
        assert_eq!(report.journal.len(), 2);
        let text = report.render();
        assert!(text.contains("install.makespan_seconds*"));
        assert!(text.contains("(* volatile"));
    }

    #[test]
    fn volatile_virtual_time_is_flagged() {
        let sink = TelemetrySink::recording();
        {
            let span = sink.span("engine.run");
            span.set_virtual_volatile(8.0);
        }
        {
            let span = sink.span("scheduler.drain");
            span.set_virtual(100.0);
        }
        let report = sink.report().unwrap();
        assert!(report.spans[0].virtual_volatile);
        assert_eq!(report.spans[0].virtual_seconds, Some(8.0));
        assert!(!report.spans[1].virtual_volatile);
    }

    #[test]
    fn render_sorts_counters_and_observations_by_name() {
        let sink = TelemetrySink::recording();
        // insert in deliberately non-sorted order
        sink.incr("zeta.count", 1);
        sink.incr("alpha.count", 1);
        sink.incr("mid.count", 1);
        sink.observe("z.obs", 1.0);
        sink.observe("a.obs", 1.0);
        let report = sink.report().unwrap();
        assert_eq!(
            report
                .sorted_counters()
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>(),
            vec!["alpha.count", "mid.count", "zeta.count"]
        );
        let text = report.render();
        let pos = |needle: &str| {
            text.find(needle)
                .unwrap_or_else(|| panic!("missing {needle}"))
        };
        assert!(pos("alpha.count") < pos("mid.count"));
        assert!(pos("mid.count") < pos("zeta.count"));
        assert!(pos("a.obs") < pos("z.obs"));
    }

    #[test]
    fn render_lists_sections() {
        let sink = TelemetrySink::recording();
        {
            let _root = sink.span("pipeline.setup");
            let _child = sink.span("concretize");
            sink.incr("concretizer.solves", 3);
            sink.observe("scheduler.queue_depth", 2.0);
        }
        let text = sink.report().unwrap().render();
        assert!(text.contains("pipeline.setup"));
        assert!(text.contains("  concretize"));
        assert!(text.contains("concretizer.solves"));
        assert!(text.contains("scheduler.queue_depth"));
        assert!(text.contains("journal events"));
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(HistogramStats::bucket_index(0), Some(0));
        assert_eq!(HistogramStats::bucket_index(1), Some(0));
        assert_eq!(HistogramStats::bucket_index(2), Some(1));
        assert_eq!(HistogramStats::bucket_index(3), Some(2));
        assert_eq!(HistogramStats::bucket_index(4), Some(2));
        assert_eq!(HistogramStats::bucket_index(5), Some(3));
        assert_eq!(HistogramStats::bucket_index(1 << 31), Some(31));
        assert_eq!(HistogramStats::bucket_index((1 << 31) + 1), None);
        assert_eq!(HistogramStats::bucket_index(u64::MAX), None);
        assert_eq!(HistogramStats::bucket_le(0), 1);
        assert_eq!(HistogramStats::bucket_le(5), 32);
    }

    #[test]
    fn histogram_records_and_aggregates() {
        let mut hist = HistogramStats::new();
        for value in [0, 1, 2, 3, 100, 5_000_000_000] {
            hist.record(value);
        }
        assert_eq!(hist.count, 6);
        assert_eq!(hist.sum, 5_000_000_106);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, 5_000_000_000);
        assert_eq!(hist.buckets[0], 2); // 0 and 1
        assert_eq!(hist.buckets[1], 1); // 2
        assert_eq!(hist.buckets[2], 1); // 3
        assert_eq!(hist.buckets[7], 1); // 100 <= 128
        assert_eq!(hist.overflow, 1);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds_clamped_to_max() {
        let mut hist = HistogramStats::new();
        for _ in 0..99 {
            hist.record(3); // bucket le=4
        }
        hist.record(1000); // bucket le=1024
        assert_eq!(hist.quantile(0.50), 4);
        assert_eq!(hist.quantile(0.99), 4);
        assert_eq!(hist.quantile(1.0), 1000); // le bound 1024 clamped to max
                                              // a single-value histogram reports that value at every quantile
        let mut single = HistogramStats::new();
        single.record(3);
        assert_eq!(single.quantile(0.5), 3);
        assert_eq!(HistogramStats::new().quantile(0.99), 0);
    }

    #[test]
    fn histogram_merge_is_elementwise_and_order_independent() {
        let mut a = HistogramStats::new();
        let mut b = HistogramStats::new();
        for v in [1, 5, 9] {
            a.record(v);
        }
        for v in [2, 6_000_000_000] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 5);
        assert_eq!(ab.min, 1);
        assert_eq!(ab.max, 6_000_000_000);
        assert_eq!(ab.overflow, 1);
        let mut empty = HistogramStats::new();
        empty.merge(&ab);
        assert_eq!(empty, ab);
    }

    #[test]
    fn record_hist_reaches_the_report_in_sorted_order() {
        let sink = TelemetrySink::recording();
        sink.record_hist("serve.stage.queue_wait", 7);
        sink.record_hist("serve.stage.execute", 900);
        sink.record_hist("serve.stage.queue_wait", 2);
        let report = sink.report().unwrap();
        let names: Vec<&str> = report.sorted_histograms().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["serve.stage.execute", "serve.stage.queue_wait"]);
        let wait = report.histogram("serve.stage.queue_wait").unwrap();
        assert_eq!(wait.count, 2);
        assert_eq!(wait.sum, 9);
        assert!(report.histogram("missing").is_none());
        // journal untouched: histogram samples aggregate in place
        assert!(report.journal.is_empty());
        let text = report.render();
        assert!(text.contains("telemetry: histograms"));
        assert!(text.contains("serve.stage.execute"));
        // the no-op sink ignores histogram records
        let noop = TelemetrySink::noop();
        noop.record_hist("x", 1);
        assert!(noop.report().is_none());
    }
}
