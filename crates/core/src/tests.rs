//! Tests for the Benchpark driver, systems, templates, metrics database,
//! Table 1, and the Figure 14 pipeline.

use crate::{
    available_experiments, experiment_template, render_table1, render_tree, scaling, table1,
    Benchpark, MetricsDatabase, SystemProfile,
};
use benchpark_cluster::BcastAlgorithm;
use benchpark_ramble::ExperimentStatus;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("benchpark-core-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Systems
// ---------------------------------------------------------------------------

#[test]
fn all_system_profiles_lower_to_site_configs() {
    for profile in SystemProfile::all() {
        let site = profile.site_config();
        assert!(
            !site.compilers.is_empty(),
            "{} must define compilers",
            profile.name
        );
        assert!(!site.default_target.is_empty());
        let machine = profile.machine();
        assert_eq!(machine.name, profile.name);
        // system default target must be runnable on the machine
        assert!(
            machine.can_run_binary_for(&site.default_target),
            "{}: binaries for {} must run on the machine",
            profile.name,
            site.default_target
        );
    }
}

#[test]
fn cts1_profile_matches_fig4() {
    let site = SystemProfile::cts1().site_config();
    assert_eq!(site.externals_for("mvapich2").len(), 1);
    assert_eq!(site.externals_for("intel-oneapi-mkl").len(), 1);
    assert!(!site.buildable("mvapich2"));
    assert_eq!(site.default_target, "skylake_avx512");
    assert_eq!(site.provider_prefs["mpi"], vec!["mvapich2".to_string()]);
}

// ---------------------------------------------------------------------------
// Templates
// ---------------------------------------------------------------------------

#[test]
fn all_templates_parse() {
    for (benchmark, variant) in available_experiments() {
        let text = experiment_template(benchmark, variant).unwrap();
        let config = benchpark_ramble::RambleConfig::from_yaml(&text)
            .unwrap_or_else(|e| panic!("{benchmark}/{variant}: {e}"));
        assert!(!config.applications.is_empty());
        assert!(!config.environments.is_empty());
    }
    assert!(experiment_template("nope", "x").is_none());
}

// ---------------------------------------------------------------------------
// The 9-step workflow (Figure 1c) and the §4 demonstration matrix
// ---------------------------------------------------------------------------

#[test]
fn golden_fig1c_nine_step_workflow() {
    let benchpark = Benchpark::new();
    let mut ws = benchpark
        .setup_workspace("saxpy", "openmp", "cts1", temp_dir("fig1c"))
        .unwrap();
    // Figure 10 expansion: 8 experiments
    assert_eq!(ws.setup_report.experiments.len(), 8);
    ws.run().unwrap();
    let analysis = ws.analyze(&benchpark).unwrap();
    assert_eq!(analysis.successes().count(), 8, "{}", analysis.render());

    // all nine steps logged
    assert_eq!(ws.log.steps.len(), 9);
    for n in 1..=9 {
        assert!(
            ws.log
                .steps
                .iter()
                .any(|s| s.starts_with(&format!("step {n}:"))),
            "missing step {n}: {:?}",
            ws.log.steps
        );
    }
    // the manifest captures the environment specs
    let manifest = ws.manifest();
    assert!(manifest.contains("saxpy@1.0.0 +openmp"), "{manifest}");
    assert!(manifest.contains("system: cts1"));
}

/// §4: both paper benchmarks on all three paper systems, matched to each
/// system's programming model.
#[test]
fn demo_matrix_benchmarks_times_systems() {
    let combos = [
        ("saxpy", "openmp", "cts1"),
        ("saxpy", "cuda", "ats2"),
        ("saxpy", "rocm", "ats4"),
        ("amg2023", "openmp", "cts1"),
        ("amg2023", "cuda", "ats2"),
        ("amg2023", "rocm", "ats4"),
    ];
    let benchpark = Benchpark::new();
    for (benchmark, variant, system) in combos {
        let mut ws = benchpark
            .setup_workspace(
                benchmark,
                variant,
                system,
                temp_dir(&format!("{benchmark}-{variant}-{system}")),
            )
            .unwrap_or_else(|e| panic!("{benchmark}/{variant} on {system}: {e}"));
        ws.run().unwrap();
        let analysis = ws.analyze(&benchpark).unwrap();
        assert!(
            analysis.successes().count() > 0,
            "{benchmark}/{variant} on {system}: no successes\n{}",
            analysis.render()
        );
        for result in &analysis.results {
            assert_eq!(
                result.status,
                ExperimentStatus::Success,
                "{benchmark}/{variant}@{system}: {}",
                result.experiment
            );
        }
    }
}

#[test]
fn scheduler_dialects_render_correctly() {
    let benchpark = Benchpark::new();
    // LSF on ats2
    let ws = benchpark
        .setup_workspace("saxpy", "cuda", "ats2", temp_dir("lsf"))
        .unwrap();
    let script = ws.workspace.script("saxpy_cuda_16384_1_4").unwrap();
    assert!(script.contains("#BSUB -nnodes 1"), "{script}");
    assert!(
        script.contains("jsrun -n 4 -a 1 saxpy -n 16384"),
        "{script}"
    );

    // Flux on ats4
    let ws = benchpark
        .setup_workspace("saxpy", "rocm", "ats4", temp_dir("flux"))
        .unwrap();
    let script = ws.workspace.script("saxpy_rocm_16384_1_4").unwrap();
    assert!(script.contains("#flux: -N 1"), "{script}");
    assert!(
        script.contains("flux run -N 1 -n 4 saxpy -n 16384"),
        "{script}"
    );
}

#[test]
fn unknown_inputs_rejected() {
    let benchpark = Benchpark::new();
    assert!(benchpark
        .setup_workspace("saxpy", "openmp", "summit", temp_dir("bad1"))
        .is_err());
    assert!(benchpark
        .setup_workspace("hpl", "openmp", "cts1", temp_dir("bad2"))
        .is_err());
}

// ---------------------------------------------------------------------------
// Metrics database
// ---------------------------------------------------------------------------

#[test]
fn metrics_database_roundtrip() {
    let benchpark = Benchpark::new();
    let db = MetricsDatabase::new();
    let mut ws = benchpark
        .setup_workspace("stream", "openmp", "cts1", temp_dir("metrics"))
        .unwrap();
    ws.run().unwrap();
    let analysis = ws.analyze(&benchpark).unwrap();
    db.record(
        "cts1",
        "stream",
        "openmp",
        &ws.manifest(),
        &analysis.results,
    );

    assert_eq!(db.len(), 4); // 4 thread counts
    assert_eq!(db.query(Some("stream"), Some("cts1")).len(), 4);
    assert_eq!(db.query(Some("stream"), Some("ats2")).len(), 0);
    assert_eq!(db.query(None, None).len(), 4);

    // triad bandwidth grows with threads until saturation
    let series = db.fom_series("stream", "cts1", "triad_bw", "n_threads");
    assert_eq!(series.len(), 4);
    assert!(series[0].1 < series[3].1, "{series:?}");

    // stored manifests allow functional reproduction
    let rec = &db.all()[0];
    assert!(rec.manifest.contains("stream@5.10"));
    assert!(db.render_dashboard().contains("stream"));
}

#[test]
fn metrics_database_tracks_time_sequence() {
    let db = MetricsDatabase::new();
    let result = benchpark_ramble::ExperimentResult {
        experiment: "e".to_string(),
        application: "saxpy".to_string(),
        workload: "problem".to_string(),
        status: ExperimentStatus::Success,
        foms: Vec::new(),
        criteria: Vec::new(),
        variables: Default::default(),
        profile: Vec::new(),
        cached: false,
    };
    let s1 = db.record(
        "cts1",
        "saxpy",
        "openmp",
        "m",
        std::slice::from_ref(&result),
    );
    let s2 = db.record("cts1", "saxpy", "openmp", "m", &[result]);
    assert!(s2 > s1, "sequence must advance for tracking over time");
}

// ---------------------------------------------------------------------------
// Table 1 and the tree (Figures 1a)
// ---------------------------------------------------------------------------

#[test]
fn golden_table1_structure() {
    let rows = table1();
    assert_eq!(rows.len(), 6);
    let components: Vec<&str> = rows.iter().map(|r| r.component).collect();
    assert_eq!(
        components,
        vec![
            "Source code",
            "Build instructions",
            "Benchmark input",
            "Run instructions",
            "Experiment evaluation",
            "CI testing"
        ]
    );
    // paper cells reproduced
    assert_eq!(rows[0].benchmark_specific, "package.py");
    assert_eq!(rows[2].system_specific, "variables.yaml");
    assert_eq!(rows[4].experiment_specific, "ramble.yaml: success_criteria");
    assert_eq!(rows[5].benchmark_specific, ".gitlab-ci.yml");
    // every row names its implementing modules
    for row in &rows {
        assert!(
            row.implemented_by.contains("benchpark-"),
            "row {}",
            row.number
        );
    }
    let rendered = render_table1();
    assert!(rendered.contains("Component"));
    assert!(rendered.contains("ramble.yaml: success_criteria"));
}

#[test]
fn tree_and_skeleton() {
    let tree = render_tree();
    assert!(tree.contains("configs"));
    assert!(tree.contains("cts1"));
    assert!(tree.contains("experiments"));
    assert!(tree.contains("saxpy"));
    assert!(tree.contains("ramble.yaml"));

    let dir = temp_dir("skeleton");
    crate::write_skeleton(&dir).unwrap();
    assert!(dir.join("configs/cts1/packages.yaml").is_file());
    assert!(dir.join("experiments/saxpy/openmp/ramble.yaml").is_file());
    assert!(dir
        .join("experiments/amg2023/rocm/execute_experiment.tpl")
        .is_file());
}

// ---------------------------------------------------------------------------
// Figure 14
// ---------------------------------------------------------------------------

/// The headline: on CTS (linear broadcast), the fitted Extra-P model is
/// `c + a·p^(1)` — the same functional form as the paper's
/// `-0.636 + 0.0466·p¹`.
#[test]
fn golden_fig14_extrap_model_on_cts() {
    let db = MetricsDatabase::new();
    let study = scaling::bcast_scaling_study("cts1", None, temp_dir("fig14"), &db).unwrap();
    assert_eq!(study.points.len(), 8);
    assert_eq!(study.algorithm, BcastAlgorithm::Linear);
    assert_eq!(
        (study.model.i, study.model.j),
        (1.0, 0),
        "expected linear model, got {}",
        study.model
    );
    assert!(study.model.a > 0.0);
    assert!(study.model.r_squared > 0.99, "{}", study.model.r_squared);
    // max nprocs matches the paper's x-axis reach (3456 on the far right)
    assert_eq!(study.points.last().unwrap().0, 3456.0);
    let rendered = study.render();
    assert!(rendered.contains("p^(1)"), "{rendered}");
    // results recorded into the metrics database
    assert_eq!(db.query(Some("osu-bcast"), Some("cts1")).len(), 8);
}

/// Ablation A4: a binomial-tree broadcast fits a logarithmic model instead.
#[test]
fn fig14_ablation_tree_bcast_is_logarithmic() {
    let db = MetricsDatabase::new();
    let study = scaling::bcast_scaling_study(
        "cts1",
        Some(BcastAlgorithm::BinomialTree),
        temp_dir("fig14-tree"),
        &db,
    )
    .unwrap();
    assert_eq!(
        (study.model.i, study.model.j),
        (0.0, 1),
        "expected log model, got {}",
        study.model
    );
    // and the tree broadcast is far faster at scale than linear
    let linear = scaling::bcast_scaling_study(
        "cts1",
        Some(BcastAlgorithm::Linear),
        temp_dir("fig14-lin"),
        &db,
    )
    .unwrap();
    let p_max = 3456.0;
    assert!(study.model.predict(p_max) * 10.0 < linear.model.predict(p_max));
}

// ---------------------------------------------------------------------------
// Pipeline telemetry (spans, counters, event journal)
// ---------------------------------------------------------------------------

/// A full setup → run → analyze pass through a recording sink produces a
/// deep span tree, cache hit *and* miss counters (workspace setup builds
/// populate the site cache; the cluster-side install in step 7 fetches from
/// it), and scheduler utilization samples.
#[test]
fn telemetry_traces_the_full_pipeline() {
    let sink = benchpark_telemetry::TelemetrySink::recording();
    let benchpark = Benchpark::new().with_telemetry(sink.clone());
    let mut ws = benchpark
        .setup_workspace("saxpy", "openmp", "cts1", temp_dir("telemetry"))
        .unwrap();
    ws.run().unwrap();
    ws.analyze(&benchpark).unwrap();

    let report = sink.report().unwrap();
    assert!(
        report.max_depth() >= 4,
        "span tree too shallow:\n{}",
        report.render()
    );
    assert!(
        report.counter("cache.miss") > 0,
        "setup must build something"
    );
    assert!(
        report.counter("cache.hit") > 0,
        "cluster-side install must fetch from the site cache:\n{}",
        report.render()
    );
    assert!(report.counter("concretizer.solves") > 0);
    assert!(report.counter("scheduler.jobs_completed") > 0);
    let util = report.observation("scheduler.utilization").unwrap();
    assert!(util.count > 0 && util.last > 0.0);
    assert!(report.observation("install.worker_utilization").is_some());

    // the named top-level phases all appear as spans
    for phase in [
        "pipeline.setup",
        "workspace.setup",
        "pipeline.run",
        "pipeline.analyze",
    ] {
        assert!(
            report.spans.iter().any(|s| s.name.as_ref() == phase),
            "missing span `{phase}`"
        );
    }
    // journal replays in order: first event is the setup span opening
    assert!(matches!(
        report.journal.first(),
        Some(benchpark_telemetry::Event::SpanStart { name, .. }) if name.as_ref() == "pipeline.setup"
    ));
}

/// Telemetry reports aggregate into the metrics database alongside FOMs.
#[test]
fn telemetry_report_lands_in_metrics_database() {
    let sink = benchpark_telemetry::TelemetrySink::recording();
    {
        let _span = sink.span("pipeline.setup");
        sink.incr("cache.hit", 4);
        sink.observe("install.worker_utilization", 0.75);
    }
    let report = sink.report().unwrap();
    let db = MetricsDatabase::new();
    db.record_telemetry("cts1", &report);
    let stored = db.query(Some("benchpark-pipeline"), Some("cts1"));
    assert_eq!(stored.len(), 1);
    let foms = &stored[0].result.foms;
    let hit = foms.iter().find(|f| f.name == "cache.hit").unwrap();
    assert_eq!(hit.value, "4");
    assert_eq!(hit.units, "count");
    let util = foms
        .iter()
        .find(|f| f.name == "install.worker_utilization")
        .unwrap();
    assert_eq!(util.value, "0.750000");
    // the span tree is stored as the profile
    assert!(stored[0]
        .result
        .profile
        .iter()
        .any(|(name, _)| name == "pipeline.setup"));
}

/// The disabled sink is the default everywhere and records nothing, and the
/// instrumented pipeline behaves identically with it.
#[test]
fn noop_telemetry_changes_nothing() {
    let benchpark = Benchpark::new(); // default: no-op sink
    let mut ws = benchpark
        .setup_workspace("saxpy", "openmp", "cts1", temp_dir("noop-telemetry"))
        .unwrap();
    ws.run().unwrap();
    let analysis = ws.analyze(&benchpark).unwrap();
    assert_eq!(analysis.successes().count(), 8);
    assert!(benchpark.telemetry().report().is_none());
}
