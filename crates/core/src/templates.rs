//! Experiment templates: the `experiments/<benchmark>/<variant>/ramble.yaml`
//! entries of Figure 1a (lines 20–40).
//!
//! Each template is benchmark + experiment specific and references the
//! *system's* named definitions (`default-compiler`, `default-mpi`,
//! Figure 9) rather than naming concrete compilers — that reference
//! indirection is exactly how Benchpark orthogonalizes the Table 1 columns.

/// The `(benchmark, variant)` pairs shipped in the repository.
pub fn available_experiments() -> Vec<(&'static str, &'static str)> {
    vec![
        ("saxpy", "openmp"),
        ("saxpy", "cuda"),
        ("saxpy", "rocm"),
        ("amg2023", "openmp"),
        ("amg2023", "cuda"),
        ("amg2023", "rocm"),
        ("stream", "openmp"),
        ("osu-bcast", "scaling"),
        ("hpl", "mpi"),
        ("lulesh", "openmp"),
    ]
}

/// Returns the `ramble.yaml` text for `experiments/<benchmark>/<variant>/`,
/// or `None` for unknown combinations.
pub fn experiment_template(benchmark: &str, variant: &str) -> Option<String> {
    let text = match (benchmark, variant) {
        // Figure 10, verbatim structure (minus the include paths, which the
        // driver resolves by merging the system files directly).
        ("saxpy", "openmp") => SAXPY_OPENMP.to_string(),
        ("saxpy", "cuda") => saxpy_gpu("cuda"),
        ("saxpy", "rocm") => saxpy_gpu("rocm"),
        ("amg2023", "openmp") => amg("openmp", "+openmp"),
        ("amg2023", "cuda") => amg("cuda", "+cuda"),
        ("amg2023", "rocm") => amg("rocm", "+rocm"),
        ("stream", "openmp") => STREAM.to_string(),
        ("hpl", "mpi") => HPL.to_string(),
        ("osu-bcast", "scaling") => OSU_BCAST_SCALING.to_string(),
        ("lulesh", "openmp") => LULESH.to_string(),
        _ => return None,
    };
    Some(text)
}

const SAXPY_OPENMP: &str = r#"ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    saxpy:
      workloads:
        problem:
          env_vars:
            set:
              OMP_NUM_THREADS: '{n_threads}'
          variables:
            n_ranks: '8'
            batch_time: '120'
          experiments:
            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:
              variables:
                processes_per_node: ['8', '4']
                n_nodes: ['1', '2']
                n_threads: ['2', '4']
                n: ['512', '1024']
              matrices:
              - size_threads:
                - n
                - n_threads
  spack:
    packages:
      saxpy:
        spack_spec: saxpy@1.0.0 +openmp ^cmake@3.23.1
        compiler: default-compiler
    environments:
      saxpy:
        packages:
        - default-mpi
        - saxpy
"#;

fn saxpy_gpu(model: &str) -> String {
    format!(
        r#"ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    saxpy:
      workloads:
        problem:
          variables:
            n_ranks: '4'
            batch_time: '60'
          experiments:
            saxpy_{model}_{{n}}_{{n_nodes}}_{{n_ranks}}:
              variables:
                n_nodes: '1'
                n: ['16384', '65536']
  spack:
    packages:
      saxpy:
        spack_spec: saxpy@1.0.0 ~openmp+{model} ^cmake@3.23.1
        compiler: default-compiler
    environments:
      saxpy:
        packages:
        - default-mpi
        - saxpy
"#
    )
}

fn amg(variant_name: &str, variant: &str) -> String {
    format!(
        r#"ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    amg2023:
      workloads:
        problem1:
          variables:
            batch_time: '60'
            px: '2'
            py: '2'
            pz: '2'
            n_ranks: '8'
            n_nodes: '1'
          experiments:
            amg2023_{variant_name}_problem1_{{nx}}_{{ny}}_{{nz}}:
              variables:
                nx: ['64', '128']
                ny: ['64', '128']
                nz: ['64', '128']
  spack:
    packages:
      amg2023:
        spack_spec: amg2023@1.0 {variant} ^hypre@2.25.0
        compiler: default-compiler
    environments:
      amg2023:
        packages:
        - default-mpi
        - amg2023
"#
    )
}

const STREAM: &str = r#"ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    stream:
      workloads:
        standard:
          env_vars:
            set:
              OMP_NUM_THREADS: '{n_threads}'
          variables:
            batch_time: '20'
            n_nodes: '1'
            n_ranks: '1'
          experiments:
            stream_{n_threads}_{array_size}:
              variables:
                n_threads: ['4', '9', '18', '36']
                array_size: '80000000'
  spack:
    packages:
      stream:
        spack_spec: stream@5.10 +openmp
        compiler: default-compiler
    environments:
      stream:
        packages:
        - stream
"#;

/// The scaling study behind Figure 14: broadcast latency at increasing rank
/// counts on one system.
const OSU_BCAST_SCALING: &str = r#"ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    osu-bcast:
      workloads:
        bcast:
          variables:
            batch_time: '30'
            processes_per_node: '36'
            message_size: '8'
            iterations: '1000'
          experiments:
            bcast_{n_ranks}:
              variables:
                n_nodes: ['1', '2', '4', '8', '15', '29', '57', '96']
  spack:
    packages:
      osu-micro-benchmarks:
        spack_spec: osu-micro-benchmarks@5.9
        compiler: default-compiler
    environments:
      osu-bcast:
        packages:
        - default-mpi
        - osu-micro-benchmarks
"#;

const HPL: &str = r#"ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    hpl:
      workloads:
        standard:
          variables:
            batch_time: '240'
            processes_per_node: '16'
            block_size: '192'
          experiments:
            hpl_{problem_size}_{n_nodes}_{n_ranks}:
              variables:
                n_nodes: ['1', '4']
                problem_size: ['20000', '40000']
  spack:
    packages:
      hpl:
        spack_spec: hpl@2.3 ^lapack
        compiler: default-compiler
    environments:
      hpl:
        packages:
        - default-mpi
        - hpl
"#;

const LULESH: &str = r#"ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  applications:
    lulesh:
      workloads:
        standard:
          env_vars:
            set:
              OMP_NUM_THREADS: '{n_threads}'
          variables:
            batch_time: '60'
            n_threads: '4'
          experiments:
            lulesh_{size}_{n_nodes}_{n_ranks}:
              variables:
                processes_per_node: ['8', '8']
                n_nodes: ['1', '2']
                size: '30'
                iterations: '100'
  spack:
    packages:
      lulesh:
        spack_spec: lulesh@2.0.3 +openmp+mpi
        compiler: default-compiler
    environments:
      lulesh:
        packages:
        - default-mpi
        - lulesh
"#;
