//! Tests for the bench trajectory: `BENCH_<date>.json` round-trips, the
//! schema gate, and the regression verdict edge cases the methodology in
//! `docs/perf/methodology.md` leans on (first run, zero-variance baseline,
//! improvement direction per unit, the two-sigma noise band).

use crate::benchjson::{
    calibration_speed_factor, compare_bench_reports, compare_bench_reports_calibrated,
    date_from_unix_days, format_ns,
};
use crate::regression::{baseline_verdict, lower_is_better_units};
use crate::{BenchEnv, BenchRecord, BenchReport, BENCH_SCHEMA, BENCH_SUITE};

fn record(name: &str, median_ns: f64, units: &str) -> BenchRecord {
    BenchRecord {
        name: name.to_string(),
        group: name.split('.').next().unwrap_or("misc").to_string(),
        iters: 4,
        samples: 7,
        median_ns,
        mean_ns: median_ns * 1.01,
        std_ns: median_ns * 0.02,
        units: units.to_string(),
    }
}

fn report(created: &str, results: Vec<BenchRecord>) -> BenchReport {
    BenchReport {
        schema: BENCH_SCHEMA,
        suite: BENCH_SUITE.to_string(),
        created: created.to_string(),
        env: BenchEnv {
            os: "linux".to_string(),
            arch: "x86_64".to_string(),
            cpus: 8,
            version: "0.1.0".to_string(),
            profile: "release".to_string(),
        },
        results,
    }
}

// ---------------------------------------------------------------------------
// Round-trip and determinism
// ---------------------------------------------------------------------------

/// Emission sorts results by name, parsing reproduces every field exactly,
/// and re-emitting the parsed report yields the identical byte string — the
/// property that makes committed trajectory files reviewable.
#[test]
fn bench_report_round_trips_deterministically() {
    // deliberately unsorted input
    let original = report(
        "2026-08-08",
        vec![
            record("yamlite.parse.manifest1500", 16_411_380.5, "ns/iter"),
            record("concretize.single", 29_426.5, "ns/iter"),
            record("engine.plan.lpt.100k", 30_144_594.0, "ns/iter"),
        ],
    );
    let json = original.to_json();
    let parsed = BenchReport::parse(&json).expect("round-trip parses");

    assert_eq!(parsed.schema, BENCH_SCHEMA);
    assert_eq!(parsed.suite, BENCH_SUITE);
    assert_eq!(parsed.created, "2026-08-08");
    assert_eq!(parsed.env, original.env);
    assert_eq!(parsed.file_name(), "BENCH_2026-08-08.json");
    // parse sorts, emission sorted: names come back ordered
    let names: Vec<&str> = parsed.results.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "concretize.single",
            "engine.plan.lpt.100k",
            "yamlite.parse.manifest1500"
        ]
    );
    assert_eq!(
        parsed.result("concretize.single").unwrap().median_ns,
        29_426.5
    );
    // emit(parse(emit(x))) == emit(x): byte-identical
    assert_eq!(parsed.to_json(), json);
}

/// One result per line, so trajectory commits diff bench-by-bench.
#[test]
fn bench_report_emits_one_result_per_line() {
    let r = report(
        "2026-08-08",
        vec![
            record("a.one", 10.0, "ns/iter"),
            record("b.two", 20.0, "ns/iter"),
        ],
    );
    let json = r.to_json();
    let result_lines = json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"name\""))
        .count();
    assert_eq!(result_lines, 2);
}

// ---------------------------------------------------------------------------
// The schema gate
// ---------------------------------------------------------------------------

/// Unknown schema versions are a parse error, never a misread.
#[test]
fn bench_report_rejects_unknown_schema() {
    let mut r = report("2026-08-08", vec![record("a.one", 10.0, "ns/iter")]);
    r.schema = BENCH_SCHEMA + 1;
    let err = BenchReport::parse(&r.to_json()).unwrap_err();
    assert!(err.contains("unknown bench schema"), "got: {err}");
}

/// Every required field is enforced: dropping one fails with a message
/// naming it.
#[test]
fn bench_report_rejects_missing_fields() {
    let good = report("2026-08-08", vec![record("a.one", 10.0, "ns/iter")]).to_json();
    for (needle, expect) in [
        ("\"suite\": \"hotpath\",", "`suite`"),
        ("\"created\": \"2026-08-08\",", "`created`"),
        ("\"median_ns\": 10.0,", "`median_ns`"),
        (", \"units\": \"ns/iter\"", "`units`"),
    ] {
        assert!(good.contains(needle), "fixture drifted: {needle}");
        let broken = good.replacen(needle, "", 1);
        let err = BenchReport::parse(&broken).unwrap_err();
        assert!(err.contains(expect), "dropping {needle:?} gave: {err}");
    }
    // negative statistics are rejected, not silently absorbed
    let negative = good.replacen("\"median_ns\": 10.0,", "\"median_ns\": -10.0,", 1);
    assert!(BenchReport::parse(&negative).is_err());
    // malformed JSON is an error, not a panic
    assert!(BenchReport::parse("{\"schema\": 1,").is_err());
}

// ---------------------------------------------------------------------------
// Trajectory comparison edge cases
// ---------------------------------------------------------------------------

/// A first run has no baseline: nothing to compare, nothing flagged.
#[test]
fn first_run_yields_no_verdicts() {
    let only = report("2026-08-08", vec![record("a.one", 100.0, "ns/iter")]);
    assert!(compare_bench_reports(&[&only], 0.05).is_empty());
    assert!(compare_bench_reports(&[], 0.05).is_empty());
}

/// A bench that appears only in the latest report (new or renamed/resized
/// workload) is skipped — fresh workloads have no trajectory yet.
#[test]
fn fresh_bench_is_skipped() {
    let old = report("2026-08-07", vec![record("a.one", 100.0, "ns/iter")]);
    let new = report(
        "2026-08-08",
        vec![
            record("a.one", 100.0, "ns/iter"),
            record("b.new.2k", 55.0, "ns/iter"),
        ],
    );
    let verdicts = compare_bench_reports(&[&old, &new], 0.05);
    assert_eq!(verdicts.len(), 1);
    assert_eq!(verdicts[0].name, "a.one");
    assert_eq!(verdicts[0].history_len, 1);
}

/// With a single prior report the baseline deviation is zero, so the noise
/// band never suppresses: the threshold alone governs in both directions.
#[test]
fn zero_variance_baseline_is_governed_by_threshold_alone() {
    let old = report("2026-08-07", vec![record("a.one", 100.0, "ns/iter")]);

    // 20% slower in a lower-is-better unit: regression at 10%
    let slow = report("2026-08-08", vec![record("a.one", 120.0, "ns/iter")]);
    let v = &compare_bench_reports(&[&old, &slow], 0.10)[0];
    assert!(v.regressed && !v.improved);
    assert!(v.change < 0.0, "slower must fold to negative change");

    // 5% slower: inside the 10% threshold, ok
    let mild = report("2026-08-08", vec![record("a.one", 105.0, "ns/iter")]);
    let v = &compare_bench_reports(&[&old, &mild], 0.10)[0];
    assert!(!v.regressed && !v.improved);

    // 20% faster: improvement at 10%
    let fast = report("2026-08-08", vec![record("a.one", 80.0, "ns/iter")]);
    let v = &compare_bench_reports(&[&old, &fast], 0.10)[0];
    assert!(v.improved && !v.regressed);
    assert!(v.change > 0.0, "faster must fold to positive change");
}

/// The improvement direction comes from the units: `ns/iter` improves
/// downward, a rate like `GB/s` improves upward. The same latest-vs-baseline
/// numbers produce opposite verdicts.
#[test]
fn direction_follows_units() {
    let old_cost = report("2026-08-07", vec![record("a.one", 100.0, "ns/iter")]);
    let new_cost = report("2026-08-08", vec![record("a.one", 50.0, "ns/iter")]);
    let v = &compare_bench_reports(&[&old_cost, &new_cost], 0.10)[0];
    assert!(v.improved, "halving a duration is an improvement");

    let old_rate = report("2026-08-07", vec![record("a.one", 100.0, "GB/s")]);
    let new_rate = report("2026-08-08", vec![record("a.one", 50.0, "GB/s")]);
    let v = &compare_bench_reports(&[&old_rate, &new_rate], 0.10)[0];
    assert!(v.regressed, "halving a rate is a regression");
}

/// A noisy baseline widens the band: a change beyond the threshold but
/// inside two baseline standard deviations is not flagged.
#[test]
fn noise_band_suppresses_verdicts_within_two_sigma() {
    // baseline medians 100 and 140: mean 120, population std 20
    let a = report("2026-08-06", vec![record("a.one", 100.0, "ns/iter")]);
    let b = report("2026-08-07", vec![record("a.one", 140.0, "ns/iter")]);
    // 12.5% over the mean — beyond a 5% threshold, but |135-120| < 2*20
    let latest = report("2026-08-08", vec![record("a.one", 135.0, "ns/iter")]);
    let v = &compare_bench_reports(&[&a, &b, &latest], 0.05)[0];
    assert!(!v.regressed && !v.improved);
    assert_eq!(v.history_len, 2);
    assert_eq!(v.baseline_ns, 120.0);
    assert_eq!(v.baseline_std_ns, 20.0);

    // far outside the band: |200-120| > 40 and 66% over — flagged
    let bad = report("2026-08-08", vec![record("a.one", 200.0, "ns/iter")]);
    let v = &compare_bench_reports(&[&a, &b, &bad], 0.05)[0];
    assert!(v.regressed);
    // and the render names the verdict
    assert!(v.render().contains("REGRESSION"), "got: {}", v.render());
}

/// The shared statistic itself: sign folding and the noise band, as
/// documented on [`baseline_verdict`].
#[test]
fn baseline_verdict_folds_direction() {
    // lower-is-better (higher_is_better = false): latest above mean = worse
    let v = baseline_verdict(&[100.0], 150.0, false, 0.10);
    assert!(v.change < 0.0 && v.regressed && v.beyond_noise);
    let v = baseline_verdict(&[100.0], 60.0, false, 0.10);
    assert!(v.change > 0.0 && !v.regressed);
    // higher-is-better: latest above mean = better
    let v = baseline_verdict(&[100.0], 150.0, true, 0.10);
    assert!(v.change > 0.0 && !v.regressed);
}

/// Units heuristics the trajectory relies on.
#[test]
fn bench_units_directions() {
    assert!(lower_is_better_units("ns/iter"));
    assert!(lower_is_better_units("ms/op"));
    assert!(lower_is_better_units("seconds"));
    assert!(!lower_is_better_units("GB/s"));
    assert!(!lower_is_better_units("iter/s"));
    assert!(!lower_is_better_units("count"));
}

// ---------------------------------------------------------------------------
// Speed calibration
// ---------------------------------------------------------------------------

/// A uniformly 2× slower machine flags everything absolutely but nothing
/// calibrated — the shift cancels against the suite's own geometric mean,
/// and the speed factor reports it instead.
#[test]
fn calibration_cancels_uniform_machine_shifts() {
    let old = report(
        "2026-08-07",
        vec![
            record("a.one", 100.0, "ns/iter"),
            record("b.two", 1_000.0, "ns/iter"),
            record("c.three", 10_000.0, "ns/iter"),
        ],
    );
    let slow_machine = report(
        "2026-08-08",
        vec![
            record("a.one", 200.0, "ns/iter"),
            record("b.two", 2_000.0, "ns/iter"),
            record("c.three", 20_000.0, "ns/iter"),
        ],
    );

    let absolute = compare_bench_reports(&[&old, &slow_machine], 0.10);
    assert_eq!(absolute.iter().filter(|v| v.regressed).count(), 3);

    let calibrated = compare_bench_reports_calibrated(&[&old, &slow_machine], 0.10);
    assert_eq!(calibrated.len(), 3);
    assert!(calibrated.iter().all(|v| !v.regressed && !v.improved));
    for v in &calibrated {
        assert!(v.change.abs() < 1e-9, "{}: {}", v.name, v.change);
    }

    let factor = calibration_speed_factor(&[&old, &slow_machine]).unwrap();
    assert!((factor - 0.5).abs() < 1e-9, "half speed, got {factor}");
}

/// One bench regressing against an otherwise steady suite survives
/// calibration: the basis barely moves, the outlier stands out.
#[test]
fn calibration_still_flags_a_relative_regression() {
    let old = report(
        "2026-08-07",
        vec![
            record("a.one", 100.0, "ns/iter"),
            record("b.two", 1_000.0, "ns/iter"),
            record("c.three", 10_000.0, "ns/iter"),
            record("d.four", 100_000.0, "ns/iter"),
        ],
    );
    let mut results = old.results.clone();
    results[0].median_ns = 200.0; // a.one doubled, rest steady
    let latest = report("2026-08-08", results);

    let calibrated = compare_bench_reports_calibrated(&[&old, &latest], 0.10);
    let a = calibrated.iter().find(|v| v.name == "a.one").unwrap();
    assert!(
        a.regressed,
        "doubled bench must flag: {:+.1}%",
        a.change * 100.0
    );
    for v in calibrated.iter().filter(|v| v.name != "a.one") {
        assert!(!v.regressed, "{} paid for the basis shift", v.name);
    }
    // the factor reflects only the outlier's pull on the geometric mean
    let factor = calibration_speed_factor(&[&old, &latest]).unwrap();
    assert!(factor < 1.0 && factor > 0.8, "got {factor}");
}

/// With fewer than two shared benches there is no basis to calibrate
/// against: the comparison falls back to raw medians rather than gating
/// nothing.
#[test]
fn calibration_falls_back_without_a_shared_basis() {
    let old = report("2026-08-07", vec![record("a.one", 100.0, "ns/iter")]);
    let slow = report("2026-08-08", vec![record("a.one", 150.0, "ns/iter")]);
    assert!(calibration_speed_factor(&[&old, &slow]).is_none());
    let verdicts = compare_bench_reports_calibrated(&[&old, &slow], 0.10);
    assert_eq!(verdicts.len(), 1);
    assert!(verdicts[0].regressed, "raw fallback must still gate");
}

// ---------------------------------------------------------------------------
// Formatting helpers
// ---------------------------------------------------------------------------

#[test]
fn format_ns_scales_units() {
    assert_eq!(format_ns(512.0), "512.0 ns");
    assert_eq!(format_ns(29_426.5), "29.427 µs");
    assert_eq!(format_ns(16_411_380.5), "16.411 ms");
    assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
}

#[test]
fn date_from_unix_days_is_civil() {
    assert_eq!(date_from_unix_days(0), "1970-01-01");
    assert_eq!(date_from_unix_days(20_673), "2026-08-08");
    assert_eq!(date_from_unix_days(19_054), "2022-03-03");
}
