//! Tests for the observability layer: the durable run ledger, regression
//! edge cases, the units heuristic, the whole-database scan, and the
//! failed-experiment gate.

use crate::{
    append_run, detect_regression, gate_failed_experiments, load_ledger, lower_is_better_units,
    scan_regressions, MetricsDatabase, RequestTrace, RunRecord,
};
use benchpark_ramble::{ExperimentResult, ExperimentStatus, FomValue};
use benchpark_telemetry::TelemetrySink;

fn temp_ledger(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("benchpark-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("ledger.jsonl")
}

fn result(fom: &str, value: f64, units: &str, status: ExperimentStatus) -> ExperimentResult {
    ExperimentResult {
        experiment: "exp_1".to_string(),
        application: "stream".to_string(),
        workload: "stream".to_string(),
        status,
        foms: vec![FomValue {
            name: fom.to_string(),
            value: value.to_string(),
            units: units.to_string(),
            context: Default::default(),
        }],
        criteria: vec![("found_fom".to_string(), true)],
        variables: [("n_threads".to_string(), "8".to_string())].into(),
        profile: vec![("kernel".to_string(), 1.5)],
        cached: false,
    }
}

fn record(value: f64) -> RunRecord {
    RunRecord::from_run(
        "cts1",
        "stream",
        "openmp",
        "manifest: stream/openmp on cts1",
        &[result("triad_bw", value, "MB/s", ExperimentStatus::Success)],
        None,
    )
}

// ---------------------------------------------------------------------------
// Ledger persistence
// ---------------------------------------------------------------------------

#[test]
fn ledger_record_round_trips_through_json() {
    let sink = TelemetrySink::recording();
    sink.incr("cache.hit", 4);
    sink.observe("queue.depth", 2.0);
    sink.observe_volatile("install.makespan_seconds", 9.0);
    let report = sink.report().unwrap();
    let mut original = RunRecord::from_run(
        "ats2",
        "amg2023",
        "cuda",
        "manifest text\nwith two lines",
        &[result("fom_a", 42.5, "GB/s", ExperimentStatus::Success)],
        Some(&report),
    );
    original.sequence = 7;
    let parsed = RunRecord::parse_line(&original.to_json_line()).expect("round trip");
    assert_eq!(parsed.sequence, 7);
    assert_eq!(parsed.system, "ats2");
    assert_eq!(parsed.benchmark, "amg2023");
    assert_eq!(parsed.variant, "cuda");
    assert_eq!(parsed.manifest, original.manifest);
    assert_eq!(parsed.counters, original.counters);
    assert_eq!(parsed.counter("cache.hit"), 4);
    // volatile observation stream excluded by construction
    assert!(original
        .observations
        .iter()
        .all(|(n, _)| n == "queue.depth"));
    assert_eq!(parsed.observations, original.observations);
    let r = &parsed.results[0];
    assert_eq!(r.status, ExperimentStatus::Success);
    assert_eq!(r.foms[0].name, "fom_a");
    assert_eq!(r.foms[0].value, "42.5");
    assert_eq!(r.criteria, vec![("found_fom".to_string(), true)]);
    assert_eq!(r.variables["n_threads"], "8");
    assert_eq!(r.profile, vec![("kernel".to_string(), 1.5)]);
    // deterministic serialization: emitting the parsed record is byte-identical
    assert_eq!(parsed.to_json_line(), original.to_json_line());
}

#[test]
fn ledger_append_stamps_consecutive_sequences() {
    let path = temp_ledger("append");
    for expected in 1..=3u64 {
        let mut rec = record(100.0);
        let got = append_run(&path, &mut rec).expect("append");
        assert_eq!(got, expected);
        assert_eq!(rec.sequence, expected);
    }
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 3);
}

#[test]
fn ledger_load_skips_corrupt_and_unknown_schema_lines() {
    let path = temp_ledger("corrupt");
    let mut first = record(100.0);
    append_run(&path, &mut first).unwrap();
    // a truncated append and a future schema version land between two
    // good records
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    writeln!(file, "{{\"schema\":1,\"sequence\":99,\"trunc").unwrap();
    writeln!(file, "{{\"schema\":999,\"sequence\":2}}").unwrap();
    drop(file);
    let mut last = record(90.0);
    append_run(&path, &mut last).unwrap();

    let sink = TelemetrySink::recording();
    let load = load_ledger(&path, &sink).expect("load survives corruption");
    assert_eq!(load.runs.len(), 2);
    assert_eq!(load.skipped, 2);
    assert_eq!(sink.report().unwrap().counter("obs.ledger.skipped"), 2);
    // survivors are re-stamped with consecutive sequences
    assert_eq!(load.runs[0].sequence, 1);
    assert_eq!(load.runs[1].sequence, 2);
}

#[test]
fn ledger_replay_feeds_regression_scan() {
    let path = temp_ledger("replay");
    for value in [100.0, 100.0, 100.0, 50.0] {
        let mut rec = record(value);
        append_run(&path, &mut rec).unwrap();
    }
    let load = load_ledger(&path, &TelemetrySink::noop()).unwrap();
    let db = load.to_database();
    let reports = scan_regressions(&db, 0.10);
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(
        (report.benchmark.as_str(), report.fom.as_str()),
        ("stream", "triad_bw")
    );
    assert!(report.regressed, "{}", report.render());
}

// ---------------------------------------------------------------------------
// Regression edge cases
// ---------------------------------------------------------------------------

#[test]
fn regression_zero_baseline_std_flags_any_real_drop() {
    // byte-identical baseline runs have zero variance; the 2-sigma noise
    // band degenerates to "any difference", and the threshold alone decides
    let db = MetricsDatabase::new();
    for _ in 0..3 {
        db.record(
            "cts1",
            "stream",
            "openmp",
            "m",
            &[result("triad_bw", 100.0, "MB/s", ExperimentStatus::Success)],
        );
    }
    db.record(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 88.0, "MB/s", ExperimentStatus::Success)],
    );
    let report = detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10).unwrap();
    assert_eq!(report.baseline_std, 0.0);
    assert!(report.regressed, "{}", report.render());
}

#[test]
fn regression_quiet_on_identical_reruns() {
    let db = MetricsDatabase::new();
    for _ in 0..4 {
        db.record(
            "cts1",
            "stream",
            "openmp",
            "m",
            &[result("triad_bw", 100.0, "MB/s", ExperimentStatus::Success)],
        );
    }
    let report = detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10).unwrap();
    assert!(!report.regressed, "{}", report.render());
    assert_eq!(report.change, 0.0);
}

#[test]
fn regression_ignores_failed_experiments() {
    let db = MetricsDatabase::new();
    db.record(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 100.0, "MB/s", ExperimentStatus::Success)],
    );
    db.record(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 100.0, "MB/s", ExperimentStatus::Success)],
    );
    // an all-failed sequence contributes nothing: still only 2 usable
    // sequences, so no verdict
    db.record(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 1.0, "MB/s", ExperimentStatus::Failed)],
    );
    assert!(detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10).is_none());
    // one more success: the failed sequence is skipped, not treated as latest
    db.record(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 100.0, "MB/s", ExperimentStatus::Success)],
    );
    let report = detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10).unwrap();
    assert!(!report.regressed, "{}", report.render());
}

#[test]
fn units_heuristic_classifies_directions() {
    // table-driven: (units, lower_is_better)
    let cases = [
        // plain time units, smallest to largest, with common spellings
        ("s", true),
        ("sec", true),
        ("secs", true),
        ("seconds", true),
        ("Seconds", true),
        ("ms", true),
        ("msecs", true),
        ("us", true),
        ("usec", true),
        ("usecs", true),
        ("microseconds", true),
        ("ns", true),
        ("nsecs", true),
        ("min", true),
        ("mins", true),
        ("minutes", true),
        ("h", true),
        ("hr", true),
        ("hours", true),
        ("total_seconds", true),
        ("p99_latency", true),
        // time per unit of work is a cost
        ("s/iter", true),
        ("ms/op", true),
        ("usec/call", true),
        ("Sec/Step", true),
        ("minutes/rep", true),
        // work per unit of time is a rate
        ("MB/s", false),
        ("GB/s", false),
        ("iter/s", false),
        ("iterations/sec", false),
        ("ops/ms", false),
        // unknown denominators stay higher-is-better
        ("s/node", false),
        // not time at all
        ("count", false),
        ("", false),
        ("FLOPS", false),
        ("minsize", false),
        ("hours_of_uptime", false),
    ];
    for (units, lower) in cases {
        assert_eq!(
            lower_is_better_units(units),
            lower,
            "`{units}` should be lower_is_better={lower}"
        );
    }
}

#[test]
fn scan_inverts_direction_for_minutes_and_per_iteration_units() {
    // a walltime in `minutes` that doubles, and an `ms/op` cost that
    // doubles: both must be flagged as regressions, not improvements
    for units in ["minutes", "ms/op"] {
        let db = MetricsDatabase::new();
        for value in [10.0, 10.0, 10.0, 20.0] {
            db.record(
                "cts1",
                "lulesh",
                "openmp",
                "m",
                &[result("walltime", value, units, ExperimentStatus::Success)],
            );
        }
        let reports = scan_regressions(&db, 0.10);
        assert_eq!(reports.len(), 1);
        assert!(
            reports[0].regressed,
            "`{units}` increase must regress: {}",
            reports[0].render()
        );
    }
    // the same doubling in a throughput unit is an improvement
    let db = MetricsDatabase::new();
    for value in [10.0, 10.0, 10.0, 20.0] {
        db.record(
            "cts1",
            "lulesh",
            "openmp",
            "m",
            &[result("rate", value, "iter/s", ExperimentStatus::Success)],
        );
    }
    let reports = scan_regressions(&db, 0.10);
    assert_eq!(reports.len(), 1);
    assert!(!reports[0].regressed, "{}", reports[0].render());
}

#[test]
fn scan_uses_units_to_infer_direction_and_skips_pipeline_telemetry() {
    let db = MetricsDatabase::new();
    // latency in `us`: an increase is a regression
    for value in [10.0, 10.0, 10.0, 25.0] {
        db.record(
            "cts1",
            "osu-bcast",
            "scaling",
            "m",
            &[result(
                "avg_latency",
                value,
                "us",
                ExperimentStatus::Success,
            )],
        );
        // pipeline pseudo-benchmark history that would "regress" if scanned
        db.record(
            "cts1",
            "benchpark-pipeline",
            "telemetry",
            "m",
            &[result(
                "obs.ledger.skipped",
                value,
                "count",
                ExperimentStatus::Success,
            )],
        );
    }
    let reports = scan_regressions(&db, 0.10);
    assert_eq!(reports.len(), 1, "pipeline telemetry must be excluded");
    assert_eq!(reports[0].fom, "avg_latency");
    assert!(reports[0].regressed, "{}", reports[0].render());
}

// ---------------------------------------------------------------------------
// Failed-experiment gate
// ---------------------------------------------------------------------------

#[test]
fn gate_passes_clean_runs_and_names_failures() {
    let ok = [result("x", 1.0, "s", ExperimentStatus::Success)];
    assert!(gate_failed_experiments(&ok, false).is_ok());

    let mixed = [
        result("x", 1.0, "s", ExperimentStatus::Success),
        result("x", 1.0, "s", ExperimentStatus::Failed),
        result("x", 1.0, "s", ExperimentStatus::JobError),
    ];
    let err = gate_failed_experiments(&mixed, false).unwrap_err();
    assert!(err.contains("Failed"), "{err}");
    assert!(err.contains("JobError"), "{err}");
    assert!(err.contains("--allow-failed"), "{err}");
    assert!(gate_failed_experiments(&mixed, true).is_ok());
}

// ---------------------------------------------------------------------------
// Ledger schema 2/3: fingerprints, cached markers, request traces, parse hardening
// ---------------------------------------------------------------------------

#[test]
fn ledger_schema2_round_trips_fingerprints_and_cached_marker() {
    let mut rec = record(100.0).with_fingerprints(vec![
        ("exp_b".to_string(), "00000000000000ff".to_string()),
        ("exp_1".to_string(), "deadbeefdeadbeef".to_string()),
    ]);
    rec.sequence = 3;
    rec.results[0].cached = true;
    let line = rec.to_json_line();
    assert!(line.starts_with("{\"schema\":3,"), "{line}");
    let parsed = RunRecord::parse_line(&line).expect("schema-2 line parses");
    // with_fingerprints sorts by experiment name for deterministic emission
    assert_eq!(
        parsed.fingerprints,
        vec![
            ("exp_1".to_string(), "deadbeefdeadbeef".to_string()),
            ("exp_b".to_string(), "00000000000000ff".to_string()),
        ]
    );
    assert!(parsed.results[0].cached);
    assert_eq!(parsed.to_json_line(), line);
}

#[test]
fn ledger_loads_mixed_schema1_and_schema2_lines() {
    let path = temp_ledger("mixed-schema");
    // a schema-1 line (pre-fingerprint era) followed by a schema-2 line
    let schema1 = record(100.0)
        .to_json_line()
        .replacen("{\"schema\":3,", "{\"schema\":1,", 1);
    let mut rec2 =
        record(90.0).with_fingerprints(vec![("exp_1".to_string(), "1111111111111111".to_string())]);
    std::fs::write(&path, format!("{schema1}\n{}\n", rec2.to_json_line())).unwrap();

    let load = load_ledger(&path, &TelemetrySink::noop()).expect("mixed schemas load");
    assert_eq!(load.runs.len(), 2);
    assert_eq!(load.skipped, 0);
    // the schema-1 record simply has no fingerprints
    assert!(load.runs[0].fingerprints.is_empty());
    assert_eq!(load.runs[1].fingerprints.len(), 1);
    let _ = &mut rec2;
}

#[test]
fn ledger_schema3_round_trips_request_trace() {
    let mut rec = record(100.0).with_request(RequestTrace {
        tenant: "alice".to_string(),
        request_id: 17,
        submit_tick: 3,
        queue_wait_ticks: 9,
        schedule_ticks: 1,
        execute_ticks: 812,
        commit_ticks: 2,
    });
    rec.sequence = 1;
    let line = rec.to_json_line();
    assert!(line.contains("\"request\":{\"tenant\":\"alice\""), "{line}");
    let parsed = RunRecord::parse_line(&line).expect("schema-3 line parses");
    let trace = parsed.request.as_ref().expect("trace survives");
    assert_eq!(trace.tenant, "alice");
    assert_eq!(trace.request_id, 17);
    assert_eq!(trace.queue_wait_ticks, 9);
    assert_eq!(trace.execute_ticks, 812);
    assert_eq!(parsed.to_json_line(), line);
    // negative tick values are corruption, not data
    let bad = line.replace("\"execute_ticks\":812", "\"execute_ticks\":-1");
    assert!(RunRecord::parse_line(&bad).is_err());
}

#[test]
fn ledger_loads_mixed_schema123_with_absent_stage_timings() {
    let path = temp_ledger("mixed-schema123");
    // history written by three generations of the tool: schema 1 (no
    // fingerprints), schema 2 (fingerprints, no request trace), schema 3
    // (request trace from the serve daemon)
    let schema1 = record(100.0)
        .to_json_line()
        .replacen("{\"schema\":3,", "{\"schema\":1,", 1);
    let schema2 = record(95.0)
        .with_fingerprints(vec![("exp_1".to_string(), "2222222222222222".to_string())])
        .to_json_line()
        .replacen("{\"schema\":3,", "{\"schema\":2,", 1);
    let schema3 = record(90.0)
        .with_request(RequestTrace {
            tenant: "bob".to_string(),
            request_id: 1,
            submit_tick: 0,
            queue_wait_ticks: 2,
            schedule_ticks: 0,
            execute_ticks: 400,
            commit_ticks: 1,
        })
        .to_json_line();
    std::fs::write(&path, format!("{schema1}\n{schema2}\n{schema3}\n")).unwrap();

    let load = load_ledger(&path, &TelemetrySink::noop()).expect("mixed schemas load");
    assert_eq!(load.runs.len(), 3);
    assert_eq!(load.skipped, 0);
    // old records report absent stage timings rather than failing
    assert!(load.runs[0].request.is_none());
    assert!(load.runs[1].request.is_none());
    assert_eq!(
        load.runs[2].request.as_ref().map(|t| t.queue_wait_ticks),
        Some(2)
    );
    // and the mixed file still answers history/regress queries: all three
    // generations replay into the metrics database and the scan flags the
    // 10% triad_bw drop across them
    let db = load.to_database();
    assert_eq!(db.len(), 3);
    let scan = scan_regressions(&db, 0.05);
    assert!(
        scan.iter().any(|r| r.fom == "triad_bw"),
        "expected the cross-generation drop to be flagged: {scan:?}"
    );
}

#[test]
fn ledger_rejects_negative_counter_totals_and_sequences() {
    // a negative counter total is corruption and must fail the line, not be
    // clamped into a plausible-looking zero
    let good = record(100.0).to_json_line();
    let line = good.replacen(
        "\"telemetry\":{\"counters\":{}",
        "\"telemetry\":{\"counters\":{\"retry.attempts\":-3}",
        1,
    );
    assert_ne!(line, good, "replacement must have applied");
    let err = RunRecord::parse_line(&line).unwrap_err();
    assert!(err.contains("negative"), "{err}");

    let line = good.replacen("\"sequence\":0,", "\"sequence\":-7,", 1);
    assert_ne!(line, good);
    let err = RunRecord::parse_line(&line).unwrap_err();
    assert!(err.contains("negative"), "{err}");

    // and the corrupt line is skipped (not fatal) on load
    let path = temp_ledger("neg-counter");
    let bad = good.replacen(
        "\"telemetry\":{\"counters\":{}",
        "\"telemetry\":{\"counters\":{\"retry.attempts\":-3}",
        1,
    );
    std::fs::write(&path, format!("{good}\n{bad}\n")).unwrap();
    let load = load_ledger(&path, &TelemetrySink::noop()).unwrap();
    assert_eq!((load.runs.len(), load.skipped), (1, 1));
}

#[test]
fn ledger_append_counts_only_valid_records() {
    // garbage lines must not inflate the next sequence stamp: the stamp
    // counts records load_ledger will actually keep
    let path = temp_ledger("valid-count");
    let mut first = record(100.0);
    append_run(&path, &mut first).unwrap();
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    writeln!(file, "half a rec").unwrap();
    writeln!(file, "{{\"schema\":999}}").unwrap();
    writeln!(file).unwrap();
    drop(file);

    let mut next = record(90.0);
    let sequence = append_run(&path, &mut next).unwrap();
    assert_eq!(sequence, 2, "2 garbage lines must not count as records");
    // the stamp agrees with what a load re-stamps
    let load = load_ledger(&path, &TelemetrySink::noop()).unwrap();
    assert_eq!(load.runs.len(), 2);
    assert_eq!(load.runs.last().unwrap().sequence, 2);
}

// ---------------------------------------------------------------------------
// Fingerprints: builder framing and the ledger-backed index
// ---------------------------------------------------------------------------

#[test]
fn fingerprint_builder_is_deterministic_and_framing_sensitive() {
    use crate::FingerprintBuilder;
    let base = || {
        FingerprintBuilder::new()
            .field("template", "x: 1")
            .field("system", "cts1")
    };
    assert_eq!(base().finish(), base().finish());
    assert_eq!(base().finish().hex().len(), 16);

    // any value edit changes the hash
    assert_ne!(
        base().finish(),
        FingerprintBuilder::new()
            .field("template", "x: 2")
            .field("system", "cts1")
            .finish()
    );
    // field order matters (the driver feeds a fixed order)
    assert_ne!(
        base().finish(),
        FingerprintBuilder::new()
            .field("system", "cts1")
            .field("template", "x: 1")
            .finish()
    );
    // framing: ("ab","c") must not collide with ("a","bc"), nor an empty
    // value with a missing field
    assert_ne!(
        FingerprintBuilder::new()
            .field("k", "ab")
            .field("k", "c")
            .finish(),
        FingerprintBuilder::new()
            .field("k", "a")
            .field("k", "bc")
            .finish()
    );
    assert_ne!(
        FingerprintBuilder::new().field("k", "").finish(),
        FingerprintBuilder::new().finish()
    );
    // fields() labels each pair under the prefix
    assert_ne!(
        FingerprintBuilder::new()
            .fields("var", [("n", "1")])
            .finish(),
        FingerprintBuilder::new()
            .fields("env", [("n", "1")])
            .finish()
    );
}

#[test]
fn fingerprint_index_skips_failures_and_splices_and_prefers_latest() {
    use crate::FingerprintIndex;
    let path = temp_ledger("index");
    let fp = |hex: &str| vec![("exp_1".to_string(), hex.to_string())];

    // run 1: success @ fp aaaa… ; run 2: FAILURE @ fp bbbb… ; run 3: a
    // spliced (cached) replay @ fp cccc… ; run 4: success @ fp aaaa… again
    // with a different value (a --force re-measurement)
    let mut r1 = record(100.0).with_fingerprints(fp("aaaaaaaaaaaaaaaa"));
    append_run(&path, &mut r1).unwrap();
    let mut r2 = RunRecord::from_run(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 1.0, "MB/s", ExperimentStatus::Failed)],
        None,
    )
    .with_fingerprints(fp("bbbbbbbbbbbbbbbb"));
    append_run(&path, &mut r2).unwrap();
    let mut r3 = record(100.0).with_fingerprints(fp("cccccccccccccccc"));
    r3.results[0].cached = true;
    append_run(&path, &mut r3).unwrap();
    let mut r4 = record(250.0).with_fingerprints(fp("aaaaaaaaaaaaaaaa"));
    append_run(&path, &mut r4).unwrap();

    let load = load_ledger(&path, &TelemetrySink::noop()).unwrap();
    let index = FingerprintIndex::from_ledger(&load);
    assert_eq!(index.len(), 1, "failure and splice must not be indexed");
    assert!(index.lookup_hex("bbbbbbbbbbbbbbbb").is_none());
    assert!(index.lookup_hex("cccccccccccccccc").is_none());
    let entry = index.lookup_hex("aaaaaaaaaaaaaaaa").expect("hit");
    // the later measurement superseded the earlier one
    assert_eq!(entry.sequence, 4);
    assert_eq!(entry.result.foms[0].value, "250");
    assert!(!entry.result.cached);
}

#[test]
fn driver_plan_incremental_skips_hits_and_honors_force() {
    use crate::{Benchpark, FingerprintIndex};

    let base = std::env::temp_dir().join(format!("benchpark-inc-unit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // measure once, persist with fingerprints (what `trace --export` does)
    let benchpark = Benchpark::new();
    let mut ws = benchpark
        .setup_workspace("saxpy", "openmp", "cts1", base.join("ws1"))
        .unwrap();
    ws.run().unwrap();
    let analysis = ws.analyze(&benchpark).unwrap();
    let fingerprints: Vec<(String, String)> = ws
        .fingerprints
        .iter()
        .map(|(name, fp)| (name.clone(), fp.hex()))
        .collect();
    assert_eq!(fingerprints.len(), analysis.results.len());
    let ledger = base.join("ledger.jsonl");
    let mut rec = RunRecord::from_run("cts1", "saxpy", "openmp", "m", &analysis.results, None)
        .with_fingerprints(fingerprints);
    append_run(&ledger, &mut rec).unwrap();

    let load = load_ledger(&ledger, &TelemetrySink::noop()).unwrap();
    let index = FingerprintIndex::from_ledger(&load);

    // a second workspace in a different directory: identical fingerprints,
    // so the whole run is served from the ledger
    let mut ws2 = benchpark
        .setup_workspace("saxpy", "openmp", "cts1", base.join("ws2"))
        .unwrap();
    assert_eq!(ws.fingerprints, ws2.fingerprints, "path-independent hashes");
    let plan = ws2.plan_incremental(&index, false);
    assert!(plan.all_cached());
    assert_eq!(plan.hits, analysis.results.len());
    assert_eq!(plan.to_run(), 0);
    let spliced = plan.splice(Vec::new());
    assert_eq!(spliced.len(), analysis.results.len());
    assert!(spliced.iter().all(|r| r.cached));
    // splicing preserves the measured FOMs exactly
    for (cached, measured) in spliced.iter().zip(&analysis.results) {
        assert_eq!(cached.experiment, measured.experiment);
        assert_eq!(cached.foms.len(), measured.foms.len());
        for (a, b) in cached.foms.iter().zip(&measured.foms) {
            assert_eq!(
                (a.name.as_str(), a.value.as_str()),
                (b.name.as_str(), b.value.as_str())
            );
        }
    }
    // with everything pruned, running the workspace is a setup error
    assert!(ws2.run().is_err());

    // --force: hits become forced work, nothing is spliced
    let mut ws3 = benchpark
        .setup_workspace("saxpy", "openmp", "cts1", base.join("ws3"))
        .unwrap();
    let plan = ws3.plan_incremental(&index, true);
    assert!(!plan.all_cached());
    assert_eq!(plan.hits, 0);
    assert_eq!(plan.forced, analysis.results.len());
    assert!(plan.cached.is_empty());
    // the forced workspace still runs in full
    ws3.run().unwrap();
    let rerun = ws3.analyze(&benchpark).unwrap();
    assert_eq!(rerun.results.len(), analysis.results.len());
}

// ---------------------------------------------------------------------------
// Crash safety and the sharded multi-tenant layout
// ---------------------------------------------------------------------------

/// A process killed mid-append leaves a torn line with no trailing newline.
/// The next `append_run` must contain the fragment in its own line (never
/// splice the new record onto it), and the load must count exactly one
/// skipped line.
#[test]
fn append_contains_torn_tail_from_killed_writer() {
    let path = temp_ledger("torn-tail");
    let mut first = record(100.0);
    append_run(&path, &mut first).unwrap();

    // simulate a writer killed mid-line: a truncated JSON prefix, no newline
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    write!(file, "{{\"schema\":2,\"sequence\":9,\"sys").unwrap();
    drop(file);

    let mut next = record(90.0);
    let sequence = append_run(&path, &mut next).unwrap();
    assert_eq!(sequence, 2, "the torn fragment is not a record");

    let load = load_ledger(&path, &TelemetrySink::noop()).unwrap();
    assert_eq!(load.runs.len(), 2, "both real records survive");
    assert_eq!(load.skipped, 1, "the torn fragment is one skipped line");
    assert_eq!(load.runs[1].sequence, 2);
}

/// Shard discovery: `<root>/<tenant>/<system>.jsonl` files load sorted by
/// `(tenant, system)`, the merged view re-stamps 1-based sequences in that
/// order, and `tenant_view` exposes exactly one tenant's runs.
#[test]
fn sharded_ledger_discovers_and_merges_per_tenant_shards() {
    use crate::{shard_path, ShardedLedger};
    let root = temp_ledger("shards");
    let root = root.parent().unwrap().join("ledger");

    // append out of discovery order to prove sorting is by name, not mtime
    for (tenant, system, value) in [
        ("zoe", "cts1", 10.0),
        ("amy", "ats2", 20.0),
        ("amy", "cts1", 30.0),
        ("amy", "cts1", 40.0),
    ] {
        let path = shard_path(&root, tenant, system);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let mut rec = record(value);
        rec.system = system.to_string();
        append_run(&path, &mut rec).unwrap();
    }

    let sink = TelemetrySink::noop();
    let sharded = ShardedLedger::load(&root, &sink).unwrap();
    assert_eq!(sharded.tenant_names(), ["amy", "zoe"]);
    assert_eq!(sharded.shards.len(), 3, "one shard per (tenant, system)");
    assert_eq!(sharded.len(), 4);

    // merged order: amy/ats2, amy/cts1 (x2), zoe/cts1 — re-stamped 1..=4
    let sequences: Vec<u64> = sharded.merged.runs.iter().map(|r| r.sequence).collect();
    assert_eq!(sequences, [1, 2, 3, 4]);
    let systems: Vec<&str> = sharded
        .merged
        .runs
        .iter()
        .map(|r| r.system.as_str())
        .collect();
    assert_eq!(systems, ["ats2", "cts1", "cts1", "cts1"]);

    let amy = sharded.tenant_view("amy");
    assert_eq!(amy.runs.len(), 3, "tenant view holds only amy's runs");
    let zoe = sharded.tenant_view("zoe");
    assert_eq!(zoe.runs.len(), 1);
    assert_eq!(zoe.runs[0].system, "cts1");

    // a missing root is an empty ledger, not an error
    let empty = ShardedLedger::load(&root.join("nope"), &sink).unwrap();
    assert!(empty.is_empty());
    assert!(empty.tenant_names().is_empty());
}
