//! Tests for the observability layer: the durable run ledger, regression
//! edge cases, the units heuristic, the whole-database scan, and the
//! failed-experiment gate.

use crate::{
    append_run, detect_regression, gate_failed_experiments, load_ledger, lower_is_better_units,
    scan_regressions, MetricsDatabase, RunRecord,
};
use benchpark_ramble::{ExperimentResult, ExperimentStatus, FomValue};
use benchpark_telemetry::TelemetrySink;

fn temp_ledger(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("benchpark-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("ledger.jsonl")
}

fn result(fom: &str, value: f64, units: &str, status: ExperimentStatus) -> ExperimentResult {
    ExperimentResult {
        experiment: "exp_1".to_string(),
        application: "stream".to_string(),
        workload: "stream".to_string(),
        status,
        foms: vec![FomValue {
            name: fom.to_string(),
            value: value.to_string(),
            units: units.to_string(),
            context: Default::default(),
        }],
        criteria: vec![("found_fom".to_string(), true)],
        variables: [("n_threads".to_string(), "8".to_string())].into(),
        profile: vec![("kernel".to_string(), 1.5)],
    }
}

fn record(value: f64) -> RunRecord {
    RunRecord::from_run(
        "cts1",
        "stream",
        "openmp",
        "manifest: stream/openmp on cts1",
        &[result("triad_bw", value, "MB/s", ExperimentStatus::Success)],
        None,
    )
}

// ---------------------------------------------------------------------------
// Ledger persistence
// ---------------------------------------------------------------------------

#[test]
fn ledger_record_round_trips_through_json() {
    let sink = TelemetrySink::recording();
    sink.incr("cache.hit", 4);
    sink.observe("queue.depth", 2.0);
    sink.observe_volatile("install.makespan_seconds", 9.0);
    let report = sink.report().unwrap();
    let mut original = RunRecord::from_run(
        "ats2",
        "amg2023",
        "cuda",
        "manifest text\nwith two lines",
        &[result("fom_a", 42.5, "GB/s", ExperimentStatus::Success)],
        Some(&report),
    );
    original.sequence = 7;
    let parsed = RunRecord::parse_line(&original.to_json_line()).expect("round trip");
    assert_eq!(parsed.sequence, 7);
    assert_eq!(parsed.system, "ats2");
    assert_eq!(parsed.benchmark, "amg2023");
    assert_eq!(parsed.variant, "cuda");
    assert_eq!(parsed.manifest, original.manifest);
    assert_eq!(parsed.counters, original.counters);
    assert_eq!(parsed.counter("cache.hit"), 4);
    // volatile observation stream excluded by construction
    assert!(original
        .observations
        .iter()
        .all(|(n, _)| n == "queue.depth"));
    assert_eq!(parsed.observations, original.observations);
    let r = &parsed.results[0];
    assert_eq!(r.status, ExperimentStatus::Success);
    assert_eq!(r.foms[0].name, "fom_a");
    assert_eq!(r.foms[0].value, "42.5");
    assert_eq!(r.criteria, vec![("found_fom".to_string(), true)]);
    assert_eq!(r.variables["n_threads"], "8");
    assert_eq!(r.profile, vec![("kernel".to_string(), 1.5)]);
    // deterministic serialization: emitting the parsed record is byte-identical
    assert_eq!(parsed.to_json_line(), original.to_json_line());
}

#[test]
fn ledger_append_stamps_consecutive_sequences() {
    let path = temp_ledger("append");
    for expected in 1..=3u64 {
        let mut rec = record(100.0);
        let got = append_run(&path, &mut rec).expect("append");
        assert_eq!(got, expected);
        assert_eq!(rec.sequence, expected);
    }
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 3);
}

#[test]
fn ledger_load_skips_corrupt_and_unknown_schema_lines() {
    let path = temp_ledger("corrupt");
    let mut first = record(100.0);
    append_run(&path, &mut first).unwrap();
    // a truncated append and a future schema version land between two
    // good records
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    writeln!(file, "{{\"schema\":1,\"sequence\":99,\"trunc").unwrap();
    writeln!(file, "{{\"schema\":999,\"sequence\":2}}").unwrap();
    drop(file);
    let mut last = record(90.0);
    append_run(&path, &mut last).unwrap();

    let sink = TelemetrySink::recording();
    let load = load_ledger(&path, &sink).expect("load survives corruption");
    assert_eq!(load.runs.len(), 2);
    assert_eq!(load.skipped, 2);
    assert_eq!(sink.report().unwrap().counter("obs.ledger.skipped"), 2);
    // survivors are re-stamped with consecutive sequences
    assert_eq!(load.runs[0].sequence, 1);
    assert_eq!(load.runs[1].sequence, 2);
}

#[test]
fn ledger_replay_feeds_regression_scan() {
    let path = temp_ledger("replay");
    for value in [100.0, 100.0, 100.0, 50.0] {
        let mut rec = record(value);
        append_run(&path, &mut rec).unwrap();
    }
    let load = load_ledger(&path, &TelemetrySink::noop()).unwrap();
    let db = load.to_database();
    let reports = scan_regressions(&db, 0.10);
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(
        (report.benchmark.as_str(), report.fom.as_str()),
        ("stream", "triad_bw")
    );
    assert!(report.regressed, "{}", report.render());
}

// ---------------------------------------------------------------------------
// Regression edge cases
// ---------------------------------------------------------------------------

#[test]
fn regression_zero_baseline_std_flags_any_real_drop() {
    // byte-identical baseline runs have zero variance; the 2-sigma noise
    // band degenerates to "any difference", and the threshold alone decides
    let db = MetricsDatabase::new();
    for _ in 0..3 {
        db.record(
            "cts1",
            "stream",
            "openmp",
            "m",
            &[result("triad_bw", 100.0, "MB/s", ExperimentStatus::Success)],
        );
    }
    db.record(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 88.0, "MB/s", ExperimentStatus::Success)],
    );
    let report = detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10).unwrap();
    assert_eq!(report.baseline_std, 0.0);
    assert!(report.regressed, "{}", report.render());
}

#[test]
fn regression_quiet_on_identical_reruns() {
    let db = MetricsDatabase::new();
    for _ in 0..4 {
        db.record(
            "cts1",
            "stream",
            "openmp",
            "m",
            &[result("triad_bw", 100.0, "MB/s", ExperimentStatus::Success)],
        );
    }
    let report = detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10).unwrap();
    assert!(!report.regressed, "{}", report.render());
    assert_eq!(report.change, 0.0);
}

#[test]
fn regression_ignores_failed_experiments() {
    let db = MetricsDatabase::new();
    db.record(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 100.0, "MB/s", ExperimentStatus::Success)],
    );
    db.record(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 100.0, "MB/s", ExperimentStatus::Success)],
    );
    // an all-failed sequence contributes nothing: still only 2 usable
    // sequences, so no verdict
    db.record(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 1.0, "MB/s", ExperimentStatus::Failed)],
    );
    assert!(detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10).is_none());
    // one more success: the failed sequence is skipped, not treated as latest
    db.record(
        "cts1",
        "stream",
        "openmp",
        "m",
        &[result("triad_bw", 100.0, "MB/s", ExperimentStatus::Success)],
    );
    let report = detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10).unwrap();
    assert!(!report.regressed, "{}", report.render());
}

#[test]
fn units_heuristic_classifies_directions() {
    for lower in [
        "s",
        "sec",
        "seconds",
        "ms",
        "us",
        "usec",
        "ns",
        "microseconds",
        "Seconds",
    ] {
        assert!(
            lower_is_better_units(lower),
            "{lower} should be lower-is-better"
        );
    }
    for higher in ["MB/s", "GB/s", "count", "", "FLOPS", "iterations/sec"] {
        assert!(
            !lower_is_better_units(higher),
            "{higher} should be higher-is-better"
        );
    }
}

#[test]
fn scan_uses_units_to_infer_direction_and_skips_pipeline_telemetry() {
    let db = MetricsDatabase::new();
    // latency in `us`: an increase is a regression
    for value in [10.0, 10.0, 10.0, 25.0] {
        db.record(
            "cts1",
            "osu-bcast",
            "scaling",
            "m",
            &[result(
                "avg_latency",
                value,
                "us",
                ExperimentStatus::Success,
            )],
        );
        // pipeline pseudo-benchmark history that would "regress" if scanned
        db.record(
            "cts1",
            "benchpark-pipeline",
            "telemetry",
            "m",
            &[result(
                "obs.ledger.skipped",
                value,
                "count",
                ExperimentStatus::Success,
            )],
        );
    }
    let reports = scan_regressions(&db, 0.10);
    assert_eq!(reports.len(), 1, "pipeline telemetry must be excluded");
    assert_eq!(reports[0].fom, "avg_latency");
    assert!(reports[0].regressed, "{}", reports[0].render());
}

// ---------------------------------------------------------------------------
// Failed-experiment gate
// ---------------------------------------------------------------------------

#[test]
fn gate_passes_clean_runs_and_names_failures() {
    let ok = [result("x", 1.0, "s", ExperimentStatus::Success)];
    assert!(gate_failed_experiments(&ok, false).is_ok());

    let mixed = [
        result("x", 1.0, "s", ExperimentStatus::Success),
        result("x", 1.0, "s", ExperimentStatus::Failed),
        result("x", 1.0, "s", ExperimentStatus::JobError),
    ];
    let err = gate_failed_experiments(&mixed, false).unwrap_err();
    assert!(err.contains("Failed"), "{err}");
    assert!(err.contains("JobError"), "{err}");
    assert!(err.contains("--allow-failed"), "{err}");
    assert!(gate_failed_experiments(&mixed, true).is_ok());
}
