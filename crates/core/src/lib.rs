//! `benchpark-core` — the Benchpark driver: systems, experiment suites, the
//! end-to-end workflow, the metrics database, and reports.
//!
//! This crate is the paper's primary contribution (§2): *"Benchpark is an
//! infrastructure-as-code project combining a variety of open source tools
//! into a fully specified system for tracking benchmark performance across a
//! variety of systems, across multiple HPC centers, and across arbitrary
//! choices of benchmarks"* — with every component orthogonalized into
//! benchmark-specific, system-specific, and experiment-specific concerns
//! (Table 1).
//!
//! * [`SystemProfile`] — the `configs/<system>/` directories of Figure 1a:
//!   `compilers.yaml`, `packages.yaml`, `spack.yaml`, `variables.yaml` for
//!   the three demonstration systems (`cts1`, `ats2`, `ats4`, §4) plus the
//!   cloud pool of §7.2 — each backed by a simulated machine.
//! * [`experiment_template`] — the `experiments/<benchmark>/<variant>/`
//!   entries (Figure 1a lines 20–40): `ramble.yaml` texts per benchmark and
//!   programming model.
//! * [`Benchpark`] — the driver (Figure 1b/1c): step 2's
//!   `/bin/benchpark $experiment $system $workspace_dir` becomes
//!   [`Benchpark::setup_workspace`], and the remaining workflow steps map to
//!   methods on the returned [`BenchparkWorkspace`].
//! * [`MetricsDatabase`] — §5's goal: results stored *with* the exact
//!   experiment manifests, queryable across systems and time, convertible to
//!   [`benchpark_perf::Thicket`]s for Extra-P modeling (Figure 14).
//! * [`table1`] — the component matrix of Table 1, regenerated from the
//!   implemented modules.
//! * [`scaling`] — the Figure 14 pipeline: broadcast scaling study →
//!   Thicket → Extra-P model.

pub mod benchjson;
mod components;
mod driver;
pub mod fingerprint;
pub mod ledger;
mod metrics;
mod plot;
pub mod procurement;
pub mod regression;
pub mod scaling;
mod systems;
mod templates;
mod tree;

pub use benchjson::{
    calibration_speed_factor, compare_bench_reports, compare_bench_reports_calibrated, today_utc,
    BenchComparison, BenchEnv, BenchRecord, BenchReport, BENCH_SCHEMA, BENCH_SUITE,
};
pub use components::{render_table1, table1, Table1Row};
pub use driver::{
    gate_failed_experiments, Benchpark, BenchparkWorkspace, CollectedRun, FleetExperiment,
    FleetOutcome, IncrementalPlan, RunSpec, StagedRun, WorkflowLog,
};
pub use fingerprint::{CachedExperiment, Fingerprint, FingerprintBuilder, FingerprintIndex};
pub use ledger::{
    append_run, load_ledger, shard_path, LedgerLoad, LedgerShard, RequestTrace, RunRecord,
    ShardedLedger, LEDGER_SCHEMA, LEDGER_SCHEMA_MIN,
};
pub use metrics::{MetricsDatabase, StoredResult};
pub use plot::ascii_plot;
pub use procurement::{ProcurementReport, ProcurementStudy, WorkloadSpec};
pub use regression::{
    baseline_verdict, detect_regression, lower_is_better_units, scan_regressions, BaselineVerdict,
    RegressionReport,
};
pub use systems::SystemProfile;
pub use templates::{available_experiments, experiment_template};
pub use tree::{render_tree, write_skeleton};

#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_bench;
#[cfg(test)]
mod tests_extended;
#[cfg(test)]
mod tests_obs;
