//! The metrics database (Figure 6's top-right box; §5's results-with-
//! manifests goal).

use benchpark_perf::{Profile, Thicket};
use benchpark_ramble::{ExperimentResult, ExperimentStatus};
use parking_lot::RwLock;
use std::sync::Arc;

/// One stored experiment result, annotated with its provenance.
#[derive(Debug, Clone)]
pub struct StoredResult {
    pub id: u64,
    /// Monotonic "when" (continuous benchmarking tracks performance over
    /// time; the sequence number stands in for wall-clock).
    pub sequence: u64,
    pub system: String,
    pub benchmark: String,
    pub variant: String,
    /// The exact experiment manifest (environment specs + system), enabling
    /// functional reproduction of the result.
    pub manifest: String,
    pub result: ExperimentResult,
}

/// A thread-safe store of benchmark results across systems and time.
#[derive(Debug, Clone, Default)]
pub struct MetricsDatabase {
    inner: Arc<RwLock<Store>>,
}

#[derive(Debug, Default)]
struct Store {
    records: Vec<StoredResult>,
    next_id: u64,
    sequence: u64,
}

impl MetricsDatabase {
    /// An empty database.
    pub fn new() -> MetricsDatabase {
        MetricsDatabase::default()
    }

    /// Records one analysis batch, all stamped with the same sequence point.
    pub fn record(
        &self,
        system: &str,
        benchmark: &str,
        variant: &str,
        manifest: &str,
        results: &[ExperimentResult],
    ) -> u64 {
        let mut store = self.inner.write();
        store.sequence += 1;
        let sequence = store.sequence;
        for result in results {
            let id = store.next_id;
            store.next_id += 1;
            store.records.push(StoredResult {
                id,
                sequence,
                system: system.to_string(),
                benchmark: benchmark.to_string(),
                variant: variant.to_string(),
                manifest: manifest.to_string(),
                result: result.clone(),
            });
        }
        sequence
    }

    /// All records (cloned snapshot).
    pub fn all(&self) -> Vec<StoredResult> {
        self.inner.read().records.clone()
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records matching the given benchmark and system (`None` = any).
    pub fn query(&self, benchmark: Option<&str>, system: Option<&str>) -> Vec<StoredResult> {
        self.inner
            .read()
            .records
            .iter()
            .filter(|r| benchmark.is_none_or(|b| r.benchmark == b))
            .filter(|r| system.is_none_or(|s| r.system == s))
            .cloned()
            .collect()
    }

    /// `(x, y)` series of a FOM against a numeric experiment variable —
    /// e.g. `triad_bw` against `n_threads` — for one benchmark/system.
    pub fn fom_series(
        &self,
        benchmark: &str,
        system: &str,
        fom: &str,
        x_variable: &str,
    ) -> Vec<(f64, f64)> {
        let mut points: Vec<(f64, f64)> = self
            .query(Some(benchmark), Some(system))
            .into_iter()
            .filter(|r| r.result.status == ExperimentStatus::Success)
            .filter_map(|r| {
                let x: f64 = r.result.variables.get(x_variable)?.parse().ok()?;
                let y = r
                    .result
                    .foms
                    .iter()
                    .find(|f| f.name == fom)
                    .and_then(|f| f.as_f64())?;
                Some((x, y))
            })
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        points
    }

    /// Converts stored results into a [`Thicket`] of Caliper-style profiles,
    /// with metadata from the experiment variables plus provenance — the
    /// §5 pipeline feeding Extra-P (Figure 14).
    pub fn to_thicket(&self, benchmark: Option<&str>, system: Option<&str>) -> Thicket {
        let profiles: Vec<Profile> = self
            .query(benchmark, system)
            .into_iter()
            .map(|r| {
                let mut metadata: Vec<(String, String)> = r
                    .result
                    .variables
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                metadata.push(("system".to_string(), r.system.clone()));
                metadata.push(("benchmark".to_string(), r.benchmark.clone()));
                metadata.push(("sequence".to_string(), r.sequence.to_string()));
                Profile::from_parts(r.result.profile.clone(), metadata)
            })
            .collect();
        Thicket::from_profiles(profiles)
    }

    /// Serializes the database to YAML text — the sharing format for §5's
    /// *"enable our collaborators to contribute the performance results of
    /// the benchmarks as they execute them on their systems"*. Results
    /// travel with their manifests, so receivers can reproduce them.
    pub fn export_text(&self) -> String {
        use benchpark_yamlite::{emit, Map, Value};
        let mut records = Vec::new();
        for r in self.inner.read().records.iter() {
            let mut rec = Map::new();
            rec.insert("sequence", Value::Int(r.sequence as i64));
            rec.insert("system", Value::str(r.system.clone()));
            rec.insert("benchmark", Value::str(r.benchmark.clone()));
            rec.insert("variant", Value::str(r.variant.clone()));
            rec.insert("manifest", Value::str(r.manifest.clone()));
            rec.insert("experiment", Value::str(r.result.experiment.clone()));
            rec.insert("workload", Value::str(r.result.workload.clone()));
            rec.insert("status", Value::str(format!("{:?}", r.result.status)));
            let mut foms = Map::new();
            for f in &r.result.foms {
                let mut entry = Map::new();
                entry.insert("value", Value::str(f.value.clone()));
                entry.insert("units", Value::str(f.units.clone()));
                foms.insert(&f.name, Value::Map(entry));
            }
            rec.insert("foms", Value::Map(foms));
            let mut vars = Map::new();
            for (k, v) in &r.result.variables {
                vars.insert(k, Value::str(v.clone()));
            }
            rec.insert("variables", Value::Map(vars));
            records.push(Value::Map(rec));
        }
        let mut root = Map::new();
        root.insert("benchpark_results", Value::Seq(records));
        emit(&Value::Map(root))
    }

    /// Imports results exported by a collaborator. Imported sequences are
    /// shifted past the local maximum so local history ordering survives.
    /// Returns the number of records imported.
    pub fn import_text(&self, text: &str) -> Result<usize, String> {
        use benchpark_ramble::{ExperimentResult, FomValue};
        use benchpark_yamlite::{parse, Value};
        let doc = parse(text).map_err(|e| e.to_string())?;
        let records = doc
            .get("benchpark_results")
            .and_then(Value::as_seq)
            .ok_or("missing `benchpark_results` list")?;
        let mut store = self.inner.write();
        let offset = store.sequence;
        let mut imported = 0usize;
        let mut max_seen = 0u64;
        for rec in records {
            let get = |k: &str| rec.get(k).and_then(Value::as_str).map(String::from);
            let sequence = rec
                .get("sequence")
                .and_then(Value::as_int)
                .ok_or("record lacks sequence")? as u64;
            max_seen = max_seen.max(sequence);
            let status = match get("status").as_deref() {
                Some("Success") => ExperimentStatus::Success,
                Some("Failed") => ExperimentStatus::Failed,
                _ => ExperimentStatus::JobError,
            };
            let mut foms = Vec::new();
            if let Some(fom_map) = rec.get("foms").and_then(Value::as_map) {
                for (name, body) in fom_map.iter() {
                    foms.push(FomValue {
                        name: name.clone(),
                        value: body
                            .get("value")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        units: body
                            .get("units")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        context: Default::default(),
                    });
                }
            }
            let mut variables = std::collections::BTreeMap::new();
            if let Some(vars) = rec.get("variables").and_then(Value::as_map) {
                for (k, v) in vars.iter() {
                    if let Some(s) = v.scalar_string() {
                        variables.insert(k.clone(), s);
                    }
                }
            }
            let id = store.next_id;
            store.next_id += 1;
            store.records.push(StoredResult {
                id,
                sequence: offset + sequence,
                system: get("system").ok_or("record lacks system")?,
                benchmark: get("benchmark").ok_or("record lacks benchmark")?,
                variant: get("variant").unwrap_or_default(),
                manifest: get("manifest").unwrap_or_default(),
                result: ExperimentResult {
                    experiment: get("experiment").unwrap_or_default(),
                    application: get("benchmark").unwrap_or_default(),
                    workload: get("workload").unwrap_or_default(),
                    status,
                    foms,
                    criteria: Vec::new(),
                    variables,
                    profile: Vec::new(),
                    cached: false,
                },
            });
            imported += 1;
        }
        store.sequence = store.sequence.max(offset + max_seen);
        Ok(imported)
    }

    /// Records a pipeline telemetry report alongside benchmark results:
    /// counters and observation means become FOMs, the span tree becomes the
    /// stored profile — so pipeline health is queryable with the same
    /// machinery as benchmark performance. Volatile observation streams
    /// (wall-clock/worker-count dependent) are excluded, so the stored FOMs
    /// are comparable across runs with different `--jobs`. Returns the
    /// sequence point.
    pub fn record_telemetry(
        &self,
        system: &str,
        report: &benchpark_telemetry::TelemetryReport,
    ) -> u64 {
        use benchpark_ramble::FomValue;
        let mut foms = Vec::new();
        for (name, total) in report.sorted_counters() {
            foms.push(FomValue {
                name: name.to_string(),
                value: total.to_string(),
                units: "count".to_string(),
                context: Default::default(),
            });
        }
        for (name, stats) in report.sorted_observations() {
            if report.is_volatile_observation(name) {
                continue;
            }
            foms.push(FomValue {
                name: name.to_string(),
                value: format!("{:.6}", stats.mean()),
                units: "mean".to_string(),
                context: Default::default(),
            });
        }
        let profile: Vec<(String, f64)> = report
            .spans
            .iter()
            .map(|s| (s.name.to_string(), s.real_seconds.unwrap_or(0.0)))
            .collect();
        let result = ExperimentResult {
            experiment: "pipeline-telemetry".to_string(),
            application: "benchpark".to_string(),
            workload: "pipeline".to_string(),
            status: ExperimentStatus::Success,
            foms,
            criteria: Vec::new(),
            variables: std::collections::BTreeMap::new(),
            profile,
            cached: false,
        };
        self.record(
            system,
            "benchpark-pipeline",
            "telemetry",
            "pipeline self-instrumentation (spans, counters, observations)",
            &[result],
        )
    }

    /// Benchmark usage counts (§5: *"collecting metrics on benchmark usage —
    /// which codes in Benchpark are accessed most heavily"*), most-used
    /// first.
    pub fn usage_counts(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for r in self.inner.read().records.iter() {
            *counts.entry(r.benchmark.clone()).or_insert(0) += 1;
        }
        let mut out: Vec<(String, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// A text dashboard: per (benchmark, system), run counts and success
    /// rates — the "quick glance of the multi-dimensional performance data"
    /// §5 asks a dashboard for.
    pub fn render_dashboard(&self) -> String {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
        for r in self.inner.read().records.iter() {
            let entry = groups
                .entry((r.benchmark.clone(), r.system.clone()))
                .or_insert((0, 0));
            entry.0 += 1;
            if r.result.status == ExperimentStatus::Success {
                entry.1 += 1;
            }
        }
        let mut out = String::from("benchmark            system       runs  success\n");
        for ((benchmark, system), (runs, ok)) in groups {
            out.push_str(&format!(
                "{benchmark:<20} {system:<12} {runs:>4}  {ok:>4}/{runs}\n"
            ));
        }
        out
    }
}
