//! The durable run ledger: one self-contained JSONL record per pipeline
//! invocation (paper §3.3, Figure 6 — the *persistent* metrics database the
//! continuous-benchmarking loop ends in).
//!
//! Every `benchpark trace … --export` appends one line to the ledger; later
//! invocations of `benchpark history` / `benchpark regress` replay those
//! lines through [`crate::regression`], so baselines span real prior
//! process lifetimes instead of one in-memory session.
//!
//! Design constraints, in order:
//!
//! * **Self-contained** — each line carries the run's provenance (system,
//!   benchmark/variant, the exact experiment manifest), every experiment
//!   result with FOMs, and a telemetry summary. A collaborator can append
//!   their lines to yours and the history still makes sense.
//! * **Deterministic** — records are emitted through
//!   [`benchpark_yamlite::emit_json`] with fixed field order, and the
//!   telemetry summary excludes *volatile* metrics (wall-clock or
//!   worker-count dependent, see
//!   [`benchpark_telemetry::TelemetryReport::volatile_observations`]), so a
//!   `--jobs 1` and a `--jobs 8` run of the same pipeline append
//!   byte-identical records.
//! * **Corruption-tolerant** — a truncated or garbled line (the process
//!   died mid-append, a careless merge) is skipped and counted under the
//!   `obs.ledger.skipped` telemetry counter; the surrounding history stays
//!   loadable.
//! * **Versioned** — each record carries `schema`; records with an
//!   unrecognized version are skipped like corrupt lines rather than
//!   misread. This build writes schema 3 (which adds the optional
//!   [`RequestTrace`] block the serve daemon stamps: tenant, request id,
//!   and per-stage virtual-tick durations) and still reads schema 2
//!   (per-experiment content-addressed fingerprints, see
//!   [`crate::fingerprint`], and a `cached` provenance marker per result)
//!   and schema-1 lines. An older record simply carries no fingerprints
//!   and/or no request trace — it can never satisfy a fingerprint lookup
//!   and reports absent stage timings, but stays fully usable for
//!   `history`/`regress`.

use crate::metrics::MetricsDatabase;
use benchpark_ramble::{ExperimentResult, ExperimentStatus, FomValue};
use benchpark_telemetry::{TelemetryReport, TelemetrySink};
use benchpark_yamlite::{emit_json, parse_json, Map, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// The ledger schema version this build writes.
pub const LEDGER_SCHEMA: i64 = 3;

/// The oldest schema version this build still reads. Records outside
/// `LEDGER_SCHEMA_MIN..=LEDGER_SCHEMA` are skipped as unknown.
pub const LEDGER_SCHEMA_MIN: i64 = 1;

/// The request-scoped trace the serve daemon stamps onto a record at
/// commit (schema 3): who asked, and how long each service stage took in
/// the daemon's virtual clock. All tick values are deterministic functions
/// of the submission sequence — identical at any worker count. Absent on
/// one-shot (`benchpark trace`) records and on schema-1/2 history.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestTrace {
    /// The submitting tenant.
    pub tenant: String,
    /// Global intake sequence number (1-based).
    pub request_id: u64,
    /// Daemon virtual-clock tick at admission.
    pub submit_tick: u64,
    /// Ticks spent queued between admission and the DRR pick.
    pub queue_wait_ticks: u64,
    /// Dispatch offset within the picked batch (pick-order position).
    pub schedule_ticks: u64,
    /// Virtual execution time: the summed stable virtual-seconds of the
    /// run's simulated phases (cluster drains), rounded to ticks.
    pub execute_ticks: u64,
    /// Position in the batch's serialized commit sequence (1-based).
    pub commit_ticks: u64,
}

/// One pipeline invocation, as persisted in the ledger.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Monotonic position in the ledger, assigned by [`append_run`]
    /// (1-based; 0 until appended).
    pub sequence: u64,
    /// System profile the run executed on.
    pub system: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Experiment variant (programming model).
    pub variant: String,
    /// The exact experiment manifest, for functional reproduction.
    pub manifest: String,
    /// Every experiment result of the run.
    pub results: Vec<ExperimentResult>,
    /// Content-addressed fingerprint per experiment (experiment name →
    /// canonical hex, sorted by name; empty for replayed schema-1 records).
    /// This is what lets a later run recognize "nothing changed" and splice
    /// this record's FOMs instead of re-executing.
    pub fingerprints: Vec<(String, String)>,
    /// Telemetry counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Means of *stable* observation streams, sorted by name (volatile
    /// streams are excluded by construction).
    pub observations: Vec<(String, f64)>,
    /// The serve daemon's request trace (schema 3); `None` for one-shot
    /// runs and for records replayed from schema-1/2 history.
    pub request: Option<RequestTrace>,
}

impl RunRecord {
    /// Builds a record from one run's outputs. The telemetry summary keeps
    /// counters and stable observation means only.
    pub fn from_run(
        system: &str,
        benchmark: &str,
        variant: &str,
        manifest: &str,
        results: &[ExperimentResult],
        report: Option<&TelemetryReport>,
    ) -> RunRecord {
        let mut counters = Vec::new();
        let mut observations = Vec::new();
        if let Some(report) = report {
            for (name, total) in report.sorted_counters() {
                counters.push((name.to_string(), total));
            }
            for (name, stats) in report.sorted_observations() {
                if !report.is_volatile_observation(name) {
                    observations.push((name.to_string(), stats.mean()));
                }
            }
        }
        RunRecord {
            sequence: 0,
            system: system.to_string(),
            benchmark: benchmark.to_string(),
            variant: variant.to_string(),
            manifest: manifest.to_string(),
            results: results.to_vec(),
            fingerprints: Vec::new(),
            counters,
            observations,
            request: None,
        }
    }

    /// Attaches per-experiment fingerprints (experiment name → canonical
    /// hex); pairs are sorted by experiment name for deterministic
    /// serialization.
    pub fn with_fingerprints(mut self, mut fingerprints: Vec<(String, String)>) -> RunRecord {
        fingerprints.sort();
        self.fingerprints = fingerprints;
        self
    }

    /// Attaches the serve daemon's request trace (schema 3).
    pub fn with_request(mut self, request: RequestTrace) -> RunRecord {
        self.request = Some(request);
        self
    }

    /// Serializes the record as one JSON line (no trailing newline). Field
    /// order is fixed, so equal records serialize byte-identically.
    pub fn to_json_line(&self) -> String {
        let mut root = Map::new();
        root.insert("schema", Value::Int(LEDGER_SCHEMA));
        root.insert("sequence", Value::Int(self.sequence as i64));
        root.insert("system", Value::str(self.system.clone()));
        root.insert("benchmark", Value::str(self.benchmark.clone()));
        root.insert("variant", Value::str(self.variant.clone()));
        root.insert("manifest", Value::str(self.manifest.clone()));
        if let Some(trace) = &self.request {
            let mut request = Map::new();
            request.insert("tenant", Value::str(trace.tenant.clone()));
            request.insert("request_id", Value::Int(trace.request_id as i64));
            request.insert("submit_tick", Value::Int(trace.submit_tick as i64));
            request.insert(
                "queue_wait_ticks",
                Value::Int(trace.queue_wait_ticks as i64),
            );
            request.insert("schedule_ticks", Value::Int(trace.schedule_ticks as i64));
            request.insert("execute_ticks", Value::Int(trace.execute_ticks as i64));
            request.insert("commit_ticks", Value::Int(trace.commit_ticks as i64));
            root.insert("request", Value::Map(request));
        }
        root.insert(
            "results",
            Value::Seq(self.results.iter().map(result_to_value).collect()),
        );
        let mut fingerprints = Map::new();
        for (experiment, fingerprint) in &self.fingerprints {
            fingerprints.insert(experiment, Value::str(fingerprint.clone()));
        }
        root.insert("fingerprints", Value::Map(fingerprints));
        let mut telemetry = Map::new();
        let mut counters = Map::new();
        for (name, total) in &self.counters {
            counters.insert(name, Value::Int(*total as i64));
        }
        telemetry.insert("counters", Value::Map(counters));
        let mut observations = Map::new();
        for (name, mean) in &self.observations {
            observations.insert(name, Value::Float(*mean));
        }
        telemetry.insert("observations", Value::Map(observations));
        root.insert("telemetry", Value::Map(telemetry));
        emit_json(&Value::Map(root))
    }

    /// Parses one ledger line. Fails on malformed JSON, a missing required
    /// field, a malformed field value, or an unknown schema version.
    pub fn parse_line(line: &str) -> Result<RunRecord, String> {
        let doc = parse_json(line)?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_int)
            .ok_or("record lacks `schema`")?;
        if !(LEDGER_SCHEMA_MIN..=LEDGER_SCHEMA).contains(&schema) {
            return Err(format!("unknown ledger schema version {schema}"));
        }
        let text = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Value::as_str)
                .map(String::from)
                .ok_or_else(|| format!("record lacks `{key}`"))
        };
        let mut results = Vec::new();
        for item in doc
            .get("results")
            .and_then(Value::as_seq)
            .ok_or("record lacks `results`")?
        {
            results.push(result_from_value(item)?);
        }
        let mut fingerprints = Vec::new();
        if let Some(map) = doc.get("fingerprints").and_then(Value::as_map) {
            for (experiment, fingerprint) in map.iter() {
                let fingerprint = fingerprint
                    .as_str()
                    .ok_or("fingerprint must be a string")?
                    .to_string();
                fingerprints.push((experiment.clone(), fingerprint));
            }
        }
        let mut counters = Vec::new();
        let mut observations = Vec::new();
        if let Some(telemetry) = doc.get("telemetry") {
            if let Some(map) = telemetry.get("counters").and_then(Value::as_map) {
                for (name, total) in map.iter() {
                    let total = total.as_int().ok_or("counter total must be an integer")?;
                    // a negative total is corruption, not data — reject the
                    // record (the corrupt-line skip path handles it) rather
                    // than clamp it into a valid-looking history
                    if total < 0 {
                        return Err(format!("counter `{name}` total {total} is negative"));
                    }
                    counters.push((name.clone(), total as u64));
                }
            }
            if let Some(map) = telemetry.get("observations").and_then(Value::as_map) {
                for (name, mean) in map.iter() {
                    let mean = mean.as_float().ok_or("observation mean must be numeric")?;
                    observations.push((name.clone(), mean));
                }
            }
        }
        let mut request = None;
        if let Some(map) = doc.get("request").and_then(Value::as_map) {
            let tick = |key: &str| -> Result<u64, String> {
                let value = map
                    .get(key)
                    .and_then(Value::as_int)
                    .ok_or_else(|| format!("request trace lacks `{key}`"))?;
                if value < 0 {
                    return Err(format!("request trace `{key}` {value} is negative"));
                }
                Ok(value as u64)
            };
            request = Some(RequestTrace {
                tenant: map
                    .get("tenant")
                    .and_then(Value::as_str)
                    .ok_or("request trace lacks `tenant`")?
                    .to_string(),
                request_id: tick("request_id")?,
                submit_tick: tick("submit_tick")?,
                queue_wait_ticks: tick("queue_wait_ticks")?,
                schedule_ticks: tick("schedule_ticks")?,
                execute_ticks: tick("execute_ticks")?,
                commit_ticks: tick("commit_ticks")?,
            });
        }
        let sequence = doc
            .get("sequence")
            .and_then(Value::as_int)
            .ok_or("record lacks `sequence`")?;
        if sequence < 0 {
            return Err(format!("sequence {sequence} is negative"));
        }
        Ok(RunRecord {
            sequence: sequence as u64,
            system: text("system")?,
            benchmark: text("benchmark")?,
            variant: text("variant")?,
            manifest: text("manifest")?,
            results,
            fingerprints,
            counters,
            observations,
            request,
        })
    }

    /// Total for a named counter in this record's telemetry summary.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap_or(0)
    }

    /// How many of this record's experiments did not succeed.
    pub fn failed_experiments(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.status != ExperimentStatus::Success)
            .count()
    }
}

fn result_to_value(result: &ExperimentResult) -> Value {
    let mut rec = Map::new();
    rec.insert("experiment", Value::str(result.experiment.clone()));
    rec.insert("application", Value::str(result.application.clone()));
    rec.insert("workload", Value::str(result.workload.clone()));
    rec.insert("status", Value::str(format!("{:?}", result.status)));
    rec.insert("cached", Value::Bool(result.cached));
    let mut foms = Vec::new();
    for f in &result.foms {
        let mut fom = Map::new();
        fom.insert("name", Value::str(f.name.clone()));
        fom.insert("value", Value::str(f.value.clone()));
        fom.insert("units", Value::str(f.units.clone()));
        if !f.context.is_empty() {
            let mut context = Map::new();
            for (k, v) in &f.context {
                context.insert(k, Value::str(v.clone()));
            }
            fom.insert("context", Value::Map(context));
        }
        foms.push(Value::Map(fom));
    }
    rec.insert("foms", Value::Seq(foms));
    rec.insert(
        "criteria",
        Value::Seq(
            result
                .criteria
                .iter()
                .map(|(name, ok)| Value::Seq(vec![Value::str(name.clone()), Value::Bool(*ok)]))
                .collect(),
        ),
    );
    let mut variables = Map::new();
    for (k, v) in &result.variables {
        variables.insert(k, Value::str(v.clone()));
    }
    rec.insert("variables", Value::Map(variables));
    // profiles come from virtual-time execution, so they are deterministic
    // and safe to persist
    rec.insert(
        "profile",
        Value::Seq(
            result
                .profile
                .iter()
                .map(|(name, seconds)| {
                    Value::Seq(vec![Value::str(name.clone()), Value::Float(*seconds)])
                })
                .collect(),
        ),
    );
    Value::Map(rec)
}

fn result_from_value(value: &Value) -> Result<ExperimentResult, String> {
    let text = |key: &str| -> Result<String, String> {
        value
            .get(key)
            .and_then(Value::as_str)
            .map(String::from)
            .ok_or_else(|| format!("experiment result lacks `{key}`"))
    };
    let status = match text("status")?.as_str() {
        "Success" => ExperimentStatus::Success,
        "Failed" => ExperimentStatus::Failed,
        "JobError" => ExperimentStatus::JobError,
        other => return Err(format!("unknown experiment status `{other}`")),
    };
    let mut foms = Vec::new();
    for item in value
        .get("foms")
        .and_then(Value::as_seq)
        .ok_or("experiment result lacks `foms`")?
    {
        let field = |key: &str| -> Result<String, String> {
            item.get(key)
                .and_then(Value::as_str)
                .map(String::from)
                .ok_or_else(|| format!("fom lacks `{key}`"))
        };
        let mut context = BTreeMap::new();
        if let Some(map) = item.get("context").and_then(Value::as_map) {
            for (k, v) in map.iter() {
                context.insert(k.clone(), v.scalar_string().unwrap_or_default());
            }
        }
        foms.push(FomValue {
            name: field("name")?,
            value: field("value")?,
            units: field("units")?,
            context,
        });
    }
    let mut criteria = Vec::new();
    if let Some(items) = value.get("criteria").and_then(Value::as_seq) {
        for pair in items {
            let pair = pair.as_seq().ok_or("criterion must be a [name, ok] pair")?;
            match pair {
                [Value::Str(name), Value::Bool(ok)] => criteria.push((name.clone(), *ok)),
                _ => return Err("criterion must be a [name, ok] pair".to_string()),
            }
        }
    }
    let mut variables = BTreeMap::new();
    if let Some(map) = value.get("variables").and_then(Value::as_map) {
        for (k, v) in map.iter() {
            variables.insert(k.clone(), v.scalar_string().unwrap_or_default());
        }
    }
    let mut profile = Vec::new();
    if let Some(items) = value.get("profile").and_then(Value::as_seq) {
        for pair in items {
            let pair = pair
                .as_seq()
                .ok_or("profile entry must be [name, seconds]")?;
            match pair {
                [Value::Str(name), seconds] => profile.push((
                    name.clone(),
                    seconds
                        .as_float()
                        .ok_or("profile seconds must be numeric")?,
                )),
                _ => return Err("profile entry must be [name, seconds]".to_string()),
            }
        }
    }
    Ok(ExperimentResult {
        experiment: text("experiment")?,
        application: text("application")?,
        workload: text("workload")?,
        status,
        foms,
        criteria,
        variables,
        profile,
        // absent in schema-1 records: those were all freshly measured
        cached: value
            .get("cached")
            .and_then(Value::as_bool)
            .unwrap_or(false),
    })
}

/// Appends one record to the ledger at `path`, creating the file if needed.
/// The record's `sequence` is stamped from the ledger's current count of
/// *valid* records — the same criterion [`load_ledger`] re-stamps by — so
/// persisted and replayed sequence numbers agree even when corrupt or
/// unknown-schema lines sit in the file (a count of raw lines would
/// diverge as soon as one line is garbled). The file is streamed line by
/// line rather than slurped, so a growing ledger never costs a
/// whole-history allocation per append. Returns the stamped sequence.
///
/// Crash safety: the record is serialized into a single buffer, written
/// with one `write_all`, and `fsync`ed before this function returns — a
/// caller (like the serve daemon's fingerprint index) never observes an
/// append that is not durable. If the file's last byte is not a newline —
/// the tail of a torn append from a process killed mid-write — a newline
/// is emitted first, so the torn fragment stays contained in its own line
/// (skipped and counted by [`load_ledger`]) instead of corrupting this
/// record too.
pub fn append_run(path: &Path, record: &mut RunRecord) -> Result<u64, String> {
    use std::io::{BufRead as _, Write as _};
    let (existing, ends_with_newline) = match std::fs::File::open(path) {
        Ok(file) => {
            let mut reader = std::io::BufReader::new(file);
            let mut line = String::new();
            let mut valid = 0u64;
            let mut newline_terminated = true;
            loop {
                line.clear();
                let read = reader
                    .read_line(&mut line)
                    .map_err(|e| format!("cannot read ledger `{}`: {e}", path.display()))?;
                if read == 0 {
                    break;
                }
                newline_terminated = line.ends_with('\n');
                if !line.trim().is_empty() && RunRecord::parse_line(line.trim_end()).is_ok() {
                    valid += 1;
                }
            }
            (valid, newline_terminated)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => (0, true),
        Err(e) => return Err(format!("cannot read ledger `{}`: {e}", path.display())),
    };
    record.sequence = existing + 1;
    let mut payload = String::new();
    if !ends_with_newline {
        payload.push('\n');
    }
    payload.push_str(&record.to_json_line());
    payload.push('\n');
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open ledger `{}`: {e}", path.display()))?;
    file.write_all(payload.as_bytes())
        .map_err(|e| format!("cannot append to ledger `{}`: {e}", path.display()))?;
    file.sync_all()
        .map_err(|e| format!("cannot sync ledger `{}`: {e}", path.display()))?;
    Ok(record.sequence)
}

/// What [`load_ledger`] found.
#[derive(Debug, Clone, Default)]
pub struct LedgerLoad {
    /// Valid records, in file order, re-stamped with 1-based sequences.
    pub runs: Vec<RunRecord>,
    /// Corrupt or unknown-schema lines that were skipped.
    pub skipped: usize,
}

impl LedgerLoad {
    /// Replays the loaded runs into a fresh [`MetricsDatabase`], one
    /// sequence point per run in ledger order — the input
    /// [`crate::regression`] expects.
    pub fn to_database(&self) -> MetricsDatabase {
        let db = MetricsDatabase::new();
        for run in &self.runs {
            db.record(
                &run.system,
                &run.benchmark,
                &run.variant,
                &run.manifest,
                &run.results,
            );
        }
        db
    }
}

/// Loads a ledger, skipping corrupt lines. Each skipped line increments the
/// `obs.ledger.skipped` counter on `sink` (and is tallied in the returned
/// [`LedgerLoad::skipped`]). Loaded runs are re-stamped with consecutive
/// 1-based sequences in file order, so histories assembled from several
/// processes (or with holes from skipped lines) stay monotonic.
pub fn load_ledger(path: &Path, sink: &TelemetrySink) -> Result<LedgerLoad, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read ledger `{}`: {e}", path.display()))?;
    let mut load = LedgerLoad::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match RunRecord::parse_line(line) {
            Ok(mut record) => {
                record.sequence = load.runs.len() as u64 + 1;
                load.runs.push(record);
            }
            Err(_) => {
                load.skipped += 1;
                sink.incr("obs.ledger.skipped", 1);
            }
        }
    }
    Ok(load)
}

/// The shard file for one `(tenant, system)` pair under a sharded-ledger
/// root: `<root>/<tenant>/<system>.jsonl`. This is the multi-tenant layout
/// the `benchpark serve` daemon appends to — one schema-2 JSONL ledger per
/// tenant/system, so tenants never contend on (or corrupt) each other's
/// history, while [`ShardedLedger::load`] still presents the union.
pub fn shard_path(root: &Path, tenant: &str, system: &str) -> std::path::PathBuf {
    root.join(tenant).join(format!("{system}.jsonl"))
}

/// One discovered shard of a sharded ledger.
#[derive(Debug, Clone)]
pub struct LedgerShard {
    /// Tenant the shard belongs to (the directory name).
    pub tenant: String,
    /// System the shard records (the file stem).
    pub system: String,
    /// The shard file.
    pub path: std::path::PathBuf,
    /// Valid records loaded from this shard.
    pub runs: usize,
    /// Corrupt or unknown-schema lines skipped in this shard.
    pub skipped: usize,
}

/// A merge-on-query view over a directory of per-tenant/system ledger
/// shards (`<root>/<tenant>/<system>.jsonl`).
///
/// Shards are discovered in sorted `(tenant, system)` order and their
/// records concatenated in file order, then re-stamped with consecutive
/// global sequences — so the merged view is a deterministic function of
/// shard *contents*, independent of the interleaving in which concurrent
/// tenants appended. `history`, `regress`, and `fingerprints` run
/// unchanged over [`ShardedLedger::merged`]; per-tenant fingerprint
/// caches (the serve daemon's read path) come from
/// [`ShardedLedger::tenant_view`].
#[derive(Debug, Clone, Default)]
pub struct ShardedLedger {
    /// Every discovered shard, sorted by `(tenant, system)`.
    pub shards: Vec<LedgerShard>,
    /// All shard records merged in shard order, re-stamped 1-based.
    pub merged: LedgerLoad,
    /// Tenant of `merged.runs[i]`, index-parallel with the merged runs.
    pub tenants: Vec<String>,
}

impl ShardedLedger {
    /// Discovers and loads every `<tenant>/<system>.jsonl` shard under
    /// `root`. Non-directories at the top level and non-`.jsonl` files
    /// inside tenant directories are ignored; corrupt lines are skipped
    /// and counted exactly as [`load_ledger`] counts them. An empty or
    /// missing root yields an empty view, not an error — a daemon's first
    /// boot has no history yet.
    pub fn load(root: &Path, sink: &TelemetrySink) -> Result<ShardedLedger, String> {
        let mut sharded = ShardedLedger::default();
        let entries = match std::fs::read_dir(root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(sharded),
            Err(e) => return Err(format!("cannot read shard root `{}`: {e}", root.display())),
        };
        let mut tenant_dirs: Vec<std::path::PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        tenant_dirs.sort();
        for tenant_dir in tenant_dirs {
            let tenant = tenant_dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let mut shard_files: Vec<std::path::PathBuf> = std::fs::read_dir(&tenant_dir)
                .map_err(|e| format!("cannot read shard dir `{}`: {e}", tenant_dir.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_file() && p.extension().and_then(|e| e.to_str()) == Some("jsonl"))
                .collect();
            shard_files.sort();
            for path in shard_files {
                let system = path
                    .file_stem()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default()
                    .to_string();
                let load = load_ledger(&path, sink)?;
                sharded.shards.push(LedgerShard {
                    tenant: tenant.clone(),
                    system,
                    path,
                    runs: load.runs.len(),
                    skipped: load.skipped,
                });
                sharded.merged.skipped += load.skipped;
                for mut run in load.runs {
                    run.sequence = sharded.merged.runs.len() as u64 + 1;
                    sharded.merged.runs.push(run);
                    sharded.tenants.push(tenant.clone());
                }
            }
        }
        Ok(sharded)
    }

    /// The merged view restricted to one tenant's shards, re-stamped with
    /// consecutive 1-based sequences — the ledger a fingerprint lookup for
    /// that tenant's submissions resolves against (tenant isolation: a
    /// tenant's cache hits come only from its own measurements).
    pub fn tenant_view(&self, tenant: &str) -> LedgerLoad {
        let mut load = LedgerLoad::default();
        for shard in self.shards.iter().filter(|s| s.tenant == tenant) {
            load.skipped += shard.skipped;
        }
        for (run, run_tenant) in self.merged.runs.iter().zip(&self.tenants) {
            if run_tenant == tenant {
                let mut run = run.clone();
                run.sequence = load.runs.len() as u64 + 1;
                load.runs.push(run);
            }
        }
        load
    }

    /// Tenant names with at least one shard, sorted.
    pub fn tenant_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.shards.iter().map(|s| s.tenant.as_str()).collect();
        names.dedup();
        names
    }

    /// Total records across all shards.
    pub fn len(&self) -> usize {
        self.merged.runs.len()
    }

    /// True when no shard holds a record.
    pub fn is_empty(&self) -> bool {
        self.merged.runs.is_empty()
    }
}
