//! System profiles: the `configs/<system>/` directories (Figure 1a).
//!
//! Each profile bundles the four system-specific files of Table 1's middle
//! column — compiler definitions, package/external definitions, named Spack
//! definitions (Figure 9), and scheduler/launcher variables (Figure 12) —
//! plus the simulated machine the system runs on.

use benchpark_cluster::Machine;
use benchpark_concretizer::SiteConfig;
use benchpark_spack::ConfigScopes;

/// One HPC system as Benchpark sees it.
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// System name (`cts1`, `ats2`, `ats4`, `cloud-c5`).
    pub name: String,
    /// `compilers.yaml` text.
    pub compilers_yaml: String,
    /// `packages.yaml` text (externals, providers, target).
    pub packages_yaml: String,
    /// `spack.yaml` text: named definitions (Figure 9).
    pub spack_yaml: String,
    /// `variables.yaml` text: scheduler + launcher (Figure 12).
    pub variables_yaml: String,
}

impl SystemProfile {
    /// The simulated machine behind this profile.
    pub fn machine(&self) -> Machine {
        Machine::preset(&self.name).expect("profiles exist only for preset machines")
    }

    /// Lowers the profile to the concretizer's site configuration.
    pub fn site_config(&self) -> SiteConfig {
        let mut scopes = ConfigScopes::new();
        scopes
            .push_scope(
                &self.name,
                &[
                    ("compilers.yaml", &self.compilers_yaml),
                    ("packages.yaml", &self.packages_yaml),
                ],
            )
            .expect("builtin system configs must parse");
        scopes.site_config()
    }

    /// All built-in system profiles.
    pub fn all() -> Vec<SystemProfile> {
        vec![
            SystemProfile::cts1(),
            SystemProfile::ats2(),
            SystemProfile::ats4(),
            SystemProfile::cloud_c5(),
        ]
    }

    /// Looks up a profile by system name.
    pub fn by_name(name: &str) -> Option<SystemProfile> {
        SystemProfile::all().into_iter().find(|s| s.name == name)
    }

    /// `cts1`: Intel Xeon + MVAPICH2 + MKL under Slurm (§4 system 1).
    /// `packages.yaml` is Figure 4 verbatim plus target/provider policy;
    /// `variables.yaml` is Figure 12 verbatim.
    pub fn cts1() -> SystemProfile {
        SystemProfile {
            name: "cts1".to_string(),
            compilers_yaml: r#"compilers:
- compiler:
    spec: gcc@12.1.1
    prefix: /usr/tce/packages/gcc/gcc-12.1.1
- compiler:
    spec: intel@2021.6.0
    prefix: /usr/tce/packages/intel/intel-2021.6.0
"#
            .to_string(),
            packages_yaml: r#"packages:
  all:
    target: [skylake_avx512]
  blas:
    externals:
    - spec: intel-oneapi-mkl@2022.1.0
      prefix: /path/to/intel-oneapi-mkl
    buildable: false
  lapack:
    externals:
    - spec: intel-oneapi-mkl@2022.1.0
      prefix: /path/to/intel-oneapi-mkl
    buildable: false
  mpi:
    externals:
    - spec: mvapich2@2.3.7-gcc12.1.1-magic
      prefix: /path/to/mvapich2
    buildable: false
"#
            .to_string(),
            spack_yaml: r#"spack:
  packages:
    default-compiler:
      spack_spec: gcc@12.1.1
    default-mpi:
      spack_spec: mvapich2@2.3.7-gcc12.1.1
    gcc1211:
      spack_spec: gcc@12.1.1
    lapack:
      spack_spec: intel-oneapi-mkl@2022.1.0
    mpi-compilers:
      spack_spec: mvapich2@2.3.7-compilers
"#
            .to_string(),
            variables_yaml: r#"variables:
  mpi_command: 'srun -N {n_nodes} -n {n_ranks}'
  batch_submit: 'sbatch {execute_experiment}'
  batch_nodes: '#SBATCH -N {n_nodes}'
  batch_ranks: '#SBATCH -n {n_ranks}'
  batch_timeout: '#SBATCH -t {batch_time}:00'
  compilers: [gcc1211, intel202160classic]
"#
            .to_string(),
        }
    }

    /// `ats2`: Power9 + V100 + Spectrum MPI + ESSL under LSF (§4 system 2).
    pub fn ats2() -> SystemProfile {
        SystemProfile {
            name: "ats2".to_string(),
            compilers_yaml: r#"compilers:
- compiler:
    spec: gcc@8.5.0
    prefix: /usr/tce/packages/gcc/gcc-8.5.0
- compiler:
    spec: xl@16.1.1
    prefix: /usr/tce/packages/xl/xl-16.1.1
"#
            .to_string(),
            packages_yaml: r#"packages:
  all:
    target: [power9le]
  blas:
    externals:
    - spec: essl@6.3.0
      prefix: /usr/tcetmp/packages/essl
    buildable: false
  lapack:
    externals:
    - spec: essl@6.3.0
      prefix: /usr/tcetmp/packages/essl
    buildable: false
  mpi:
    externals:
    - spec: spectrum-mpi@10.3.1.2
      prefix: /usr/tce/packages/spectrum-mpi
    buildable: false
  cuda:
    externals:
    - spec: cuda@11.7.0
      prefix: /usr/tce/packages/cuda-11.7.0
    buildable: false
"#
            .to_string(),
            spack_yaml: r#"spack:
  packages:
    default-compiler:
      spack_spec: gcc@8.5.0
    default-mpi:
      spack_spec: spectrum-mpi@10.3.1.2
    lapack:
      spack_spec: essl@6.3.0
"#
            .to_string(),
            variables_yaml: r#"variables:
  mpi_command: 'jsrun -n {n_ranks} -a 1'
  batch_submit: 'bsub {execute_experiment}'
  batch_nodes: '#BSUB -nnodes {n_nodes}'
  batch_ranks: '#BSUB -n {n_ranks}'
  batch_timeout: '#BSUB -W {batch_time}'
  compilers: [gcc850, xl1611]
"#
            .to_string(),
        }
    }

    /// `ats4` EAS: Trento + MI250X + Cray MPICH under Flux (§4 system 3).
    pub fn ats4() -> SystemProfile {
        SystemProfile {
            name: "ats4".to_string(),
            compilers_yaml: r#"compilers:
- compiler:
    spec: gcc@12.1.1
    prefix: /opt/cray/pe/gcc/12.1.1
- compiler:
    spec: rocmcc@5.2.0
    prefix: /opt/rocm-5.2.0
"#
            .to_string(),
            packages_yaml: r#"packages:
  all:
    target: [zen3]
  mpi:
    externals:
    - spec: cray-mpich@8.1.16
      prefix: /opt/cray/pe/mpich/8.1.16
    buildable: false
  hip:
    externals:
    - spec: hip@5.2.0
      prefix: /opt/rocm-5.2.0
    buildable: false
  blas:
    providers: [openblas]
"#
            .to_string(),
            spack_yaml: r#"spack:
  packages:
    default-compiler:
      spack_spec: gcc@12.1.1
    default-mpi:
      spack_spec: cray-mpich@8.1.16
    lapack:
      spack_spec: openblas@0.3.20
"#
            .to_string(),
            variables_yaml: r#"variables:
  mpi_command: 'flux run -N {n_nodes} -n {n_ranks}'
  batch_submit: 'flux batch {execute_experiment}'
  batch_nodes: '#flux: -N {n_nodes}'
  batch_ranks: '#flux: -n {n_ranks}'
  batch_timeout: '#flux: -t {batch_time}m'
  compilers: [gcc1211, rocmcc520]
"#
            .to_string(),
        }
    }

    /// `cloud-c5`: the §7.2 cloud pool — everything built from source, no
    /// blessed externals, Slurm front-end. Its machine masks AVX-512 (§7.1).
    pub fn cloud_c5() -> SystemProfile {
        SystemProfile {
            name: "cloud-c5".to_string(),
            compilers_yaml: r#"compilers:
- compiler:
    spec: gcc@12.1.1
    prefix: /usr
"#
            .to_string(),
            packages_yaml: r#"packages:
  all:
    target: [skylake]
  mpi:
    providers: [openmpi]
  blas:
    providers: [openblas]
  lapack:
    providers: [openblas]
"#
            .to_string(),
            spack_yaml: r#"spack:
  packages:
    default-compiler:
      spack_spec: gcc@12.1.1
    default-mpi:
      spack_spec: openmpi@4.1.4
    lapack:
      spack_spec: openblas@0.3.20
"#
            .to_string(),
            variables_yaml: r#"variables:
  mpi_command: 'srun -N {n_nodes} -n {n_ranks}'
  batch_submit: 'sbatch {execute_experiment}'
  batch_nodes: '#SBATCH -N {n_nodes}'
  batch_ranks: '#SBATCH -n {n_ranks}'
  batch_timeout: '#SBATCH -t {batch_time}:00'
  compilers: [gcc1211]
"#
            .to_string(),
        }
    }
}
