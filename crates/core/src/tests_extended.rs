//! Tests for the service-life features: procurement studies, regression
//! tracking, result sharing, usage metrics, and dashboard plots.

use crate::{
    ascii_plot, detect_regression, Benchpark, MetricsDatabase, ProcurementStudy, WorkloadSpec,
};
use benchpark_cluster::FaultSpec;
use benchpark_ramble::ExperimentStatus;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("benchpark-ext-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Procurement (§1's motivating use case)
// ---------------------------------------------------------------------------

#[test]
fn procurement_study_ranks_candidates() {
    let workloads = vec![
        WorkloadSpec::uniform("amg2023", "openmp", "solve_fom", true, 3.0)
            .with_variant("ats2", "cuda")
            .with_variant("ats4", "rocm"),
        WorkloadSpec::uniform("stream", "openmp", "triad_bw", true, 1.0),
    ];
    let study = ProcurementStudy::new(workloads, &["cts1", "ats2", "ats4"]);
    let db = MetricsDatabase::new();
    let report = study.run(temp_dir("procurement"), &db).unwrap();

    // every (workload, system) cell filled
    assert_eq!(report.measurements.len(), 6);
    // scores are normalized: max per workload is exactly 1
    for workload in &report.workloads {
        let max = report
            .systems
            .iter()
            .filter_map(|s| report.measurements.get(&(workload.clone(), s.clone())))
            .map(|m| m.score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 1.0).abs() < 1e-12, "{workload}: max score {max}");
    }
    // AMG is GPU-bound: the MI250X system wins on raw performance
    assert_eq!(report.winner(), Some("ats4"), "{}", report.render());
    // aggregates populated and bounded
    for system in &report.systems {
        let agg = report.aggregate[system];
        assert!(agg > 0.0 && agg <= 1.0 + 1e-9);
    }
    // energy was accounted
    let any = report.measurements.values().next().unwrap();
    assert!(any.energy_kwh > 0.0);
    assert!(any.fom_value > 0.0);
    // results landed in the shared database
    assert!(db.len() >= 6);
    let rendered = report.render();
    assert!(rendered.contains("performance winner"));
    assert!(rendered.contains("aggregate per kWh"));
}

#[test]
fn procurement_lower_is_better_foms() {
    // score by solve_time (lower is better): ordering must invert vs DOF/s
    let workloads = vec![
        WorkloadSpec::uniform("amg2023", "openmp", "solve_time", false, 1.0)
            .with_variant("ats2", "cuda")
            .with_variant("ats4", "rocm"),
    ];
    let study = ProcurementStudy::new(workloads, &["cts1", "ats4"]);
    let db = MetricsDatabase::new();
    let report = study.run(temp_dir("procurement-lib"), &db).unwrap();
    assert_eq!(report.winner(), Some("ats4"));
    let cts = &report.measurements[&("amg2023".to_string(), "cts1".to_string())];
    let ats4 = &report.measurements[&("amg2023".to_string(), "ats4".to_string())];
    assert!(ats4.fom_value < cts.fom_value, "ats4 should solve faster");
    assert!(cts.score < 1.0 && (ats4.score - 1.0).abs() < 1e-12);
}

#[test]
fn procurement_unknown_fom_errors() {
    let workloads = vec![WorkloadSpec::uniform(
        "stream",
        "openmp",
        "nonexistent_fom",
        true,
        1.0,
    )];
    let study = ProcurementStudy::new(workloads, &["cts1"]);
    let err = study
        .run(temp_dir("procurement-bad"), &MetricsDatabase::new())
        .unwrap_err();
    assert!(err.contains("nonexistent_fom"), "{err}");
}

// ---------------------------------------------------------------------------
// Regression tracking over time (§1 service phase)
// ---------------------------------------------------------------------------

/// Runs the stream suite once on the given machine fault state and records
/// into the database.
fn run_stream_epoch(db: &MetricsDatabase, degrade: Option<f64>, tag: &str) {
    let benchpark = Benchpark::new();
    let profile = crate::SystemProfile::cts1();
    let mut machine = profile.machine();
    if let Some(factor) = degrade {
        machine = FaultSpec::DegradeMemoryBandwidth(factor).apply(machine);
    }
    let mut ws = benchpark
        .setup_workspace_on("stream", "openmp", "cts1", temp_dir(tag), Some(machine))
        .unwrap();
    ws.run().unwrap();
    let analysis = ws.analyze(&benchpark).unwrap();
    db.record(
        "cts1",
        "stream",
        "openmp",
        &ws.manifest(),
        &analysis.results,
    );
}

#[test]
fn regression_detected_after_hardware_fault() {
    let db = MetricsDatabase::new();
    // healthy history: 4 epochs
    for i in 0..4 {
        run_stream_epoch(&db, None, &format!("healthy-{i}"));
    }
    let healthy =
        detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10).expect("enough history");
    assert!(!healthy.regressed, "{}", healthy.render());
    assert!(
        healthy.change.abs() < 0.05,
        "healthy drift too large: {}",
        healthy.render()
    );

    // a DIMM goes bad: memory bandwidth halves
    run_stream_epoch(&db, Some(0.5), "degraded");
    let report =
        detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10).expect("enough history");
    assert!(report.regressed, "{}", report.render());
    assert!(report.change < -0.3, "expected ~-50%: {}", report.render());
    assert!(report.render().contains("REGRESSION"));
}

#[test]
fn regression_needs_history() {
    let db = MetricsDatabase::new();
    run_stream_epoch(&db, None, "short-0");
    assert!(detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.1).is_none());
    run_stream_epoch(&db, None, "short-1");
    assert!(detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.1).is_none());
    run_stream_epoch(&db, None, "short-2");
    assert!(detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.1).is_some());
}

#[test]
fn lower_is_better_regression_direction() {
    // for a latency FOM, an *increase* is the regression
    let db = MetricsDatabase::new();
    let mk = |value: f64| benchpark_ramble::ExperimentResult {
        experiment: "e".to_string(),
        application: "osu-bcast".to_string(),
        workload: "bcast".to_string(),
        status: ExperimentStatus::Success,
        foms: vec![benchpark_ramble::FomValue {
            name: "avg_latency".to_string(),
            value: value.to_string(),
            units: "us".to_string(),
            context: Default::default(),
        }],
        criteria: Vec::new(),
        variables: Default::default(),
        profile: Vec::new(),
        cached: false,
    };
    for _ in 0..4 {
        db.record("cts1", "osu-bcast", "scaling", "m", &[mk(10.0)]);
    }
    db.record("cts1", "osu-bcast", "scaling", "m", &[mk(25.0)]);
    let report = detect_regression(&db, "osu-bcast", "cts1", "avg_latency", false, 0.10).unwrap();
    assert!(report.regressed, "{}", report.render());
}

// ---------------------------------------------------------------------------
// Result sharing (§5 collaboration) and usage metrics
// ---------------------------------------------------------------------------

#[test]
fn export_import_roundtrip() {
    let db = MetricsDatabase::new();
    run_stream_epoch(&db, None, "share");
    let exported = db.export_text();
    assert!(exported.contains("benchpark_results"));
    assert!(exported.contains("triad_bw"));
    assert!(exported.contains("manifest"));

    // a collaborator at another center imports the shared results
    let other = MetricsDatabase::new();
    let imported = other.import_text(&exported).unwrap();
    assert_eq!(imported, db.len());
    assert_eq!(other.len(), db.len());
    // FOM series identical after the round trip
    assert_eq!(
        db.fom_series("stream", "cts1", "triad_bw", "n_threads"),
        other.fom_series("stream", "cts1", "triad_bw", "n_threads"),
    );
    // and re-exporting reproduces the same record count
    let again = other.export_text();
    let third = MetricsDatabase::new();
    assert_eq!(third.import_text(&again).unwrap(), imported);
}

#[test]
fn import_preserves_local_history_ordering() {
    let db = MetricsDatabase::new();
    run_stream_epoch(&db, None, "merge-local");
    let local_max = db.all().iter().map(|r| r.sequence).max().unwrap();

    let remote = MetricsDatabase::new();
    run_stream_epoch(&remote, None, "merge-remote");
    db.import_text(&remote.export_text()).unwrap();
    // imported records sequence strictly after the local ones
    let imported_min = db
        .all()
        .iter()
        .filter(|r| r.sequence > local_max)
        .map(|r| r.sequence)
        .min()
        .unwrap();
    assert!(imported_min > local_max);
}

#[test]
fn import_rejects_garbage() {
    let db = MetricsDatabase::new();
    assert!(db.import_text("not: relevant\n").is_err());
    assert!(db.import_text("{{{{").is_err());
}

#[test]
fn usage_counts_rank_benchmarks() {
    let db = MetricsDatabase::new();
    run_stream_epoch(&db, None, "usage-1");
    run_stream_epoch(&db, None, "usage-2");
    let benchpark = Benchpark::new();
    let mut ws = benchpark
        .setup_workspace("lulesh", "openmp", "cts1", temp_dir("usage-lulesh"))
        .unwrap();
    ws.run().unwrap();
    let analysis = ws.analyze(&benchpark).unwrap();
    db.record(
        "cts1",
        "lulesh",
        "openmp",
        &ws.manifest(),
        &analysis.results,
    );

    let usage = db.usage_counts();
    assert_eq!(usage[0].0, "stream"); // accessed most heavily
    assert!(usage.iter().any(|(b, _)| b == "lulesh"));
    assert!(usage[0].1 > usage.last().unwrap().1);
}

// ---------------------------------------------------------------------------
// Dashboard plots
// ---------------------------------------------------------------------------

#[test]
fn ascii_plot_renders_points_and_model() {
    let points: Vec<(f64, f64)> = (1..=8)
        .map(|i| (i as f64 * 432.0, 0.0466 * i as f64 * 432.0 - 0.64))
        .collect();
    let model = |p: f64| 0.0466 * p - 0.64;
    let plot = ascii_plot("MPI_Bcast on CTS", &points, Some(&model), 60, 12);
    assert!(plot.contains("MPI_Bcast on CTS"));
    assert!(plot.contains('●'), "data points must render:\n{plot}");
    assert!(plot.contains('·'), "model line must render:\n{plot}");
    assert!(plot.lines().count() >= 14);
}

#[test]
fn ascii_plot_degenerate_inputs() {
    assert!(ascii_plot("empty", &[], None, 40, 10).contains("no data"));
    assert!(ascii_plot("tiny", &[(1.0, 1.0)], None, 4, 2).contains("no data"));
    let flat = ascii_plot("flat", &[(1.0, 5.0), (2.0, 5.0)], None, 20, 6);
    assert!(flat.contains('●'));
    let same_x = ascii_plot("same-x", &[(1.0, 1.0), (1.0, 2.0)], None, 20, 6);
    assert!(same_x.contains("degenerate"));
}
