//! Terminal plots for the dashboard (§5: *"The interactive dashboard could
//! be designed with some pre-built plots and visualizations"*). Figure 14 is
//! a scatter + model line; this renders the same thing in text.

/// Renders an ASCII scatter plot of `(x, y)` points, optionally overlaying a
/// model curve (drawn with `·`, data points with `●`).
pub fn ascii_plot(
    title: &str,
    points: &[(f64, f64)],
    model: Option<&dyn Fn(f64) -> f64>,
    width: usize,
    height: usize,
) -> String {
    if points.is_empty() || width < 8 || height < 4 {
        return format!("{title}\n(no data)\n");
    }
    let x_min = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let mut y_min = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let mut y_max = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    if let Some(f) = model {
        for i in 0..width {
            let x = x_min + (x_max - x_min) * i as f64 / (width - 1) as f64;
            let y = f(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if (y_max - y_min).abs() < 1e-30 {
        y_max = y_min + 1.0;
    }
    if (x_max - x_min).abs() < 1e-30 {
        return format!("{title}\n(degenerate x range)\n");
    }

    let mut grid = vec![vec![' '; width]; height];
    let to_col = |x: f64| (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
    let to_row = |y: f64| {
        let r = ((y - y_min) / (y_max - y_min)) * (height - 1) as f64;
        height - 1 - (r.round() as usize).min(height - 1)
    };
    if let Some(f) = model {
        for (col, x) in
            (0..width).map(|c| (c, x_min + (x_max - x_min) * c as f64 / (width - 1) as f64))
        {
            let y = f(x);
            if y.is_finite() && y >= y_min && y <= y_max {
                grid[to_row(y)][col] = '·';
            }
        }
    }
    for (x, y) in points {
        grid[to_row(*y)][to_col(*x)] = '●';
    }

    let mut out = format!("{title}\n");
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>10.3e} |")
        } else if i == height - 1 {
            format!("{y_min:>10.3e} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}  {:<width$}\n",
        "",
        format!("{x_min:.0} … {x_max:.0}"),
        width = width
    ));
    out
}
