//! The Figure 14 pipeline: scaling study → Thicket → Extra-P model.
//!
//! The paper's Figure 14 shows *"an Extra-P model for performance of a
//! function in one of our applications: … performance measurements of an
//! MPI_Bcast function on the CTS architecture"*, with the fitted model
//! `-0.6355857931034596 + 0.04660217702356169 · p^(1)`. This module
//! regenerates that experiment on the simulated CTS system — and, as
//! ablation A4, on alternative broadcast algorithms, where the fitted model
//! flips to logarithmic.

use crate::driver::Benchpark;
use crate::metrics::MetricsDatabase;
use crate::systems::SystemProfile;
use benchpark_cluster::BcastAlgorithm;
use benchpark_perf::{extrap, ScalingModel, Thicket};
use std::path::Path;

/// The outcome of a broadcast scaling study.
#[derive(Debug, Clone)]
pub struct ScalingStudy {
    /// `(nprocs, MPI_Bcast seconds)` measurements.
    pub points: Vec<(f64, f64)>,
    /// The fitted Extra-P model.
    pub model: ScalingModel,
    /// The broadcast algorithm the machine used.
    pub algorithm: BcastAlgorithm,
}

impl ScalingStudy {
    /// Renders the study in Figure 14's style.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Extra-P model for MPI_Bcast ({:?} algorithm):\n  {}\n  complexity: {}  (R^2 = {:.6})\n\n  nprocs    measured(s)    model(s)\n",
            self.algorithm, self.model, self.model.complexity(), self.model.r_squared
        );
        for (p, y) in &self.points {
            out.push_str(&format!(
                "  {:>6}    {:>11.6}    {:>8.6}\n",
                p,
                y,
                self.model.predict(*p)
            ));
        }
        out
    }
}

/// Runs the osu-bcast scaling experiment on `system` (optionally overriding
/// the machine's broadcast algorithm), records results into `db`, and fits
/// the Extra-P model.
pub fn bcast_scaling_study(
    system: &str,
    algorithm: Option<BcastAlgorithm>,
    workspace_dir: impl AsRef<Path>,
    db: &MetricsDatabase,
) -> Result<ScalingStudy, String> {
    let benchpark = Benchpark::new();
    let profile =
        SystemProfile::by_name(system).ok_or_else(|| format!("unknown system `{system}`"))?;
    let mut machine = profile.machine();
    if let Some(alg) = algorithm {
        machine.network.bcast = alg;
    }
    let used_algorithm = machine.network.bcast;

    let mut ws = benchpark.setup_workspace_on(
        "osu-bcast",
        "scaling",
        system,
        workspace_dir,
        Some(machine),
    )?;
    ws.run().map_err(|e| e.to_string())?;
    let analysis = ws.analyze(&benchpark).map_err(|e| e.to_string())?;
    db.record(
        system,
        "osu-bcast",
        "scaling",
        &ws.manifest(),
        &analysis.results,
    );

    // compose profiles from this study's results only (the shared metrics
    // database may hold other algorithms' runs) and extract the MPI_Bcast
    // series against nprocs
    let profiles: Vec<benchpark_perf::Profile> = analysis
        .results
        .iter()
        .map(|r| {
            benchpark_perf::Profile::from_parts(
                r.profile.clone(),
                r.variables.iter().map(|(k, v)| (k.clone(), v.clone())),
            )
        })
        .collect();
    let thicket = Thicket::from_profiles(profiles);
    let points = thicket.series("n_ranks", "MPI_Bcast");
    if points.len() < 3 {
        return Err(format!(
            "scaling study produced only {} usable points",
            points.len()
        ));
    }
    let model = extrap::fit(&points).ok_or("model fitting failed")?;
    Ok(ScalingStudy {
        points,
        model,
        algorithm: used_algorithm,
    })
}
