//! Procurement studies: the paper's §1 motivating use case.
//!
//! *"Benchmarking … helps evaluate which of the proposed HPC systems will
//! result in the best performance for a particular HPC center workload, and
//! is useful for co-designing future HPC system procurements."*
//!
//! A [`ProcurementStudy`] takes the center's workload mix (benchmarks with
//! FOMs and weights), runs it on every candidate system through the full
//! Benchpark pipeline, and scores the candidates — performance-only and
//! performance-per-watt — producing the comparison table a procurement team
//! would circulate.

use crate::driver::Benchpark;
use crate::metrics::MetricsDatabase;
use std::collections::BTreeMap;
use std::path::Path;

/// One entry of the HPC center's workload mix.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub benchmark: String,
    /// Which experiment variant to use per system (keyed by system name;
    /// `*` is the fallback) — GPU systems run `cuda`/`rocm` builds.
    pub variant_by_system: BTreeMap<String, String>,
    /// The figure of merit to score.
    pub fom: String,
    /// True if larger FOM values are better (throughput); false for
    /// latencies/times.
    pub higher_is_better: bool,
    /// Relative importance in the center's mix (weights are normalized).
    pub weight: f64,
}

impl WorkloadSpec {
    /// A workload using the same variant everywhere.
    pub fn uniform(
        benchmark: &str,
        variant: &str,
        fom: &str,
        higher_is_better: bool,
        weight: f64,
    ) -> WorkloadSpec {
        let mut map = BTreeMap::new();
        map.insert("*".to_string(), variant.to_string());
        WorkloadSpec {
            benchmark: benchmark.to_string(),
            variant_by_system: map,
            fom: fom.to_string(),
            higher_is_better,
            weight,
        }
    }

    /// Sets a per-system variant override.
    pub fn with_variant(mut self, system: &str, variant: &str) -> Self {
        self.variant_by_system
            .insert(system.to_string(), variant.to_string());
        self
    }

    fn variant_for(&self, system: &str) -> Option<&str> {
        self.variant_by_system
            .get(system)
            .or_else(|| self.variant_by_system.get("*"))
            .map(String::as_str)
    }
}

/// One candidate's measured numbers for one workload.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Best FOM value achieved across the workload's experiments.
    pub fom_value: f64,
    /// Energy consumed by the workload's jobs, kWh.
    pub energy_kwh: f64,
    /// Relative score in `[0, 1]` (1 = best candidate for this workload).
    pub score: f64,
}

/// The study result.
#[derive(Debug, Clone)]
pub struct ProcurementReport {
    /// Candidate systems, in input order.
    pub systems: Vec<String>,
    /// Workload names, in input order.
    pub workloads: Vec<String>,
    /// `(workload, system)` → measurement.
    pub measurements: BTreeMap<(String, String), Measurement>,
    /// Weighted aggregate score per system (higher = better).
    pub aggregate: BTreeMap<String, f64>,
    /// Weighted aggregate of score-per-kWh (efficiency view).
    pub aggregate_per_watt: BTreeMap<String, f64>,
}

impl ProcurementReport {
    /// The winning system by aggregate performance score.
    pub fn winner(&self) -> Option<&str> {
        self.aggregate
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(name, _)| name.as_str())
    }

    /// The winning system by performance-per-watt.
    pub fn efficiency_winner(&self) -> Option<&str> {
        self.aggregate_per_watt
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(name, _)| name.as_str())
    }

    /// Renders the procurement comparison table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Procurement study: normalized workload scores (1.0 = best)\n\n");
        out.push_str(&format!("{:<24}", "workload"));
        for system in &self.systems {
            out.push_str(&format!("{system:>12}"));
        }
        out.push('\n');
        for workload in &self.workloads {
            out.push_str(&format!("{workload:<24}"));
            for system in &self.systems {
                match self.measurements.get(&(workload.clone(), system.clone())) {
                    Some(m) => out.push_str(&format!("{:>12.3}", m.score)),
                    None => out.push_str(&format!("{:>12}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<24}", "aggregate"));
        for system in &self.systems {
            out.push_str(&format!(
                "{:>12.3}",
                self.aggregate.get(system).copied().unwrap_or(0.0)
            ));
        }
        out.push('\n');
        out.push_str(&format!("{:<24}", "aggregate per kWh"));
        for system in &self.systems {
            out.push_str(&format!(
                "{:>12.3}",
                self.aggregate_per_watt.get(system).copied().unwrap_or(0.0)
            ));
        }
        out.push('\n');
        if let Some(w) = self.winner() {
            out.push_str(&format!("\nperformance winner:  {w}\n"));
        }
        if let Some(w) = self.efficiency_winner() {
            out.push_str(&format!("efficiency winner:   {w}\n"));
        }
        out
    }
}

/// Runs a procurement study over candidate systems.
pub struct ProcurementStudy {
    pub workloads: Vec<WorkloadSpec>,
    pub systems: Vec<String>,
}

impl ProcurementStudy {
    /// Builds a study.
    pub fn new(workloads: Vec<WorkloadSpec>, systems: &[&str]) -> ProcurementStudy {
        ProcurementStudy {
            workloads,
            systems: systems.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Executes every (workload × candidate) through the full pipeline,
    /// recording all results into `db`, and scores the candidates.
    pub fn run(
        &self,
        workspace_root: impl AsRef<Path>,
        db: &MetricsDatabase,
    ) -> Result<ProcurementReport, String> {
        let benchpark = Benchpark::new();
        let root = workspace_root.as_ref();
        let mut raw: BTreeMap<(String, String), (f64, f64)> = BTreeMap::new();

        for workload in &self.workloads {
            for system in &self.systems {
                let Some(variant) = workload.variant_for(system) else {
                    continue;
                };
                let tag = format!("{}-{}-{}", workload.benchmark, variant, system);
                let mut ws = benchpark
                    .setup_workspace(&workload.benchmark, variant, system, root.join(&tag))
                    .map_err(|e| format!("{tag}: {e}"))?;
                ws.run().map_err(|e| format!("{tag}: {e}"))?;
                let analysis = ws.analyze(&benchpark).map_err(|e| format!("{tag}: {e}"))?;
                db.record(
                    system,
                    &workload.benchmark,
                    variant,
                    &ws.manifest(),
                    &analysis.results,
                );

                let best = analysis
                    .successes()
                    .flat_map(|r| r.foms.iter())
                    .filter(|f| f.name == workload.fom)
                    .filter_map(|f| f.as_f64())
                    .fold(f64::NAN, |acc, v| {
                        if acc.is_nan() {
                            v
                        } else if workload.higher_is_better {
                            acc.max(v)
                        } else {
                            acc.min(v)
                        }
                    });
                if best.is_nan() {
                    return Err(format!(
                        "{tag}: FOM `{}` not found in any result",
                        workload.fom
                    ));
                }
                let energy: f64 = ws.cluster.jobs().map(|j| j.energy_kwh).sum();
                raw.insert((workload.benchmark.clone(), system.clone()), (best, energy));
            }
        }

        // normalize per workload and aggregate with weights
        let total_weight: f64 = self.workloads.iter().map(|w| w.weight).sum();
        let mut measurements = BTreeMap::new();
        let mut aggregate: BTreeMap<String, f64> = BTreeMap::new();
        let mut aggregate_per_watt: BTreeMap<String, f64> = BTreeMap::new();
        for workload in &self.workloads {
            let values: Vec<f64> = self
                .systems
                .iter()
                .filter_map(|s| raw.get(&(workload.benchmark.clone(), s.clone())))
                .map(|(v, _)| *v)
                .collect();
            let best = if workload.higher_is_better {
                values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            } else {
                values.iter().copied().fold(f64::INFINITY, f64::min)
            };
            for system in &self.systems {
                let Some((value, energy)) = raw.get(&(workload.benchmark.clone(), system.clone()))
                else {
                    continue;
                };
                let score = if workload.higher_is_better {
                    value / best
                } else {
                    best / value
                };
                measurements.insert(
                    (workload.benchmark.clone(), system.clone()),
                    Measurement {
                        fom_value: *value,
                        energy_kwh: *energy,
                        score,
                    },
                );
                *aggregate.entry(system.clone()).or_insert(0.0) +=
                    score * workload.weight / total_weight;
                let per_watt = score / energy.max(1e-9);
                *aggregate_per_watt.entry(system.clone()).or_insert(0.0) +=
                    per_watt * workload.weight / total_weight;
            }
        }
        // normalize the per-watt aggregate to 1.0 for readability
        let max_pw = aggregate_per_watt
            .values()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if max_pw.is_finite() && max_pw > 0.0 {
            for v in aggregate_per_watt.values_mut() {
                *v /= max_pw;
            }
        }

        Ok(ProcurementReport {
            systems: self.systems.clone(),
            workloads: self.workloads.iter().map(|w| w.benchmark.clone()).collect(),
            measurements,
            aggregate,
            aggregate_per_watt,
        })
    }
}
