//! Content-addressed experiment fingerprints — the key that makes
//! re-benchmarking incremental (exaCB's insight: a CI push should cost
//! O(changes), not O(everything)).
//!
//! A fingerprint is a deterministic 64-bit FNV-1a hash over everything that
//! can change an experiment's *measured result*:
//!
//! * the concrete software spec (the concretizer's DAG content hash, which
//!   already folds in package recipes, variants, versions, and dependency
//!   resolution),
//! * the system profile (all four `configs/<system>/` YAML texts plus the
//!   profile name),
//! * the experiment template (`ramble.yaml` text, byte-for-byte),
//! * the application definition (executable templates, FOM regexes,
//!   success criteria — anything that shapes extraction),
//! * the resolved per-experiment variables and raw environment-variable
//!   templates (workspace-location-derived variables excluded, so the same
//!   experiment in two different workspace directories shares one
//!   fingerprint — see
//!   [`benchpark_ramble::ExperimentInstance::provenance_variables`]).
//!
//! Any edit to any input — a recipe bump, a template tweak, a system config
//! change — yields a different hash, which simply *misses* in the cache and
//! reruns. There is no invalidation protocol to get wrong; the address *is*
//! the validity check (the same property the binary cache and the
//! concretizer's `dag_hash` already rely on).
//!
//! [`FingerprintIndex`] is the read side: built from a loaded run ledger, it
//! maps fingerprints to their most recent **successful, freshly executed**
//! record. Failed experiments never satisfy a lookup (a crash is not a
//! result worth replaying), and neither do spliced cache hits (only real
//! measurements re-seed the cache).

use crate::ledger::LedgerLoad;
use benchpark_ramble::{ExperimentResult, ExperimentStatus};
use std::collections::BTreeMap;
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// A content-addressed experiment identity: 64-bit FNV-1a over the framed
/// fingerprint inputs, rendered as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The raw hash value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The canonical hex rendering (what the ledger stores).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Accumulates labelled fields into a [`Fingerprint`].
///
/// Every field is framed as `label 0xFF len(value) value`, so neither
/// concatenation ambiguity (`("ab","c")` vs `("a","bc")`) nor an empty
/// value can collide with a differently-shaped input. Field order matters
/// by design: the driver feeds fields in one fixed order.
///
/// ```
/// use benchpark_core::fingerprint::FingerprintBuilder;
/// let a = FingerprintBuilder::new().field("template", "x: 1").finish();
/// let b = FingerprintBuilder::new().field("template", "x: 1").finish();
/// let c = FingerprintBuilder::new().field("template", "x: 2").finish();
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    hash: u64,
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintBuilder {
    /// An empty builder (FNV-1a offset basis).
    pub fn new() -> FingerprintBuilder {
        FingerprintBuilder { hash: FNV_OFFSET }
    }

    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes one labelled text field into the hash.
    pub fn field(mut self, label: &str, value: &str) -> FingerprintBuilder {
        self.bytes(label.as_bytes());
        self.bytes(&[0xFF]);
        self.bytes(&(value.len() as u64).to_le_bytes());
        self.bytes(value.as_bytes());
        self
    }

    /// Mixes a whole key→value map (labelled per key, in iteration order —
    /// callers pass ordered maps).
    pub fn fields<'a>(
        mut self,
        prefix: &str,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> FingerprintBuilder {
        for (key, value) in pairs {
            self = self.field(&format!("{prefix}.{key}"), value);
        }
        self
    }

    /// Finalizes the fingerprint.
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.hash)
    }
}

/// One cached experiment: the most recent successful ledger record for a
/// fingerprint, with enough provenance to render and splice it.
#[derive(Debug, Clone)]
pub struct CachedExperiment {
    /// The fingerprint, canonical hex.
    pub fingerprint: String,
    /// Ledger sequence of the run the result came from.
    pub sequence: u64,
    /// System the cached measurement executed on.
    pub system: String,
    /// Benchmark of the cached run.
    pub benchmark: String,
    /// Variant of the cached run.
    pub variant: String,
    /// The persisted result (status is always `Success`).
    pub result: ExperimentResult,
}

/// The fingerprint → cached-result index over a loaded ledger.
///
/// Later records win: reruns (e.g. after `--force`) supersede earlier
/// measurements for the same fingerprint. Only successful, non-spliced
/// results are indexed, so a failed or merely-replayed record can never
/// satisfy a lookup.
#[derive(Debug, Clone, Default)]
pub struct FingerprintIndex {
    entries: BTreeMap<String, CachedExperiment>,
}

impl FingerprintIndex {
    /// An empty index (every lookup misses).
    pub fn new() -> FingerprintIndex {
        FingerprintIndex::default()
    }

    /// Indexes every fingerprinted successful result of `load`, in ledger
    /// order (so the latest record for a fingerprint wins). Schema-1
    /// records carry no fingerprints and contribute nothing.
    pub fn from_ledger(load: &LedgerLoad) -> FingerprintIndex {
        let mut index = FingerprintIndex::new();
        for run in &load.runs {
            index.index_run(run);
        }
        index
    }

    /// Indexes one run's fingerprinted successful results, superseding any
    /// earlier entry for the same fingerprint. This is the incremental
    /// update path a long-lived daemon uses after each `append_run`: the
    /// in-memory index tracks the shard without replaying it from disk.
    pub fn index_run(&mut self, run: &crate::ledger::RunRecord) {
        for (experiment, fingerprint) in &run.fingerprints {
            if fingerprint.is_empty() {
                continue;
            }
            let Some(result) = run.results.iter().find(|r| &r.experiment == experiment) else {
                continue;
            };
            if result.status != ExperimentStatus::Success || result.cached {
                continue;
            }
            self.entries.insert(
                fingerprint.clone(),
                CachedExperiment {
                    fingerprint: fingerprint.clone(),
                    sequence: run.sequence,
                    system: run.system.clone(),
                    benchmark: run.benchmark.clone(),
                    variant: run.variant.clone(),
                    result: result.clone(),
                },
            );
        }
    }

    /// The cached experiment for `fingerprint`, if any.
    pub fn lookup(&self, fingerprint: &Fingerprint) -> Option<&CachedExperiment> {
        self.entries.get(&fingerprint.hex())
    }

    /// Like [`FingerprintIndex::lookup`], keyed by the hex rendering.
    pub fn lookup_hex(&self, hex: &str) -> Option<&CachedExperiment> {
        self.entries.get(hex)
    }

    /// All cached entries, sorted by fingerprint.
    pub fn iter(&self) -> impl Iterator<Item = &CachedExperiment> {
        self.entries.values()
    }

    /// Number of distinct cached fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no fingerprint is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
