//! The Benchpark driver: Figure 1c's nine-step workflow as a library.

use crate::fingerprint::{Fingerprint, FingerprintBuilder, FingerprintIndex};
use crate::systems::SystemProfile;
use crate::templates::experiment_template;
use benchpark_cluster::{AppModelFn, BinaryInfo, Cluster, FaultPlan, Machine, ProgrammingModel};
use benchpark_concretizer::Concretizer;
use benchpark_engine::{Engine, TaskGraph, TaskStatus};
use benchpark_pkg::{AppRepo, Repo};
use benchpark_ramble::ExperimentResult;
use benchpark_ramble::{AnalyzeReport, RambleError, RunOutput, SetupReport, Workspace};
use benchpark_resilience::RetryPolicy;
use benchpark_spack::{BinaryCache, InstallDatabase, InstallOptions, Installer};
use benchpark_spec::VariantValue;
use benchpark_telemetry::TelemetrySink;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A transcript of the workflow steps executed (Figure 1c's numbering).
#[derive(Debug, Clone, Default)]
pub struct WorkflowLog {
    pub steps: Vec<String>,
}

impl WorkflowLog {
    fn step(&mut self, n: usize, text: impl Into<String>) {
        self.steps.push(format!("step {n}: {}", text.into()));
    }

    /// Renders the transcript.
    pub fn render(&self) -> String {
        self.steps.join("\n")
    }
}

/// The driver: owns the package and application repositories
/// (step 3 of Figure 1c, "Benchpark clones Spack and Ramble").
pub struct Benchpark {
    pub repo: Repo,
    pub app_repo: AppRepo,
    telemetry: TelemetrySink,
    /// Site-wide rolling binary cache (Figure 6's S3 bucket): builds from
    /// workspace setup publish here, and the per-system install in step 7
    /// fetches from it.
    site_cache: BinaryCache,
    /// Transient faults injected into every workspace this driver sets up.
    fault_plan: Option<FaultPlan>,
    /// Parallel build jobs for installs, and the worker-pool width for
    /// [`Benchpark::run_fleet`].
    jobs: usize,
    /// Fingerprint → cached-result index consulted by [`Benchpark::run_fleet`]
    /// (incremental re-benchmarking; `None` = always execute).
    fingerprint_cache: Option<FingerprintIndex>,
    /// When true, cache hits are executed anyway (`--force`).
    force_rerun: bool,
}

impl Default for Benchpark {
    fn default() -> Self {
        Self::new()
    }
}

impl Benchpark {
    /// Step 1: "user clones the Benchpark repository" — instantiates the
    /// built-in package and application repositories (with Benchpark's
    /// `repo/` overlay already applied).
    pub fn new() -> Benchpark {
        Benchpark {
            repo: Repo::builtin(),
            app_repo: AppRepo::builtin(),
            telemetry: TelemetrySink::noop(),
            site_cache: BinaryCache::new(),
            fault_plan: None,
            jobs: InstallOptions::default().jobs,
            fingerprint_cache: None,
            force_rerun: false,
        }
    }

    /// Attaches a fingerprint cache (built from a run ledger): every fleet
    /// experiment whose fingerprint has a valid successful record is
    /// skipped, its cached FOMs spliced into the outcome with a
    /// `cached: true` marker. Pass `force` to execute hits anyway (they are
    /// counted under the `fp.forced` telemetry counter).
    pub fn with_fingerprint_cache(mut self, index: FingerprintIndex, force: bool) -> Benchpark {
        self.fingerprint_cache = Some(index);
        self.force_rerun = force;
        self
    }

    /// Sets the parallel job count: `-j` for every install this driver runs
    /// and the worker-pool width of [`Benchpark::run_fleet`]. Clamped to at
    /// least one. Reports stay byte-identical across job counts for the
    /// outcomes (FOMs, job states); only virtual makespans change.
    pub fn with_jobs(mut self, jobs: usize) -> Benchpark {
        self.jobs = jobs.max(1);
        self
    }

    /// The driver's install options (`jobs` applied over the defaults).
    fn install_options(&self) -> InstallOptions {
        InstallOptions {
            jobs: self.jobs,
            ..InstallOptions::default()
        }
    }

    /// Subjects every workspace this driver sets up to a seeded
    /// [`FaultPlan`]: flaky binary-cache fetches strike the site cache
    /// (retried with backoff, circuit-broken to source builds on sustained
    /// outage), and node failures / transient job timeouts strike the booted
    /// cluster (preempted jobs requeue onto survivors). Replayable: the same
    /// plan produces the same fault sequence.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Benchpark {
        if let Some(injector) = plan.cache_injector() {
            self.site_cache.inject_faults(injector);
        }
        self.fault_plan = Some(plan);
        self
    }

    /// The retry policy installers use for binary-cache fetches when a fault
    /// plan is active: a few attempts with exponential backoff, seeded from
    /// the plan so backoff jitter replays too.
    fn cache_retry_policy(plan: &FaultPlan) -> RetryPolicy {
        RetryPolicy::new(3)
            .with_backoff(0.5, 2.0)
            .with_jitter(0.1, plan.seed())
    }

    /// Routes pipeline telemetry (setup/run/analyze spans and every
    /// substrate's counters) to `sink` — the `benchpark trace` entry point.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Benchpark {
        self.telemetry = sink;
        self
    }

    /// Warn-only static analysis over a composed artifact set (experiment
    /// template plus system profile), validated against this driver's
    /// repositories — so contributed packages and applications are known to
    /// the rules. Runs before every workspace setup; findings never fail the
    /// pipeline, they are rendered to stderr and counted on the telemetry
    /// sink (`lint.errors` / `lint.warnings`).
    pub fn lint_composition(
        &self,
        template: &str,
        profile: &SystemProfile,
    ) -> benchpark_lint::LintReport {
        let linter = benchpark_lint::Linter::with_repos(self.repo.clone(), self.app_repo.clone());
        let mut set = benchpark_lint::ArtifactSet::new();
        set.add("ramble.yaml", template);
        set.add("compilers.yaml", &profile.compilers_yaml);
        set.add("packages.yaml", &profile.packages_yaml);
        set.add("spack.yaml", &profile.spack_yaml);
        set.add("variables.yaml", &profile.variables_yaml);
        linter.lint(&set)
    }

    /// The driver's telemetry sink.
    pub fn telemetry(&self) -> TelemetrySink {
        self.telemetry.clone()
    }

    /// The site-wide binary cache shared by all workspaces of this driver.
    pub fn site_cache(&self) -> BinaryCache {
        self.site_cache.clone()
    }

    /// Overlays a contributed package recipe (Benchpark's `repo/` mechanism,
    /// Figure 1a lines 41–48): the first half of "adding a benchmark" (§4).
    pub fn add_package(&mut self, pkg: benchpark_pkg::PackageDef) {
        self.repo.add(pkg);
    }

    /// Overlays a contributed application definition — the `application.py`
    /// half of "adding a benchmark" (§4).
    pub fn add_application(&mut self, app: benchpark_pkg::ApplicationDef) {
        self.app_repo.add(app);
    }

    /// Step 2: `/bin/benchpark $experiment $system $workspace_dir`.
    ///
    /// Generates the workspace for `benchmark`/`variant` on `system`,
    /// concretizes and installs the software environment, renders batch
    /// scripts, and boots the system's simulated cluster.
    pub fn setup_workspace(
        &self,
        benchmark: &str,
        variant: &str,
        system: &str,
        workspace_dir: impl AsRef<Path>,
    ) -> Result<BenchparkWorkspace, String> {
        self.setup_workspace_on(benchmark, variant, system, workspace_dir, None)
    }

    /// Like [`Benchpark::setup_workspace`] but with an explicit machine
    /// (used to inject faults or alternate interconnect configurations —
    /// ablation A4 and the §7.1 scenario).
    pub fn setup_workspace_on(
        &self,
        benchmark: &str,
        variant: &str,
        system: &str,
        workspace_dir: impl AsRef<Path>,
        machine_override: Option<Machine>,
    ) -> Result<BenchparkWorkspace, String> {
        let template = experiment_template(benchmark, variant)
            .ok_or_else(|| format!("unknown experiment `{benchmark}/{variant}`"))?;
        self.setup_workspace_from_template(
            benchmark,
            variant,
            &template,
            system,
            workspace_dir,
            machine_override,
            &[],
        )
    }

    /// Sets up a workspace from a *user-supplied* `ramble.yaml` template —
    /// the full §4 "adding benchmarks to Benchpark" path. `app_models`
    /// registers performance models for executables the built-in cluster
    /// registry does not know.
    #[allow(clippy::too_many_arguments)]
    pub fn setup_workspace_from_template(
        &self,
        benchmark: &str,
        variant: &str,
        template: &str,
        system: &str,
        workspace_dir: impl AsRef<Path>,
        machine_override: Option<Machine>,
        app_models: &[(&str, AppModelFn)],
    ) -> Result<BenchparkWorkspace, String> {
        let _setup_span = self.telemetry.span("pipeline.setup");
        let mut log = WorkflowLog::default();
        log.step(1, "user clones Benchpark repository (builtin repos loaded)");

        let profile =
            SystemProfile::by_name(system).ok_or_else(|| format!("unknown system `{system}`"))?;

        // pre-flight: warn-only cross-artifact lint of the composition; a
        // clean set emits nothing, so FOMs and determinism are untouched
        let lint_report = self.lint_composition(template, &profile);
        if !lint_report.is_empty() {
            eprintln!("benchpark lint ({benchmark}/{variant} on {system}):");
            eprint!("{}", lint_report.render());
            if lint_report.errors() > 0 {
                self.telemetry
                    .incr("lint.errors", lint_report.errors() as u64);
            }
            if lint_report.warnings() > 0 {
                self.telemetry
                    .incr("lint.warnings", lint_report.warnings() as u64);
            }
        }

        log.step(
            2,
            format!(
                "benchpark {benchmark}/{variant} {system} {}",
                workspace_dir.as_ref().display()
            ),
        );
        log.step(
            3,
            "Benchpark clones Spack and Ramble (substrates instantiated)",
        );

        // step 4: generate workspace configuration
        let mut workspace = Workspace::create(&workspace_dir).map_err(|e| e.to_string())?;
        workspace.set_telemetry(self.telemetry.clone());
        workspace.set_cache(self.site_cache.clone());
        if let Some(plan) = &self.fault_plan {
            workspace.set_retry_policy(Self::cache_retry_policy(plan));
        }
        workspace.set_config(template).map_err(|e| e.to_string())?;
        workspace
            .merge_spack(&profile.spack_yaml)
            .map_err(|e| e.to_string())?;
        workspace
            .merge_variables(&profile.variables_yaml)
            .map_err(|e| e.to_string())?;
        log.step(
            4,
            "Benchpark generates workspace config (ramble.yaml + system includes)",
        );

        // steps 5–7: ramble workspace setup (spack builds + script rendering)
        let site = profile.site_config();
        let report = workspace
            .setup(&self.repo, &self.app_repo, &site, &self.install_options())
            .map_err(|e| e.to_string())?;
        log.step(
            5,
            "user calls Ramble within workspace (ramble workspace setup)",
        );
        log.step(
            6,
            format!(
                "Ramble uses Spack to build each benchmark ({} environments)",
                report.install_reports.len()
            ),
        );
        log.step(
            7,
            format!(
                "Ramble renders batch experiment scripts ({} experiments)",
                report.experiments.len()
            ),
        );

        // boot the cluster and install the built binaries on it
        let machine = machine_override.unwrap_or_else(|| profile.machine());
        let machine_text = format!("{machine:?}");
        let mut cluster = Cluster::new(machine);
        cluster.set_telemetry(self.telemetry.clone());
        for (exe, model) in app_models {
            cluster.register_app_model(exe, *model);
        }
        if let Some(plan) = &self.fault_plan {
            plan.apply_to_cluster(&mut cluster);
        }
        // The cluster side has its own (empty) install tree but shares the
        // site-wide binary cache, so builds published during workspace setup
        // are fetched rather than recompiled here.
        let mut cluster_installer = Installer::new(&self.repo)
            .with_database(InstallDatabase::new())
            .with_cache(self.site_cache.clone())
            .with_telemetry(self.telemetry.clone());
        if let Some(plan) = &self.fault_plan {
            cluster_installer = cluster_installer.with_retry_policy(Self::cache_retry_policy(plan));
        }
        // per-application fingerprint inputs gathered while installing: the
        // concrete DAG hash (folds in recipes, variants, versions, and
        // dependency resolution) and the application definition text
        let mut concrete_inputs: Vec<(String, String, String)> = Vec::new();
        for (app_name, _) in workspace
            .config()
            .expect("config set above")
            .applications
            .clone()
        {
            let app = self
                .app_repo
                .get(&app_name)
                .ok_or_else(|| format!("unknown application `{app_name}`"))?;
            let spec_text = workspace
                .config()
                .expect("config set")
                .resolved_spec(&app.software)
                .map_err(|e| e.to_string())?;
            let abstract_spec: benchpark_spec::Spec =
                spec_text.parse().map_err(|e| format!("{e}"))?;
            let dag = Concretizer::new(&self.repo, &site)
                .with_telemetry(self.telemetry.clone())
                .concretize(&abstract_spec)
                .map_err(|e| e.to_string())?;
            cluster_installer.install(&dag, &self.install_options());
            concrete_inputs.push((
                app_name.clone(),
                dag.dag_hash().to_string(),
                app.fingerprint_text(),
            ));
            let concrete = &dag.root_node().spec;
            let target = concrete
                .target
                .clone()
                .unwrap_or_else(|| "x86_64".to_string());
            let model = if concrete.variants.get("cuda") == Some(&VariantValue::Bool(true)) {
                ProgrammingModel::Cuda
            } else if concrete.variants.get("rocm") == Some(&VariantValue::Bool(true)) {
                ProgrammingModel::Rocm
            } else if concrete.variants.get("openmp") == Some(&VariantValue::Bool(true)) {
                ProgrammingModel::OpenMp
            } else {
                ProgrammingModel::Serial
            };
            for exe in &app.executables {
                let base = exe
                    .template
                    .split_whitespace()
                    .next()
                    .unwrap_or(&app.software);
                cluster.install_binary(BinaryInfo::for_target(base, &target, model));
            }
        }

        // content-addressed experiment fingerprints (§5's manifest made
        // hashable): one per generated experiment, over everything that can
        // change its measured result. `concrete_inputs` iterates in
        // `applications` (BTreeMap) order, so the shared prefix is
        // deterministic across processes and `--jobs` counts.
        let mut shared = FingerprintBuilder::new()
            .field("benchmark", benchmark)
            .field("variant", variant)
            .field("system", &profile.name)
            .field("template", template)
            .field("compilers.yaml", &profile.compilers_yaml)
            .field("packages.yaml", &profile.packages_yaml)
            .field("spack.yaml", &profile.spack_yaml)
            .field("variables.yaml", &profile.variables_yaml)
            .field("machine", &machine_text);
        // an active fault plan perturbs execution, so a faulted run must
        // never serve as (or be served by) a clean run's cache entry
        if let Some(plan) = &self.fault_plan {
            shared = shared.field("faults", &format!("{plan:?}"));
        }
        for (app_name, dag_hash, app_text) in &concrete_inputs {
            shared = shared
                .field(&format!("concrete.{app_name}"), dag_hash)
                .field(&format!("application.{app_name}"), app_text);
        }
        let mut fingerprints = BTreeMap::new();
        for exp in &report.experiments {
            let fp = shared
                .clone()
                .field("experiment", &exp.name)
                .field("application", &exp.application)
                .field("workload", &exp.workload)
                .fields("var", exp.provenance_variables())
                .fields(
                    "env",
                    exp.env_vars.iter().map(|(k, v)| (k.as_str(), v.as_str())),
                )
                .finish();
            fingerprints.insert(exp.name.clone(), fp);
        }

        Ok(BenchparkWorkspace {
            benchmark: benchmark.to_string(),
            variant: variant.to_string(),
            system: profile,
            workspace,
            cluster,
            setup_report: report,
            fingerprints,
            log,
            telemetry: self.telemetry.clone(),
        })
    }

    /// **Setup stage**: workspace generation, concretization, installs,
    /// script rendering, and the incremental plan against `index` (when
    /// given). The first of the three per-request stages the serve daemon
    /// (and every other driver entry point) is built from — see
    /// [`Benchpark::run_request`] for the chained form.
    pub fn stage_setup(
        &self,
        spec: &RunSpec,
        index: Option<&FingerprintIndex>,
        force: bool,
    ) -> Result<StagedRun, String> {
        let workspace = match &spec.template {
            Some(template) => self.setup_workspace_from_template(
                &spec.benchmark,
                &spec.variant,
                template,
                &spec.system,
                &spec.workspace_dir,
                None,
                &[],
            )?,
            None => self.setup_workspace(
                &spec.benchmark,
                &spec.variant,
                &spec.system,
                &spec.workspace_dir,
            )?,
        };
        let mut staged = StagedRun {
            workspace,
            plan: None,
        };
        if let Some(index) = index {
            staged.plan = Some(staged.workspace.plan_incremental(index, force));
        }
        Ok(staged)
    }

    /// **Execute stage**: submits the (cache-pruned) experiments to the
    /// cluster, drains the queue, and analyzes the outputs. Returns the
    /// freshly measured results only — empty when the incremental plan
    /// satisfied every experiment from the cache, in which case the run and
    /// analyze phases are skipped outright.
    pub fn stage_execute(&self, staged: &mut StagedRun) -> Result<Vec<ExperimentResult>, String> {
        if staged
            .plan
            .as_ref()
            .is_some_and(IncrementalPlan::all_cached)
        {
            return Ok(Vec::new());
        }
        staged.workspace.run().map_err(|e| e.to_string())?;
        Ok(staged
            .workspace
            .analyze(self)
            .map_err(|e| e.to_string())?
            .results)
    }

    /// **Collect stage**: splices cached results back into workspace
    /// generation order and packages everything a caller needs to report,
    /// export, or persist the run — without holding on to the workspace.
    pub fn stage_collect(
        &self,
        staged: StagedRun,
        executed: Vec<ExperimentResult>,
    ) -> CollectedRun {
        let StagedRun { workspace, plan } = staged;
        let results = match &plan {
            Some(plan) => plan.splice(executed.clone()),
            None => executed.clone(),
        };
        CollectedRun {
            benchmark: workspace.benchmark.clone(),
            variant: workspace.variant.clone(),
            system: workspace.system.name.clone(),
            manifest: workspace.manifest(),
            fingerprints: workspace.fingerprints.clone(),
            plan,
            executed,
            results,
            log: workspace.log.clone(),
        }
    }

    /// Runs one experiment request end to end: setup → execute → collect.
    /// This is the per-request unit of work the multi-tenant serve daemon
    /// schedules, with the fingerprint `index` resolving against the
    /// submitting tenant's ledger shards.
    pub fn run_request(
        &self,
        spec: &RunSpec,
        index: Option<&FingerprintIndex>,
        force: bool,
    ) -> Result<CollectedRun, String> {
        let mut staged = self.stage_setup(spec, index, force)?;
        let executed = self.stage_execute(&mut staged)?;
        Ok(self.stage_collect(staged, executed))
    }

    /// Runs a fleet of experiments — each a full setup → run → analyze
    /// pipeline on its own system and workspace directory — through the
    /// shared execution engine's worker pool, `jobs` wide (see
    /// [`Benchpark::with_jobs`]). Experiments on independent systems execute
    /// concurrently; results come back in input order. The workspace
    /// directories must be distinct.
    ///
    /// Outcomes are deterministic in the fleet definition: FOMs, job states,
    /// and analyze reports are identical for any worker count, including
    /// under an active fault plan (each cluster draws its faults from the
    /// plan's seed, never from thread timing).
    pub fn run_fleet(&self, fleet: &[FleetExperiment]) -> Result<Vec<FleetOutcome>, String> {
        let _fleet_span = self.telemetry.span("pipeline.fleet");
        let mut graph = TaskGraph::new();
        for (idx, exp) in fleet.iter().enumerate() {
            graph
                .add_task(
                    &format!("{}/{}@{}", exp.benchmark, exp.variant, exp.system),
                    idx,
                    1.0,
                )
                .map_err(|e| e.to_string())?;
        }
        let report = Engine::new(self.jobs)
            .with_telemetry(self.telemetry.clone())
            .run_pool(&graph, |task, _ctx| {
                let exp = &fleet[task.payload];
                let spec = RunSpec::new(
                    &exp.benchmark,
                    &exp.variant,
                    &exp.system,
                    &exp.workspace_dir,
                );
                let collected =
                    self.run_request(&spec, self.fingerprint_cache.as_ref(), self.force_rerun)?;
                Ok(FleetOutcome::from(collected))
            })
            .map_err(|e| e.to_string())?;
        report
            .tasks
            .into_iter()
            .map(|task| match task.status {
                TaskStatus::Success => Ok(task.output.expect("successful task has output")),
                _ => Err(format!(
                    "fleet experiment `{}` failed: {}",
                    task.key,
                    task.error.unwrap_or_else(|| "skipped".to_string())
                )),
            })
            .collect()
    }
}

/// One experiment request, driver-agnostic: what to run and where. The
/// currency of the staged run path ([`Benchpark::stage_setup`] →
/// [`Benchpark::stage_execute`] → [`Benchpark::stage_collect`]) and of the
/// `benchpark serve` submission queue.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Benchmark name.
    pub benchmark: String,
    /// Experiment variant (programming model).
    pub variant: String,
    /// System profile name.
    pub system: String,
    /// Workspace directory (must be unique per concurrent request).
    pub workspace_dir: PathBuf,
    /// User-supplied `ramble.yaml` text overriding the built-in template.
    pub template: Option<String>,
}

impl RunSpec {
    /// A request for a built-in experiment template.
    pub fn new(
        benchmark: &str,
        variant: &str,
        system: &str,
        workspace_dir: impl AsRef<Path>,
    ) -> RunSpec {
        RunSpec {
            benchmark: benchmark.to_string(),
            variant: variant.to_string(),
            system: system.to_string(),
            workspace_dir: workspace_dir.as_ref().to_path_buf(),
            template: None,
        }
    }

    /// Substitutes a user-supplied `ramble.yaml` template (the §4 path).
    pub fn with_template(mut self, template: impl Into<String>) -> RunSpec {
        self.template = Some(template.into());
        self
    }
}

/// A request after the setup stage: the ready workspace plus the
/// incremental plan (when a fingerprint index was consulted).
pub struct StagedRun {
    /// The ready-to-run workspace.
    pub workspace: BenchparkWorkspace,
    /// Cache plan from [`BenchparkWorkspace::plan_incremental`], if any.
    pub plan: Option<IncrementalPlan>,
}

/// Everything the collect stage distills from one finished request.
#[derive(Debug, Clone)]
pub struct CollectedRun {
    /// Benchmark name.
    pub benchmark: String,
    /// Experiment variant.
    pub variant: String,
    /// System profile name.
    pub system: String,
    /// The exact experiment manifest (§5's manifest-with-results).
    pub manifest: String,
    /// Content-addressed fingerprint per generated experiment.
    pub fingerprints: BTreeMap<String, Fingerprint>,
    /// The incremental plan, when a fingerprint index was consulted.
    pub plan: Option<IncrementalPlan>,
    /// Freshly measured results only (what a ledger append persists).
    pub executed: Vec<ExperimentResult>,
    /// All results in workspace generation order, cache splices included.
    pub results: Vec<ExperimentResult>,
    /// The nine-step workflow transcript.
    pub log: WorkflowLog,
}

impl CollectedRun {
    /// Experiments satisfied from the fingerprint cache.
    pub fn cached(&self) -> usize {
        self.plan.as_ref().map_or(0, |p| p.hits)
    }

    /// True when a consulted cache satisfied every experiment (nothing was
    /// measured, so there is nothing to persist).
    pub fn all_cached(&self) -> bool {
        self.plan.as_ref().is_some_and(IncrementalPlan::all_cached)
    }

    /// The ledger record of this run's *fresh* measurements, stamped with
    /// their fingerprints — or `None` when a consulted cache satisfied
    /// everything (spliced results never re-enter the ledger; it is a
    /// measurement log, not a cache file).
    pub fn to_record(
        &self,
        report: Option<&benchpark_telemetry::TelemetryReport>,
    ) -> Option<crate::ledger::RunRecord> {
        if self.executed.is_empty() && self.plan.is_some() {
            return None;
        }
        let fingerprints: Vec<(String, String)> = self
            .fingerprints
            .iter()
            .filter(|(name, _)| self.executed.iter().any(|r| &r.experiment == *name))
            .map(|(name, fp)| (name.clone(), fp.hex()))
            .collect();
        Some(
            crate::ledger::RunRecord::from_run(
                &self.system,
                &self.benchmark,
                &self.variant,
                &self.manifest,
                &self.executed,
                report,
            )
            .with_fingerprints(fingerprints),
        )
    }
}

impl From<CollectedRun> for FleetOutcome {
    fn from(collected: CollectedRun) -> FleetOutcome {
        FleetOutcome {
            cached: collected.cached(),
            executed: collected.executed.len(),
            benchmark: collected.benchmark,
            variant: collected.variant,
            system: collected.system,
            fingerprints: collected.fingerprints,
            analysis: AnalyzeReport {
                results: collected.results,
            },
            log: collected.log,
        }
    }
}

/// One experiment of a [`Benchpark::run_fleet`] fan-out.
#[derive(Debug, Clone)]
pub struct FleetExperiment {
    pub benchmark: String,
    pub variant: String,
    pub system: String,
    /// Workspace directory for this experiment (must be unique per entry).
    pub workspace_dir: PathBuf,
}

/// What one fleet experiment produced.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    pub benchmark: String,
    pub variant: String,
    pub system: String,
    /// Experiments spliced from the fingerprint cache (0 when no cache was
    /// installed via [`Benchpark::with_fingerprint_cache`]).
    pub cached: usize,
    /// Experiments actually executed this run.
    pub executed: usize,
    /// Content-addressed fingerprint per experiment, from setup.
    pub fingerprints: BTreeMap<String, Fingerprint>,
    /// FOMs and success criteria extracted by `ramble workspace analyze`
    /// (cached splices included, marked `cached`).
    pub analysis: AnalyzeReport,
    /// The nine-step workflow transcript of this experiment.
    pub log: WorkflowLog,
}

/// A ready-to-run Benchpark workspace bound to a simulated cluster.
pub struct BenchparkWorkspace {
    pub benchmark: String,
    pub variant: String,
    pub system: SystemProfile,
    pub workspace: Workspace,
    pub cluster: Cluster,
    pub setup_report: SetupReport,
    /// Content-addressed fingerprint per generated experiment (see
    /// [`crate::fingerprint`]), computed during setup from the concrete
    /// specs, system profile, experiment template, application definitions,
    /// and resolved experiment variables.
    pub fingerprints: BTreeMap<String, Fingerprint>,
    pub log: WorkflowLog,
    telemetry: TelemetrySink,
}

impl BenchparkWorkspace {
    /// Step 8: `ramble on` — submits every rendered script to the system's
    /// batch scheduler, drains the queue once, and collects the outputs.
    /// Because all experiments coexist in the queue, a scheduled node
    /// failure mid-drain can preempt running jobs, which requeue onto the
    /// surviving nodes and restart.
    pub fn run(&mut self) -> Result<(), RambleError> {
        let _run_span = self.telemetry.span("pipeline.run");
        let cluster = std::cell::RefCell::new(&mut self.cluster);
        self.workspace.run_batched(
            |_exp, script| {
                cluster
                    .borrow_mut()
                    .submit_script(script, "benchpark")
                    .map_err(|e| RunOutput {
                        stdout: format!("sbatch: error: {e}\n"),
                        exit_code: 1,
                        profile: Vec::new(),
                    })
            },
            || cluster.borrow_mut().run_until_idle(),
            |_exp, id| {
                let cluster = cluster.borrow();
                let job = cluster.job(id).expect("submitted job exists");
                RunOutput {
                    stdout: job.stdout.clone(),
                    exit_code: job.exit_code,
                    profile: job.profile.clone(),
                }
            },
        )?;
        self.log.step(
            8,
            "user calls Ramble to submit batch experiment scripts (ramble on)",
        );
        Ok(())
    }

    /// Step 9: `ramble workspace analyze` — extracts FOMs and success
    /// criteria.
    pub fn analyze(&mut self, benchpark: &Benchpark) -> Result<AnalyzeReport, RambleError> {
        let _analyze_span = self.telemetry.span("pipeline.analyze");
        let report = self.workspace.analyze(&benchpark.app_repo)?;
        self.log
            .step(9, "user calls Ramble to analyze output and extract metrics");
        Ok(report)
    }

    /// A manifest describing exactly what ran (§5: *"Storing the Benchpark
    /// manifest with the performance results will enable introspection into
    /// benchmark performance across systems and time"*).
    pub fn manifest(&self) -> String {
        let mut out = format!(
            "benchmark: {}/{}\nsystem: {}\n",
            self.benchmark, self.variant, self.system.name
        );
        for (env, specs) in &self.setup_report.environment_specs {
            out.push_str(&format!("environment {env}:\n"));
            for spec in specs {
                out.push_str(&format!("  - {spec}\n"));
            }
        }
        out
    }

    /// Splits this workspace's experiments into cache hits and work to run,
    /// consulting `index` (a ledger-derived [`FingerprintIndex`]). Hit
    /// experiments are pruned from the workspace so [`BenchparkWorkspace::run`]
    /// executes only the misses; their stored results come back in the
    /// returned plan, marked `cached`, ready to be spliced with the fresh
    /// ones. With `force`, hits are counted as forced and re-executed
    /// anyway.
    ///
    /// Emits the `fp.hits` / `fp.misses` / `fp.forced` telemetry counters.
    /// When every experiment hits, the caller should skip the run and
    /// analyze phases entirely — `plan.all_cached()` signals this.
    pub fn plan_incremental(&mut self, index: &FingerprintIndex, force: bool) -> IncrementalPlan {
        use std::collections::BTreeSet;
        // splices must restore the workspace's generation order, so a
        // partially-cached report is byte-identical to a full run's
        let order: Vec<String> = self
            .setup_report
            .experiments
            .iter()
            .map(|e| e.name.clone())
            .collect();
        let mut cached: Vec<ExperimentResult> = Vec::new();
        let (mut hits, mut misses, mut forced) = (0usize, 0usize, 0usize);
        let mut to_run: BTreeSet<String> = BTreeSet::new();
        for (name, fp) in &self.fingerprints {
            match index.lookup(fp) {
                Some(entry) if !force => {
                    let mut result = entry.result.clone();
                    result.cached = true;
                    cached.push(result);
                    hits += 1;
                }
                Some(_) => {
                    forced += 1;
                    to_run.insert(name.clone());
                }
                None => {
                    misses += 1;
                    to_run.insert(name.clone());
                }
            }
        }
        self.workspace
            .retain_experiments(|name| to_run.contains(name));
        if hits > 0 {
            self.telemetry.incr("fp.hits", hits as u64);
        }
        if misses > 0 {
            self.telemetry.incr("fp.misses", misses as u64);
        }
        if forced > 0 {
            self.telemetry.incr("fp.forced", forced as u64);
        }
        IncrementalPlan {
            cached,
            hits,
            misses,
            forced,
            order,
        }
    }
}

/// The outcome of [`BenchparkWorkspace::plan_incremental`]: which
/// experiments were satisfied from the ledger and which still need to
/// execute.
#[derive(Debug, Clone)]
pub struct IncrementalPlan {
    /// Ledger-spliced results for the hit experiments, each marked
    /// `cached: true`.
    pub cached: Vec<ExperimentResult>,
    /// Experiments satisfied from the cache.
    pub hits: usize,
    /// Experiments with no valid cached record.
    pub misses: usize,
    /// Cache hits overridden by `--force` and re-executed.
    pub forced: usize,
    /// Every experiment name in workspace generation order — the canonical
    /// report order [`IncrementalPlan::splice`] restores.
    order: Vec<String>,
}

impl IncrementalPlan {
    /// True when nothing is left to execute — the run and analyze phases
    /// can be skipped outright.
    pub fn all_cached(&self) -> bool {
        self.misses == 0 && self.forced == 0
    }

    /// How many experiments still execute.
    pub fn to_run(&self) -> usize {
        self.misses + self.forced
    }

    /// Merges the freshly executed results with the cached splice, restoring
    /// the workspace's generation order so the combined report is
    /// byte-identical to a full (uncached) run's.
    pub fn splice(&self, executed: Vec<ExperimentResult>) -> Vec<ExperimentResult> {
        let position = |name: &str| {
            self.order
                .iter()
                .position(|n| n == name)
                .unwrap_or(self.order.len())
        };
        let mut out = self.cached.clone();
        out.extend(executed);
        out.sort_by_key(|r| position(&r.experiment));
        out
    }

    /// One-line accounting, e.g. `fingerprints: 8 hit(s), 0 miss(es), 0 forced`.
    pub fn summary(&self) -> String {
        format!(
            "fingerprints: {} hit(s), {} miss(es), {} forced",
            self.hits, self.misses, self.forced
        )
    }
}

/// Gates a run's exit status on its experiment outcomes: returns an error
/// naming every non-successful experiment unless `allow_failed` waives the
/// check. Drives `benchpark trace`'s exit code, so CI notices a workspace
/// whose experiments failed even though the pipeline itself completed.
pub fn gate_failed_experiments(
    results: &[benchpark_ramble::ExperimentResult],
    allow_failed: bool,
) -> Result<(), String> {
    use benchpark_ramble::ExperimentStatus;
    let failed: Vec<String> = results
        .iter()
        .filter(|r| r.status != ExperimentStatus::Success)
        .map(|r| format!("{} ({:?})", r.experiment, r.status))
        .collect();
    if failed.is_empty() || allow_failed {
        return Ok(());
    }
    Err(format!(
        "{} of {} experiments did not succeed: {} (pass --allow-failed to ignore)",
        failed.len(),
        results.len(),
        failed.join(", ")
    ))
}
