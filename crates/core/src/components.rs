//! Table 1: the components of Benchpark and their orthogonalization into
//! benchmark-specific, system-specific, and experiment-specific concerns.

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    pub number: usize,
    pub component: &'static str,
    pub benchmark_specific: &'static str,
    pub system_specific: &'static str,
    pub experiment_specific: &'static str,
    /// Which of this repository's modules implement the cell contents
    /// (our addition: the reproduction index).
    pub implemented_by: &'static str,
}

/// The six rows of Table 1, with the implementing modules recorded.
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            number: 1,
            component: "Source code",
            benchmark_specific: "package.py",
            system_specific: "archspec (Sec. 3.1.3)",
            experiment_specific: "ramble.yaml: spack",
            implemented_by: "benchpark-pkg::PackageDef, benchpark-archspec, benchpark-ramble::RambleConfig",
        },
        Table1Row {
            number: 2,
            component: "Build instructions",
            benchmark_specific: "package.py",
            system_specific: "Spack config. files, spack.yaml",
            experiment_specific: "ramble.yaml: spack",
            implemented_by: "benchpark-pkg::PackageDef::install_args, benchpark-spack::ConfigScopes, benchpark-ramble::SpackPackageDef",
        },
        Table1Row {
            number: 3,
            component: "Benchmark input",
            benchmark_specific: "application.py, (optional) data",
            system_specific: "variables.yaml",
            experiment_specific: "ramble.yaml: experiments",
            implemented_by: "benchpark-pkg::ApplicationDef, benchpark-core::SystemProfile, benchpark-ramble::ExperimentDef",
        },
        Table1Row {
            number: 4,
            component: "Run instructions",
            benchmark_specific: "application.py",
            system_specific: "variables.yaml: scheduler, launcher",
            experiment_specific: "ramble.yaml: experiments",
            implemented_by: "benchpark-pkg::ExecutableDef, benchpark-cluster::SchedulerKind, benchpark-ramble::generate_experiments",
        },
        Table1Row {
            number: 5,
            component: "Experiment evaluation",
            benchmark_specific: "(optional) application.py",
            system_specific: "(optional) hardware counters, etc.",
            experiment_specific: "ramble.yaml: success_criteria",
            implemented_by: "benchpark-pkg::FomDef + SuccessCriterion, benchpark-perf, benchpark-ramble::analyze",
        },
        Table1Row {
            number: 6,
            component: "CI testing",
            benchmark_specific: ".gitlab-ci.yml",
            system_specific: "Hubcast@LLNL/RIKEN/AWS",
            experiment_specific: "Benchpark executable",
            implemented_by: "benchpark-ci::{Lab, Hubcast, Jacamar}, benchpark-core::Benchpark",
        },
    ]
}

/// Renders Table 1 as fixed-width text (the regenerated artifact for
/// experiment T1).
pub fn render_table1() -> String {
    let rows = table1();
    let mut out = String::new();
    out.push_str(
        "Table 1: Components of Benchpark, a collaborative continuous benchmark suite\n\n",
    );
    out.push_str(&format!(
        "{:<3} {:<24} {:<34} {:<38} {:<26}\n",
        "#", "Component", "Benchmark-specific", "HPC System-specific", "Experiment-specific"
    ));
    out.push_str(&"-".repeat(128));
    out.push('\n');
    for row in &rows {
        out.push_str(&format!(
            "{:<3} {:<24} {:<34} {:<38} {:<26}\n",
            row.number,
            row.component,
            row.benchmark_specific,
            row.system_specific,
            row.experiment_specific
        ));
        out.push_str(&format!("    implemented by: {}\n", row.implemented_by));
    }
    out
}
