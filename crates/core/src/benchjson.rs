//! The machine-readable bench trajectory: `BENCH_<date>.json` files.
//!
//! The paper's Figure 6 loop tracks *application* FOMs continuously; this
//! module gives the pipeline's own hot paths the same treatment. Each
//! invocation of `benchpark bench` emits one [`BenchReport`] — a
//! schema-versioned, deterministic JSON document with per-bench
//! median/mean/std and an environment summary — and the sequence of those
//! files committed over time *is* the performance trajectory of this
//! repository (the ethrex-style `docs/perf/` methodology; see
//! `docs/perf/methodology.md`).
//!
//! Design constraints mirror [`crate::ledger`]:
//!
//! * **Deterministic** — field order is fixed, results are sorted by bench
//!   name, floats go through the canonical yamlite formatter. Two runs of
//!   the same binary differ only in measured numbers, so trajectory diffs
//!   are reviewable.
//! * **Versioned** — every file carries `schema`; unknown versions are a
//!   parse error, never a misread.
//! * **Comparable** — [`compare_bench_reports`] replays a chronological
//!   series of reports through the same statistical verdict the FOM
//!   regression scanner uses ([`crate::regression::baseline_verdict`]),
//!   with improvement directions inferred from units via
//!   [`crate::regression::lower_is_better_units`] (`ns/iter` improves
//!   downward).

use crate::regression::{baseline_verdict, lower_is_better_units};
use benchpark_yamlite::{emit_json, json_number, json_string, parse_json, Value};
use std::fmt::Write as _;

/// The BENCH file schema version this build writes.
pub const BENCH_SCHEMA: i64 = 1;

/// The suite name this build's hot-path suite reports under.
pub const BENCH_SUITE: &str = "hotpath";

/// Environment summary stamped into every report: enough to tell two
/// machines (or a debug build) apart when reading the trajectory, nothing
/// volatile enough to break determinism on one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEnv {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Logical CPUs visible to the process.
    pub cpus: u64,
    /// Workspace version the suite was built from.
    pub version: String,
    /// Build profile: `release` or `debug`.
    pub profile: String,
}

impl BenchEnv {
    /// The environment of the running process.
    pub fn current() -> BenchEnv {
        BenchEnv {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            version: env!("CARGO_PKG_VERSION").to_string(),
            profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
        }
    }
}

/// One benchmark's measurement: timing statistics over `samples` timed
/// samples of `iters` iterations each.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable bench name (`engine.plan.lpt.100k`). Workload sizes are part
    /// of the name, so differently-sized runs can never be compared.
    pub name: String,
    /// Subsystem group (`engine`, `yamlite`, `ledger`, …).
    pub group: String,
    /// Iterations per timed sample (fixed per bench, never adaptive).
    pub iters: u64,
    /// Number of timed samples the statistics aggregate.
    pub samples: u64,
    /// Median per-iteration time across samples, nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time across samples, nanoseconds.
    pub mean_ns: f64,
    /// Standard deviation of per-iteration times across samples.
    pub std_ns: f64,
    /// Units of the medians (`ns/iter`); drives the improvement direction.
    pub units: String,
}

/// One `BENCH_<date>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// File schema version ([`BENCH_SCHEMA`]).
    pub schema: i64,
    /// Suite name ([`BENCH_SUITE`] for the built-in hot-path suite).
    pub suite: String,
    /// UTC date the suite ran, `YYYY-MM-DD` (also the conventional file
    /// name: `BENCH_<created>.json`).
    pub created: String,
    /// Environment summary.
    pub env: BenchEnv,
    /// Per-bench statistics, sorted by name.
    pub results: Vec<BenchRecord>,
}

impl BenchReport {
    /// The conventional file name for this report.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.created)
    }

    /// Statistics for a named bench, if present.
    pub fn result(&self, name: &str) -> Option<&BenchRecord> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Serializes the report: a small deterministic JSON document with one
    /// result per line, so trajectory commits diff by bench. Results are
    /// sorted by name before emission.
    pub fn to_json(&self) -> String {
        let mut results: Vec<&BenchRecord> = self.results.iter().collect();
        results.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"suite\": {},", json_string(&self.suite));
        let _ = writeln!(out, "  \"created\": {},", json_string(&self.created));
        let mut env = benchpark_yamlite::Map::new();
        env.insert("os", Value::str(self.env.os.clone()));
        env.insert("arch", Value::str(self.env.arch.clone()));
        env.insert("cpus", Value::Int(self.env.cpus as i64));
        env.insert("version", Value::str(self.env.version.clone()));
        env.insert("profile", Value::str(self.env.profile.clone()));
        let _ = writeln!(out, "  \"env\": {},", emit_json(&Value::Map(env)));
        out.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            let comma = if i + 1 == results.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"group\": {}, \"iters\": {}, \"samples\": {}, \
                 \"median_ns\": {}, \"mean_ns\": {}, \"std_ns\": {}, \"units\": {}}}{comma}",
                json_string(&r.name),
                json_string(&r.group),
                r.iters,
                r.samples,
                json_number(r.median_ns),
                json_number(r.mean_ns),
                json_number(r.std_ns),
                json_string(&r.units),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a BENCH document. Fails on malformed JSON, a missing or
    /// malformed field, or an unknown schema version.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let doc = parse_json(text)?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_int)
            .ok_or("bench report lacks `schema`")?;
        if schema != BENCH_SCHEMA {
            return Err(format!("unknown bench schema version {schema}"));
        }
        let text_field = |v: &Value, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(String::from)
                .ok_or_else(|| format!("bench report lacks `{key}`"))
        };
        let env_value = doc.get("env").ok_or("bench report lacks `env`")?;
        let env = BenchEnv {
            os: text_field(env_value, "os")?,
            arch: text_field(env_value, "arch")?,
            cpus: env_value
                .get("cpus")
                .and_then(Value::as_int)
                .filter(|c| *c >= 0)
                .ok_or("env lacks a non-negative `cpus`")? as u64,
            version: text_field(env_value, "version")?,
            profile: text_field(env_value, "profile")?,
        };
        let mut results = Vec::new();
        for item in doc
            .get("results")
            .and_then(Value::as_seq)
            .ok_or("bench report lacks `results`")?
        {
            let int_field = |key: &str| -> Result<u64, String> {
                item.get(key)
                    .and_then(Value::as_int)
                    .filter(|v| *v >= 0)
                    .map(|v| v as u64)
                    .ok_or_else(|| format!("bench result lacks a non-negative `{key}`"))
            };
            let float_field = |key: &str| -> Result<f64, String> {
                item.get(key)
                    .and_then(Value::as_float)
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| format!("bench result lacks a finite non-negative `{key}`"))
            };
            results.push(BenchRecord {
                name: text_field(item, "name")?,
                group: text_field(item, "group")?,
                iters: int_field("iters")?,
                samples: int_field("samples")?,
                median_ns: float_field("median_ns")?,
                mean_ns: float_field("mean_ns")?,
                std_ns: float_field("std_ns")?,
                units: text_field(item, "units")?,
            });
        }
        results.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(BenchReport {
            schema,
            suite: text_field(&doc, "suite")?,
            created: text_field(&doc, "created")?,
            env,
            results,
        })
    }
}

/// The verdict for one bench across a report trajectory.
#[derive(Debug, Clone)]
pub struct BenchComparison {
    /// Bench name.
    pub name: String,
    /// Subsystem group.
    pub group: String,
    /// Mean of the baseline reports' medians, nanoseconds.
    pub baseline_ns: f64,
    /// Standard deviation of the baseline medians.
    pub baseline_std_ns: f64,
    /// The latest report's median, nanoseconds.
    pub latest_ns: f64,
    /// Relative change, signed so that negative is always *worse*
    /// (direction folded in from the bench's units).
    pub change: f64,
    /// Latest is worse than baseline beyond the threshold and the noise band.
    pub regressed: bool,
    /// Latest is better than baseline beyond the threshold and the noise
    /// band — the bar an optimization PR must clear
    /// (`docs/perf/methodology.md`).
    pub improved: bool,
    /// Number of baseline reports the bench appeared in.
    pub history_len: usize,
}

impl BenchComparison {
    /// Renders a one-line verdict.
    pub fn render(&self) -> String {
        format!(
            "{:<32} baseline {} (±{}, n={}), latest {} ({:+.1}%) — {}",
            self.name,
            format_ns(self.baseline_ns),
            format_ns(self.baseline_std_ns),
            self.history_len,
            format_ns(self.latest_ns),
            self.change * 100.0,
            if self.regressed {
                "REGRESSION"
            } else if self.improved {
                "improved"
            } else {
                "ok"
            }
        )
    }
}

/// Human-scale rendering of a nanosecond quantity.
pub fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Compares the last report of a chronological trajectory against all the
/// reports before it, bench by bench.
///
/// For each bench present in the latest report, the baseline is the series
/// of that bench's medians in the prior reports; the verdict comes from
/// [`baseline_verdict`] — the exact statistic `benchpark regress` applies
/// to FOM histories: a change is flagged only when it exceeds `threshold`
/// relative *and* two baseline standard deviations (with a single-report
/// baseline the deviation is zero, so the threshold alone governs).
/// Benches with no baseline sighting (first run, or a renamed/resized
/// workload) are skipped — a fresh workload has no trajectory yet.
/// Verdicts are sorted by name; `history` needs at least two reports for
/// any verdict to exist.
pub fn compare_bench_reports(history: &[&BenchReport], threshold: f64) -> Vec<BenchComparison> {
    let Some((latest, baseline_reports)) = history.split_last() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for record in &latest.results {
        let baseline: Vec<f64> = baseline_reports
            .iter()
            .filter_map(|r| r.result(&record.name))
            .map(|r| r.median_ns)
            .collect();
        if baseline.is_empty() {
            continue;
        }
        let higher_is_better = !lower_is_better_units(&record.units);
        let verdict = baseline_verdict(&baseline, record.median_ns, higher_is_better, threshold);
        let improved = verdict.change > threshold && verdict.beyond_noise;
        out.push(BenchComparison {
            name: record.name.clone(),
            group: record.group.clone(),
            baseline_ns: verdict.baseline_mean,
            baseline_std_ns: verdict.baseline_std,
            latest_ns: record.median_ns,
            change: verdict.change,
            regressed: verdict.regressed,
            improved,
            history_len: baseline.len(),
        });
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Geometric mean of a report's medians over `names` (every name must be
/// present). The *speed basis* of the report: a machine running uniformly
/// 1.4× slower scales every median — and therefore the basis — by 1.4.
fn speed_basis(report: &BenchReport, names: &[String]) -> f64 {
    let ln_sum: f64 = names
        .iter()
        .map(|n| {
            report
                .result(n)
                .expect("basis bench present")
                .median_ns
                .max(1e-9)
                .ln()
        })
        .sum();
    (ln_sum / names.len().max(1) as f64).exp()
}

/// The benches shared by *every* report in the trajectory — the set the
/// calibration basis is computed over, so each report is normalized by the
/// same yardstick.
fn common_benches(history: &[&BenchReport]) -> Vec<String> {
    let Some((latest, rest)) = history.split_last() else {
        return Vec::new();
    };
    latest
        .results
        .iter()
        .filter(|r| rest.iter().all(|p| p.result(&r.name).is_some()))
        .map(|r| r.name.clone())
        .collect()
}

/// How much faster (>1) or slower (<1) the latest report's machine ran
/// than the baseline reports', as the ratio of geometric-mean speed bases.
/// `None` when the trajectory is not calibratable (fewer than two reports,
/// or fewer than two shared benches).
pub fn calibration_speed_factor(history: &[&BenchReport]) -> Option<f64> {
    let (latest, rest) = history.split_last()?;
    let common = common_benches(history);
    if rest.is_empty() || common.len() < 2 {
        return None;
    }
    let ln_sum: f64 = rest.iter().map(|r| speed_basis(r, &common).ln()).sum();
    let baseline_basis = (ln_sum / rest.len() as f64).exp();
    Some(baseline_basis / speed_basis(latest, &common))
}

/// [`compare_bench_reports`], but with each report's medians normalized by
/// its own speed basis over the shared bench set first, so *uniform*
/// machine-speed shifts (a slower CI runner, a throttled laptop) cancel
/// out and only benches that moved relative to the rest of the suite are
/// flagged. This is the CI default: across heterogeneous runners an
/// absolute gate flags everything or nothing.
///
/// The verdict is computed on normalized values; the reported
/// baseline/latest numbers are re-expressed at the *latest* report's
/// machine speed, so the rendered lines stay directly comparable. The
/// blind spot is a genuinely uniform regression across the whole suite
/// (e.g. an allocator change) — that shows up in
/// [`calibration_speed_factor`], which callers should surface.
///
/// Falls back to the absolute comparison when fewer than two benches are
/// shared across the whole trajectory (normalizing a single bench by
/// itself would gate nothing at all).
pub fn compare_bench_reports_calibrated(
    history: &[&BenchReport],
    threshold: f64,
) -> Vec<BenchComparison> {
    let Some((latest, baseline_reports)) = history.split_last() else {
        return Vec::new();
    };
    let common = common_benches(history);
    if baseline_reports.is_empty() || common.len() < 2 {
        return compare_bench_reports(history, threshold);
    }
    let latest_basis = speed_basis(latest, &common);
    let bases: Vec<f64> = baseline_reports
        .iter()
        .map(|r| speed_basis(r, &common))
        .collect();
    let mut out = Vec::new();
    for record in &latest.results {
        let baseline: Vec<f64> = baseline_reports
            .iter()
            .zip(&bases)
            .filter_map(|(r, basis)| r.result(&record.name).map(|b| b.median_ns / basis))
            .collect();
        if baseline.is_empty() {
            continue;
        }
        let higher_is_better = !lower_is_better_units(&record.units);
        let verdict = baseline_verdict(
            &baseline,
            record.median_ns / latest_basis,
            higher_is_better,
            threshold,
        );
        let improved = verdict.change > threshold && verdict.beyond_noise;
        out.push(BenchComparison {
            name: record.name.clone(),
            group: record.group.clone(),
            baseline_ns: verdict.baseline_mean * latest_basis,
            baseline_std_ns: verdict.baseline_std * latest_basis,
            latest_ns: record.median_ns,
            change: verdict.change,
            regressed: verdict.regressed,
            improved,
            history_len: baseline.len(),
        });
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock.
///
/// Uses the standard civil-from-days algorithm, so the only platform input
/// is `SystemTime::now()`.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    date_from_unix_days((secs / 86_400) as i64)
}

/// Civil date for a count of days since 1970-01-01 (Howard Hinnant's
/// `civil_from_days`).
pub fn date_from_unix_days(days: i64) -> String {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
