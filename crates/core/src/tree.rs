//! The Benchpark repository layout (Figure 1a).

use crate::systems::SystemProfile;
use crate::templates::available_experiments;

/// Renders the Figure 1a directory structure for the built-in systems and
/// experiments.
pub fn render_tree() -> String {
    let mut out = String::from("benchpark\n");
    out.push_str("├── bin\n│   └── benchpark\n");
    out.push_str("├── configs            //HPC System-specific\n");
    let systems = SystemProfile::all();
    for (i, system) in systems.iter().enumerate() {
        let last_system = i + 1 == systems.len();
        let bar = if last_system {
            "└──"
        } else {
            "├──"
        };
        let pad = if last_system { "    " } else { "│   " };
        out.push_str(&format!("│   {bar} {}\n", system.name));
        for (j, file) in [
            "compilers.yaml",
            "packages.yaml",
            "spack.yaml",
            "variables.yaml",
        ]
        .iter()
        .enumerate()
        {
            let file_bar = if j == 3 { "└──" } else { "├──" };
            out.push_str(&format!("│   {pad}{file_bar} {file}\n"));
        }
    }
    out.push_str("├── experiments        //Experiment-specific\n");
    let experiments = available_experiments();
    let mut benchmarks: Vec<&str> = experiments.iter().map(|(b, _)| *b).collect();
    benchmarks.dedup();
    for (i, benchmark) in benchmarks.iter().enumerate() {
        let last = i + 1 == benchmarks.len();
        let bar = if last { "└──" } else { "├──" };
        let pad = if last { "    " } else { "│   " };
        out.push_str(&format!("│   {bar} {benchmark}\n"));
        let variants: Vec<&str> = experiments
            .iter()
            .filter(|(b, _)| b == benchmark)
            .map(|(_, v)| *v)
            .collect();
        for (j, variant) in variants.iter().enumerate() {
            let vbar = if j + 1 == variants.len() {
                "└──"
            } else {
                "├──"
            };
            out.push_str(&format!("│   {pad}{vbar} {variant}\n"));
            out.push_str(&format!(
                "│   {pad}{}    ├── execute_experiment.tpl\n",
                if j + 1 == variants.len() { " " } else { "│" }
            ));
            out.push_str(&format!(
                "│   {pad}{}    └── ramble.yaml\n",
                if j + 1 == variants.len() { " " } else { "│" }
            ));
        }
    }
    out.push_str("└── repo               //benchmark + application recipes\n");
    out.push_str("    ├── repo.yaml\n");
    for (i, benchmark) in benchmarks.iter().enumerate() {
        let bar = if i + 1 == benchmarks.len() {
            "└──"
        } else {
            "├──"
        };
        out.push_str(&format!("    {bar} {benchmark}\n"));
        let pad = if i + 1 == benchmarks.len() {
            "    "
        } else {
            "│   "
        };
        out.push_str(&format!("    {pad}├── application.py\n"));
        out.push_str(&format!("    {pad}└── package.py\n"));
    }
    out
}

/// Writes the repository skeleton (configs + experiments) under `dir`,
/// exactly what `git clone benchpark` would produce.
pub fn write_skeleton(dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir.join("bin"))?;
    std::fs::write(
        dir.join("bin/benchpark"),
        "#!/bin/bash\n# driver: see benchpark-core::Benchpark\n",
    )?;
    for system in SystemProfile::all() {
        let sys_dir = dir.join("configs").join(&system.name);
        std::fs::create_dir_all(&sys_dir)?;
        std::fs::write(sys_dir.join("compilers.yaml"), &system.compilers_yaml)?;
        std::fs::write(sys_dir.join("packages.yaml"), &system.packages_yaml)?;
        std::fs::write(sys_dir.join("spack.yaml"), &system.spack_yaml)?;
        std::fs::write(sys_dir.join("variables.yaml"), &system.variables_yaml)?;
    }
    for (benchmark, variant) in available_experiments() {
        let exp_dir = dir.join("experiments").join(benchmark).join(variant);
        std::fs::create_dir_all(&exp_dir)?;
        let template = crate::templates::experiment_template(benchmark, variant)
            .expect("available experiments have templates");
        std::fs::write(exp_dir.join("ramble.yaml"), template)?;
        std::fs::write(
            exp_dir.join("execute_experiment.tpl"),
            benchpark_ramble::template_default(),
        )?;
    }
    Ok(())
}
