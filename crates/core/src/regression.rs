//! Performance-regression detection over time (paper §1: once a system is
//! in service, *"benchmarking is a useful tool for tracking system
//! performance over time and diagnosing hardware failures"*).
//!
//! Continuous benchmarking records each run into the [`MetricsDatabase`]
//! with a monotonically increasing sequence point; this module compares the
//! most recent sequence against the history and flags statistically
//! meaningful drops.

use crate::metrics::MetricsDatabase;
use benchpark_ramble::ExperimentStatus;

/// The verdict for one FOM on one (benchmark, system).
#[derive(Debug, Clone)]
pub struct RegressionReport {
    pub benchmark: String,
    pub system: String,
    pub fom: String,
    /// Mean over all sequences before the latest.
    pub baseline_mean: f64,
    /// Standard deviation of the per-sequence baseline means.
    pub baseline_std: f64,
    /// Mean of the latest sequence.
    pub latest_mean: f64,
    /// Relative change of the latest vs baseline: negative = got worse for
    /// higher-is-better FOMs.
    pub change: f64,
    /// True if the latest run regressed beyond the threshold.
    pub regressed: bool,
    /// Number of sequences in the baseline.
    pub history_len: usize,
}

impl RegressionReport {
    /// Renders a one-line verdict.
    pub fn render(&self) -> String {
        format!(
            "{}/{} `{}`: baseline {:.4e} (±{:.1e}, n={}), latest {:.4e} ({:+.1}%) — {}",
            self.benchmark,
            self.system,
            self.fom,
            self.baseline_mean,
            self.baseline_std,
            self.history_len,
            self.latest_mean,
            self.change * 100.0,
            if self.regressed { "REGRESSION" } else { "ok" }
        )
    }
}

/// Per-sequence means of a FOM for one (benchmark, system).
fn sequence_means(
    db: &MetricsDatabase,
    benchmark: &str,
    system: &str,
    fom: &str,
) -> Vec<(u64, f64)> {
    use std::collections::BTreeMap;
    let mut by_seq: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for record in db.query(Some(benchmark), Some(system)) {
        if record.result.status != ExperimentStatus::Success {
            continue;
        }
        for f in &record.result.foms {
            if f.name == fom {
                if let Some(v) = f.as_f64() {
                    by_seq.entry(record.sequence).or_default().push(v);
                }
            }
        }
    }
    by_seq
        .into_iter()
        .filter(|(_, vs)| !vs.is_empty())
        .map(|(seq, vs)| (seq, vs.iter().sum::<f64>() / vs.len() as f64))
        .collect()
}

/// The statistic shared by every trajectory gate: FOM histories
/// ([`detect_regression`]) and bench trajectories
/// ([`crate::benchjson::compare_bench_reports`]).
#[derive(Debug, Clone, Copy)]
pub struct BaselineVerdict {
    /// Mean of the baseline series.
    pub baseline_mean: f64,
    /// Standard deviation of the baseline series.
    pub baseline_std: f64,
    /// Relative change of `latest` vs the baseline mean, signed so that
    /// negative is always *worse* (the direction is folded in).
    pub change: f64,
    /// `latest` sits more than two baseline standard deviations from the
    /// baseline mean — the noise band a verdict must clear in either
    /// direction. A zero-variance baseline (one prior point, or identical
    /// points) makes any nonzero change "beyond noise", so the threshold
    /// alone governs.
    pub beyond_noise: bool,
    /// Worse than baseline beyond both the threshold and the noise band.
    pub regressed: bool,
}

/// Compares `latest` against a non-empty baseline series.
///
/// A regression is flagged when `latest` is worse than the baseline mean by
/// more than `threshold` (relative) *and* more than two baseline standard
/// deviations, so ordinary run-to-run noise never alarms.
pub fn baseline_verdict(
    baseline: &[f64],
    latest: f64,
    higher_is_better: bool,
    threshold: f64,
) -> BaselineVerdict {
    let n = baseline.len().max(1) as f64;
    let baseline_mean = baseline.iter().sum::<f64>() / n;
    let var = baseline
        .iter()
        .map(|v| (v - baseline_mean).powi(2))
        .sum::<f64>()
        / n;
    let baseline_std = var.sqrt();
    let change = if higher_is_better {
        (latest - baseline_mean) / baseline_mean.abs().max(1e-12)
    } else {
        (baseline_mean - latest) / baseline_mean.abs().max(1e-12)
    };
    let beyond_noise = (latest - baseline_mean).abs() > 2.0 * baseline_std;
    BaselineVerdict {
        baseline_mean,
        baseline_std,
        change,
        beyond_noise,
        regressed: change < -threshold && beyond_noise,
    }
}

/// Compares the latest sequence to the history.
///
/// A regression is flagged when the latest mean is worse than the baseline
/// mean by more than `threshold` (relative) *and* more than two baseline
/// standard deviations (so ordinary run-to-run noise never alarms) — the
/// [`baseline_verdict`] statistic. Returns `None` when fewer than 3
/// sequences exist.
pub fn detect_regression(
    db: &MetricsDatabase,
    benchmark: &str,
    system: &str,
    fom: &str,
    higher_is_better: bool,
    threshold: f64,
) -> Option<RegressionReport> {
    let means = sequence_means(db, benchmark, system, fom);
    if means.len() < 3 {
        return None;
    }
    let (_, latest_mean) = *means.last().expect("len >= 3");
    let baseline: Vec<f64> = means[..means.len() - 1].iter().map(|(_, m)| *m).collect();
    let verdict = baseline_verdict(&baseline, latest_mean, higher_is_better, threshold);
    Some(RegressionReport {
        benchmark: benchmark.to_string(),
        system: system.to_string(),
        fom: fom.to_string(),
        baseline_mean: verdict.baseline_mean,
        baseline_std: verdict.baseline_std,
        latest_mean,
        change: verdict.change,
        regressed: verdict.regressed,
        history_len: baseline.len(),
    })
}

/// Heuristic: whether a FOM with these units improves downward (runtimes,
/// latencies) rather than upward (bandwidths, rates). Used by
/// [`scan_regressions`] when no explicit direction is configured.
///
/// Covers plain time units across the full range (`ns` … `hours`,
/// including abbreviation plurals like `usecs`) and per-iteration forms
/// (`s/iter`, `ms/op`, `usec/call`): time spent *per unit of work* is a
/// cost, while work *per unit of time* (`iter/s`, `GB/s`) is a rate and
/// improves upward. Getting this wrong inverts the verdict — a slowdown in
/// a minutes-unit FOM would be scored as an improvement.
pub fn lower_is_better_units(units: &str) -> bool {
    let u = units.trim().to_ascii_lowercase();
    // `s/iter`-style: a time unit per iteration/operation is a duration
    let effective = match u.split_once('/') {
        Some((numerator, denominator))
            if matches!(
                denominator.trim(),
                "iter"
                    | "iters"
                    | "iteration"
                    | "iterations"
                    | "op"
                    | "ops"
                    | "call"
                    | "calls"
                    | "rep"
                    | "reps"
                    | "step"
                    | "steps"
            ) =>
        {
            numerator.trim()
        }
        _ => u.as_str(),
    };
    is_time_unit(effective) || u.ends_with("seconds") || u.ends_with("latency")
}

/// Plain time units, smallest to largest.
fn is_time_unit(u: &str) -> bool {
    matches!(
        u,
        "ns" | "nsec"
            | "nsecs"
            | "nanosecond"
            | "nanoseconds"
            | "us"
            | "usec"
            | "usecs"
            | "microsecond"
            | "microseconds"
            | "ms"
            | "msec"
            | "msecs"
            | "millisecond"
            | "milliseconds"
            | "s"
            | "sec"
            | "secs"
            | "second"
            | "seconds"
            | "min"
            | "mins"
            | "minute"
            | "minutes"
            | "h"
            | "hr"
            | "hrs"
            | "hour"
            | "hours"
    )
}

/// Scans the whole database: every `(benchmark, system, fom)` triple with
/// enough history gets a [`detect_regression`] verdict, directions inferred
/// from FOM units via [`lower_is_better_units`]. The pipeline's
/// self-instrumentation pseudo-benchmark (`benchpark-pipeline`) is excluded —
/// its counters are health telemetry, not performance figures. Verdicts are
/// sorted by (benchmark, system, fom).
pub fn scan_regressions(db: &MetricsDatabase, threshold: f64) -> Vec<RegressionReport> {
    use std::collections::BTreeMap;
    // (benchmark, system, fom) -> units of the most recent sighting
    let mut triples: BTreeMap<(String, String, String), String> = BTreeMap::new();
    for record in db.all() {
        if record.benchmark == "benchpark-pipeline" {
            continue;
        }
        if record.result.status != ExperimentStatus::Success {
            continue;
        }
        for fom in &record.result.foms {
            if fom.as_f64().is_none() {
                continue;
            }
            triples.insert(
                (
                    record.benchmark.clone(),
                    record.system.clone(),
                    fom.name.clone(),
                ),
                fom.units.clone(),
            );
        }
    }
    triples
        .into_iter()
        .filter_map(|((benchmark, system, fom), units)| {
            detect_regression(
                db,
                &benchmark,
                &system,
                &fom,
                !lower_is_better_units(&units),
                threshold,
            )
        })
        .collect()
}
