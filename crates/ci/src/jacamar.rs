//! Jacamar: the setuid CI executor's user-mapping policy (§3.3.2).
//!
//! *"Instead of running multiple CI jobs all under a single service user,
//! Jacamar uses setuid to execute jobs as the user who triggered them. …
//! If a job is submitted by a user without an account at a participating
//! site, the job will be run as the user who approved the pull request."*

use std::collections::BTreeSet;

/// The site's user database.
#[derive(Debug, Clone, Default)]
pub struct SiteAccounts {
    users: BTreeSet<String>,
}

impl SiteAccounts {
    /// Builds from a user list.
    pub fn new(users: &[&str]) -> SiteAccounts {
        SiteAccounts {
            users: users.iter().map(|u| u.to_string()).collect(),
        }
    }

    /// Adds an account.
    pub fn add(&mut self, user: &str) {
        self.users.insert(user.to_string());
    }

    /// True if `user` has an account at this site.
    pub fn has_account(&self, user: &str) -> bool {
        self.users.contains(user)
    }
}

/// The Jacamar executor policy for one site.
#[derive(Debug, Clone, Default)]
pub struct Jacamar {
    pub accounts: SiteAccounts,
}

impl Jacamar {
    /// A Jacamar instance over the site's accounts.
    pub fn new(accounts: SiteAccounts) -> Jacamar {
        Jacamar { accounts }
    }

    /// Decides which OS user a job runs as: the triggering user when they
    /// have a site account; otherwise the approving administrator (who must
    /// have one). No service-account fallback exists — that is the point.
    pub fn resolve_user(&self, author: &str, approver: Option<&str>) -> Result<String, String> {
        if self.accounts.has_account(author) {
            return Ok(author.to_string());
        }
        match approver {
            Some(approver) if self.accounts.has_account(approver) => Ok(approver.to_string()),
            Some(approver) => Err(format!(
                "neither author `{author}` nor approver `{approver}` has a site account"
            )),
            None => Err(format!(
                "author `{author}` has no site account and the PR has no admin approval"
            )),
        }
    }
}
