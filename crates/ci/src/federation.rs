//! Multi-site federation: Table 1 row 6 names "Hubcast@LLNL/RIKEN/AWS" —
//! one canonical GitHub repository whose pull requests are validated by CI
//! at *several* HPC centers, each with its own GitLab, its own Jacamar user
//! database, and its own machines (§7.1's collaboration between on-premise
//! supercomputers and cloud instances).
//!
//! A PR becomes mergeable only when every participating site's pipeline is
//! green; each site reports its own status check
//! (`gitlab-ci/<site>`).

use crate::exec::{run_pipeline, JobExecutor};
use crate::hub::{Hub, StatusState};
use crate::hubcast::{Hubcast, MirrorDecision};
use crate::jacamar::Jacamar;
use crate::lab::{Lab, PipelineState};

/// One participating HPC center.
pub struct Site {
    /// Site name (`llnl`, `riken`, `aws`).
    pub name: String,
    /// The site's GitLab instance.
    pub lab: Lab,
    /// The site's user database / executor policy.
    pub jacamar: Jacamar,
    hubcast: Hubcast,
}

impl Site {
    /// Creates a site.
    pub fn new(name: &str, jacamar: Jacamar) -> Site {
        Site {
            name: name.to_string(),
            lab: Lab::new(),
            jacamar,
            hubcast: Hubcast::new(),
        }
    }
}

/// What one round of federation processing did for one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteOutcome {
    /// The site ran a pipeline with this final state.
    Ran(PipelineState),
    /// The PR is not yet eligible at this site.
    AwaitingApproval,
    /// Nothing new to do (already validated at this head).
    UpToDate,
    /// The site could not process the PR.
    Error(String),
}

/// The federation: drives a PR through every site's Hubcast + CI.
pub struct Federation {
    pub sites: Vec<Site>,
}

impl Federation {
    /// Builds a federation over the given sites.
    pub fn new(sites: Vec<Site>) -> Federation {
        Federation { sites }
    }

    /// Processes a PR at every site: mirror where eligible, execute the
    /// pipeline with the site's executor, and report a per-site status check
    /// back to the hub. `executors` supplies one executor per site, in the
    /// same order.
    pub fn process_pr(
        &mut self,
        hub: &mut Hub,
        pr: u64,
        executors: &mut [&mut dyn JobExecutor],
    ) -> Vec<(String, SiteOutcome)> {
        assert_eq!(
            executors.len(),
            self.sites.len(),
            "one executor per site required"
        );
        let mut outcomes = Vec::new();
        for (site, executor) in self.sites.iter_mut().zip(executors.iter_mut()) {
            let context = format!("gitlab-ci/{}", site.name);
            let outcome = match site
                .hubcast
                .process_pr(hub, &mut site.lab, &site.jacamar, pr)
            {
                MirrorDecision::AwaitingApproval => SiteOutcome::AwaitingApproval,
                MirrorDecision::AlreadyMirrored => SiteOutcome::UpToDate,
                MirrorDecision::Error(e) => {
                    if let Ok(pr) = hub.pr_mut(pr) {
                        pr.set_check(&context, StatusState::Failure, &e);
                    }
                    SiteOutcome::Error(e)
                }
                MirrorDecision::Mirrored { pipeline, run_as } => {
                    // the per-site check replaces Hubcast's generic
                    // `gitlab-ci/pipeline` check (meaningless across a
                    // federation)
                    if let Ok(pr) = hub.pr_mut(pr) {
                        pr.checks.retain(|c| c.context != "gitlab-ci/pipeline");
                    }
                    match run_pipeline(&mut site.lab, pipeline, &run_as, *executor) {
                        Ok(()) => {
                            let state = site
                                .lab
                                .pipeline(pipeline)
                                .map(|p| p.state())
                                .unwrap_or(PipelineState::Failed);
                            let (status, description) = match state {
                                PipelineState::Success => (
                                    StatusState::Success,
                                    format!("{}: all jobs passed", site.name),
                                ),
                                _ => (
                                    StatusState::Failure,
                                    format!("{}: pipeline #{pipeline} failed", site.name),
                                ),
                            };
                            if let Ok(pr) = hub.pr_mut(pr) {
                                pr.set_check(&context, status, &description);
                            }
                            SiteOutcome::Ran(state)
                        }
                        Err(e) => {
                            if let Ok(pr) = hub.pr_mut(pr) {
                                pr.set_check(&context, StatusState::Failure, &e);
                            }
                            SiteOutcome::Error(e)
                        }
                    }
                }
            };
            outcomes.push((site.name.clone(), outcome));
        }
        outcomes
    }
}
