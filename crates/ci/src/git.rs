//! A content-hashed git-like repository model.

use std::collections::BTreeMap;

/// One commit: a snapshot tree plus parentage.
#[derive(Debug, Clone)]
pub struct Commit {
    pub hash: String,
    pub parent: Option<String>,
    pub author: String,
    pub message: String,
    /// path → blob hash
    pub tree: BTreeMap<String, String>,
}

/// A repository: branches, commits, and a blob store.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    pub name: String,
    branches: BTreeMap<String, String>,
    commits: BTreeMap<String, Commit>,
    blobs: BTreeMap<String, String>,
}

fn hash_bytes(data: &[u8]) -> String {
    let mut a: u64 = 0xcbf29ce484222325;
    let mut b: u64 = 0x9e3779b97f4a7c15;
    for &byte in data {
        a ^= byte as u64;
        a = a.wrapping_mul(0x100000001b3);
        b = b.rotate_left(7) ^ a;
    }
    format!("{a:016x}{b:016x}")
}

impl Repository {
    /// Initializes an empty repository with a `main` branch rooted at an
    /// empty commit.
    pub fn init(name: &str) -> Repository {
        let mut repo = Repository {
            name: name.to_string(),
            ..Repository::default()
        };
        let root = Commit {
            hash: hash_bytes(name.as_bytes()),
            parent: None,
            author: "init".to_string(),
            message: "initial commit".to_string(),
            tree: BTreeMap::new(),
        };
        repo.branches.insert("main".to_string(), root.hash.clone());
        repo.commits.insert(root.hash.clone(), root);
        repo
    }

    /// Commits `changes` (path → new content; empty content deletes) on top
    /// of `branch`, returning the new commit hash.
    pub fn commit(
        &mut self,
        branch: &str,
        author: &str,
        message: &str,
        changes: &[(&str, &str)],
    ) -> Result<String, String> {
        let parent_hash = self
            .branches
            .get(branch)
            .cloned()
            .ok_or_else(|| format!("no branch `{branch}`"))?;
        let mut tree = self.commits[&parent_hash].tree.clone();
        for (path, content) in changes {
            if content.is_empty() {
                tree.remove(*path);
            } else {
                let blob = hash_bytes(content.as_bytes());
                self.blobs.insert(blob.clone(), content.to_string());
                tree.insert(path.to_string(), blob);
            }
        }
        let mut id_input = format!("{parent_hash}|{author}|{message}|");
        for (path, blob) in &tree {
            id_input.push_str(path);
            id_input.push('=');
            id_input.push_str(blob);
            id_input.push(';');
        }
        let hash = hash_bytes(id_input.as_bytes());
        let commit = Commit {
            hash: hash.clone(),
            parent: Some(parent_hash),
            author: author.to_string(),
            message: message.to_string(),
            tree,
        };
        self.commits.insert(hash.clone(), commit);
        self.branches.insert(branch.to_string(), hash.clone());
        Ok(hash)
    }

    /// Creates `new` pointing at `from`'s head.
    pub fn create_branch(&mut self, new: &str, from: &str) -> Result<(), String> {
        let head = self
            .branches
            .get(from)
            .cloned()
            .ok_or_else(|| format!("no branch `{from}`"))?;
        self.branches.insert(new.to_string(), head);
        Ok(())
    }

    /// Head commit of a branch.
    pub fn head(&self, branch: &str) -> Option<&Commit> {
        self.commits.get(self.branches.get(branch)?)
    }

    /// A commit by hash.
    pub fn commit_by_hash(&self, hash: &str) -> Option<&Commit> {
        self.commits.get(hash)
    }

    /// File content at a branch head.
    pub fn read(&self, branch: &str, path: &str) -> Option<&str> {
        let commit = self.head(branch)?;
        let blob = commit.tree.get(path)?;
        self.blobs.get(blob).map(String::as_str)
    }

    /// A full clone (fork).
    pub fn fork(&self, new_name: &str) -> Repository {
        let mut forked = self.clone();
        forked.name = new_name.to_string();
        forked
    }

    /// Imports a branch head (and its history + blobs) from another
    /// repository — the mirroring primitive Hubcast uses.
    pub fn import_branch(
        &mut self,
        source: &Repository,
        source_branch: &str,
        as_branch: &str,
    ) -> Result<String, String> {
        let head = source
            .branches
            .get(source_branch)
            .ok_or_else(|| format!("source has no branch `{source_branch}`"))?
            .clone();
        // walk ancestry, copying missing commits and blobs
        let mut cursor = Some(head.clone());
        while let Some(hash) = cursor {
            if self.commits.contains_key(&hash) {
                break;
            }
            let commit = source
                .commits
                .get(&hash)
                .ok_or_else(|| format!("source missing commit {hash}"))?
                .clone();
            for blob in commit.tree.values() {
                if let Some(content) = source.blobs.get(blob) {
                    self.blobs
                        .entry(blob.clone())
                        .or_insert_with(|| content.clone());
                }
            }
            cursor = commit.parent.clone();
            self.commits.insert(hash.clone(), commit);
        }
        self.branches.insert(as_branch.to_string(), head.clone());
        Ok(head)
    }

    /// Paths changed between a commit and its parent.
    pub fn changed_paths(&self, hash: &str) -> Vec<String> {
        let Some(commit) = self.commits.get(hash) else {
            return Vec::new();
        };
        let parent_tree = commit
            .parent
            .as_ref()
            .and_then(|p| self.commits.get(p))
            .map(|c| c.tree.clone())
            .unwrap_or_default();
        let mut changed: Vec<String> = commit
            .tree
            .iter()
            .filter(|(path, blob)| parent_tree.get(*path) != Some(blob))
            .map(|(path, _)| path.clone())
            .collect();
        for path in parent_tree.keys() {
            if !commit.tree.contains_key(path) {
                changed.push(path.clone());
            }
        }
        changed
    }

    /// Branch names.
    pub fn branches(&self) -> impl Iterator<Item = &str> {
        self.branches.keys().map(String::as_str)
    }

    /// Fast-forwards `target` to `source` head (merge for our linear
    /// histories). Errors if `target`'s head is not an ancestor of the
    /// source head.
    pub fn fast_forward(&mut self, target: &str, source_head: &str) -> Result<(), String> {
        let target_head = self
            .branches
            .get(target)
            .cloned()
            .ok_or_else(|| format!("no branch `{target}`"))?;
        // verify ancestry
        let mut cursor = Some(source_head.to_string());
        let mut is_ancestor = false;
        while let Some(hash) = cursor {
            if hash == target_head {
                is_ancestor = true;
                break;
            }
            cursor = self.commits.get(&hash).and_then(|c| c.parent.clone());
        }
        if !is_ancestor {
            return Err(format!(
                "cannot fast-forward `{target}`: histories diverged"
            ));
        }
        self.branches
            .insert(target.to_string(), source_head.to_string());
        Ok(())
    }
}
