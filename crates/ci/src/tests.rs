//! Tests for the CI substrate: git model, hub/lab services, Hubcast gating,
//! Jacamar user mapping, and pipeline execution.

use crate::{
    run_pipeline, BenchparkExecutor, Hub, Hubcast, Jacamar, JobState, Lab, MirrorDecision,
    PipelineState, PrState, Repository, SiteAccounts, StatusState,
};
use benchpark_cluster::{Cluster, Machine};
use benchpark_concretizer::SiteConfig;
use benchpark_pkg::Repo;

// ---------------------------------------------------------------------------
// Git model
// ---------------------------------------------------------------------------

#[test]
fn git_commit_read_and_history() {
    let mut repo = Repository::init("llnl/benchpark");
    let c1 = repo
        .commit(
            "main",
            "olga",
            "add saxpy",
            &[("experiments/saxpy.yaml", "n: 512\n")],
        )
        .unwrap();
    let c2 = repo
        .commit(
            "main",
            "olga",
            "bump n",
            &[("experiments/saxpy.yaml", "n: 1024\n")],
        )
        .unwrap();
    assert_ne!(c1, c2);
    assert_eq!(
        repo.read("main", "experiments/saxpy.yaml"),
        Some("n: 1024\n")
    );
    assert_eq!(repo.head("main").unwrap().hash, c2);
    assert_eq!(repo.head("main").unwrap().parent.as_ref(), Some(&c1));
    assert_eq!(
        repo.changed_paths(&c2),
        vec!["experiments/saxpy.yaml".to_string()]
    );
}

#[test]
fn git_hash_is_content_addressed() {
    let mut a = Repository::init("r");
    let mut b = Repository::init("r");
    let ha = a.commit("main", "u", "m", &[("f", "x")]).unwrap();
    let hb = b.commit("main", "u", "m", &[("f", "x")]).unwrap();
    assert_eq!(ha, hb);
    let hc = b.commit("main", "u", "m", &[("f", "y")]).unwrap();
    assert_ne!(ha, hc);
}

#[test]
fn git_branch_fork_import() {
    let mut repo = Repository::init("llnl/benchpark");
    repo.commit("main", "olga", "base", &[("README", "hi")])
        .unwrap();

    let mut fork = repo.fork("alice/benchpark");
    fork.create_branch("feature", "main").unwrap();
    let head = fork
        .commit("feature", "alice", "tweak", &[("README", "hello")])
        .unwrap();

    let mut mirror = Repository::init("mirror");
    let imported = mirror.import_branch(&fork, "feature", "pr-1").unwrap();
    assert_eq!(imported, head);
    assert_eq!(mirror.read("pr-1", "README"), Some("hello"));
}

#[test]
fn git_fast_forward_rules() {
    let mut repo = Repository::init("r");
    repo.commit("main", "u", "base", &[("f", "1")]).unwrap();
    repo.create_branch("feature", "main").unwrap();
    let feat = repo.commit("feature", "u", "work", &[("f", "2")]).unwrap();
    repo.fast_forward("main", &feat).unwrap();
    assert_eq!(repo.read("main", "f"), Some("2"));

    // diverged: main moves on, feature2 branches from the old head
    repo.create_branch("feature2", "main").unwrap();
    let f2 = repo.commit("feature2", "u", "a", &[("f", "3")]).unwrap();
    repo.commit("main", "u", "b", &[("g", "4")]).unwrap();
    assert!(repo.fast_forward("main", &f2).is_err());
}

// ---------------------------------------------------------------------------
// Hub: PRs, approvals, merge gating
// ---------------------------------------------------------------------------

fn hub_with_pr() -> (Hub, u64) {
    let mut canonical = Repository::init("llnl/benchpark");
    canonical
        .commit(
            "main",
            "olga",
            "base",
            &[(".gitlab-ci.yml", CI_CONFIG), ("README", "benchpark")],
        )
        .unwrap();
    let mut hub = Hub::new(canonical);
    hub.add_admin("olga");
    let fork = hub.fork("llnl/benchpark", "jens").unwrap();
    let repo = hub.repos.get_mut(&fork).unwrap();
    repo.create_branch("add-bcast", "main").unwrap();
    repo.commit(
        "add-bcast",
        "jens",
        "add bcast benchmark",
        &[(
            "ci/bcast_cts1.sbatch",
            "#SBATCH -N 2\n#SBATCH -n 16\nsrun -n 16 osu_bcast -m 8:8 -i 100\n",
        )],
    )
    .unwrap();
    let pr = hub
        .open_pr("llnl/benchpark", &fork, "add-bcast", "main", "jens")
        .unwrap();
    (hub, pr)
}

const CI_CONFIG: &str = "stages:\n  - build\n  - bench\nbuild-cts1:\n  stage: build\n  script:\n    - spack install saxpy+openmp\n  tags: [cts1]\nbench-cts1:\n  stage: bench\n  script:\n    - submit cts1 ci/bcast_cts1.sbatch\n  tags: [cts1]\n";

#[test]
fn approvals_policy() {
    let (mut hub, pr) = hub_with_pr();
    // outsiders cannot review
    assert!(hub.approve(pr, "random").is_err());
    // authors cannot self-approve
    hub.add_org_member("jens");
    assert!(hub.approve(pr, "jens").is_err());
    // admins can
    hub.approve(pr, "olga").unwrap();
    assert!(hub.pr(pr).unwrap().approvals.contains("olga"));
}

#[test]
fn merge_requires_approval_and_green_checks() {
    let (mut hub, pr) = hub_with_pr();
    assert!(hub.merge("llnl/benchpark", pr).is_err()); // no approval
    hub.approve(pr, "olga").unwrap();
    assert!(hub.merge("llnl/benchpark", pr).is_err()); // no checks
    hub.pr_mut(pr)
        .unwrap()
        .set_check("gitlab-ci/pipeline", StatusState::Success, "ok");
    hub.merge("llnl/benchpark", pr).unwrap();
    assert_eq!(hub.pr(pr).unwrap().state, PrState::Merged);
    // the canonical main now has the new file
    assert!(hub.repos["llnl/benchpark"]
        .read("main", "ci/bcast_cts1.sbatch")
        .is_some());
}

// ---------------------------------------------------------------------------
// Hubcast: security criteria and mirroring (§3.3.1)
// ---------------------------------------------------------------------------

#[test]
fn untrusted_pr_waits_for_admin_approval() {
    let (mut hub, pr) = hub_with_pr();
    let mut lab = Lab::new();
    let jacamar = Jacamar::new(SiteAccounts::new(&["olga"]));
    let mut hubcast = Hubcast::new();

    // jens is not in the trusted org: no mirroring
    let decision = hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr);
    assert_eq!(decision, MirrorDecision::AwaitingApproval);
    assert!(lab.pipelines().is_empty());
    let check = &hub.pr(pr).unwrap().checks[0];
    assert_eq!(check.context, "hubcast/mirror");
    assert_eq!(check.state, StatusState::Pending);

    // after the admin approves, the branch mirrors and a pipeline appears
    hub.approve(pr, "olga").unwrap();
    let decision = hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr);
    match decision {
        MirrorDecision::Mirrored { pipeline, run_as } => {
            assert_eq!(run_as, "olga"); // jens has no site account
            assert!(lab.pipeline(pipeline).is_some());
        }
        other => panic!("expected mirror, got {other:?}"),
    }
    // idempotent at the same head
    let again = hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr);
    assert_eq!(again, MirrorDecision::AlreadyMirrored);
}

#[test]
fn updated_pr_requires_fresh_approval_and_remirrors() {
    let (mut hub, pr) = hub_with_pr();
    let mut lab = Lab::new();
    let jacamar = Jacamar::new(SiteAccounts::new(&["olga"]));
    let mut hubcast = Hubcast::new();

    hub.approve(pr, "olga").unwrap();
    let MirrorDecision::Mirrored { pipeline: p1, .. } =
        hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr)
    else {
        panic!("expected first mirror");
    };

    // the contributor pushes a new commit to the PR branch
    let source_repo = hub.pr(pr).unwrap().source_repo.clone();
    hub.repos
        .get_mut(&source_repo)
        .unwrap()
        .commit(
            "add-bcast",
            "jens",
            "tweak message size",
            &[(
                "ci/bcast_cts1.sbatch",
                "#SBATCH -N 2\n#SBATCH -n 16\nsrun -n 16 osu_bcast -m 64:64 -i 100\n",
            )],
        )
        .unwrap();
    assert!(hub.refresh_pr_head(pr).unwrap());
    assert!(!hub.refresh_pr_head(pr).unwrap(), "idempotent");

    // stale approval was dismissed: the new head must wait again
    assert_eq!(
        hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr),
        MirrorDecision::AwaitingApproval
    );
    hub.approve(pr, "olga").unwrap();
    let MirrorDecision::Mirrored { pipeline: p2, .. } =
        hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr)
    else {
        panic!("expected re-mirror");
    };
    assert_ne!(p1, p2, "updated head gets a fresh pipeline");
    // the mirrored branch carries the new content
    let mirrored = lab
        .repo
        .as_ref()
        .unwrap()
        .read("pr-1", "ci/bcast_cts1.sbatch")
        .unwrap();
    assert!(mirrored.contains("-m 64:64"), "{mirrored}");
}

#[test]
fn trusted_member_mirrors_without_approval() {
    let (mut hub, pr) = hub_with_pr();
    hub.add_org_member("jens");
    let mut lab = Lab::new();
    let jacamar = Jacamar::new(SiteAccounts::new(&["jens", "olga"]));
    let mut hubcast = Hubcast::new();
    match hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr) {
        MirrorDecision::Mirrored { run_as, .. } => assert_eq!(run_as, "jens"),
        other => panic!("expected mirror, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Jacamar (§3.3.2)
// ---------------------------------------------------------------------------

#[test]
fn jacamar_user_mapping() {
    let jacamar = Jacamar::new(SiteAccounts::new(&["olga", "alec"]));
    // author with account runs as themself
    assert_eq!(jacamar.resolve_user("alec", Some("olga")).unwrap(), "alec");
    // author without account runs as the approver
    assert_eq!(jacamar.resolve_user("jens", Some("olga")).unwrap(), "olga");
    // neither has an account → refusal (no service-account fallback)
    assert!(jacamar.resolve_user("jens", Some("doug")).is_err());
    assert!(jacamar.resolve_user("jens", None).is_err());
}

// ---------------------------------------------------------------------------
// Pipelines: parsing and execution (Figure 6 end to end)
// ---------------------------------------------------------------------------

#[test]
fn ci_config_parsing() {
    let (stages, jobs) = crate::lab::parse_ci_config(CI_CONFIG).unwrap();
    assert_eq!(stages, vec!["build", "bench"]);
    assert_eq!(jobs.len(), 2);
    assert_eq!(jobs[0].name, "build-cts1");
    assert_eq!(jobs[0].stage, "build");
    assert_eq!(jobs[0].script, vec!["spack install saxpy+openmp"]);
    assert_eq!(jobs[0].tags, vec!["cts1"]);

    assert!(crate::lab::parse_ci_config("stages: [a]\n").is_err()); // no jobs
    assert!(
        crate::lab::parse_ci_config("stages: [a]\nj:\n  stage: b\n  script: [x]\n").is_err(),
        "unknown stage must be rejected"
    );
}

#[test]
fn ci_config_rejects_duplicate_job_names() {
    // Block style: the same job declared twice must be a parse error, not a
    // silent last-writer-wins overwrite.
    let block =
        "stages: [a]\nbuild:\n  stage: a\n  script: [x]\nbuild:\n  stage: a\n  script: [y]\n";
    let err = crate::lab::parse_ci_config(block).unwrap_err();
    assert!(err.contains("duplicate"), "{err}");

    // Flow style used to slip through the duplicate check entirely.
    let flow = "{stages: [a], build: {stage: a, script: [x]}, build: {stage: a, script: [y]}}\n";
    let err = crate::lab::parse_ci_config(flow).unwrap_err();
    assert!(err.contains("duplicate"), "{err}");
}

/// Figure 6, end to end: PR → approval → Hubcast mirror → GitLab pipeline
/// (build via Spack + benchmark run on the simulated cluster) → status back
/// on GitHub → merge.
#[test]
fn golden_fig6_automation_workflow() {
    let (mut hub, pr) = hub_with_pr();
    let mut lab = Lab::new();
    let jacamar = Jacamar::new(SiteAccounts::new(&["olga"]));
    let mut hubcast = Hubcast::new();

    hub.approve(pr, "olga").unwrap();
    let MirrorDecision::Mirrored { pipeline, run_as } =
        hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr)
    else {
        panic!("mirror expected");
    };

    // CI builders + benchmark runners
    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts());
    executor.add_cluster("cts1", Cluster::new(Machine::cts1()));
    run_pipeline(&mut lab, pipeline, &run_as, &mut executor).unwrap();

    let p = lab.pipeline(pipeline).unwrap();
    assert_eq!(p.state(), PipelineState::Success, "{:#?}", p.jobs);
    assert!(p.jobs.iter().all(|j| j.ran_as.as_deref() == Some("olga")));
    let build = &p.jobs[0];
    assert!(build.log.contains("installed"), "{}", build.log);
    let bench = &p.jobs[1];
    assert!(
        bench.log.contains("OSU MPI Broadcast Latency Test"),
        "{}",
        bench.log
    );

    // status streams back; PR becomes mergeable
    hubcast.report_pipeline(&mut hub, &lab, pr, pipeline);
    assert!(hub.pr(pr).unwrap().checks_green());
    hub.merge("llnl/benchpark", pr).unwrap();
    assert_eq!(hub.pr(pr).unwrap().state, PrState::Merged);
}

#[test]
fn pipeline_failure_blocks_merge() {
    // PR whose benchmark script launches an unknown binary
    let mut canonical = Repository::init("llnl/benchpark");
    canonical
        .commit("main", "olga", "base", &[(".gitlab-ci.yml", CI_CONFIG)])
        .unwrap();
    let mut hub = Hub::new(canonical);
    hub.add_admin("olga");
    let fork = hub.fork("llnl/benchpark", "eve").unwrap();
    let repo = hub.repos.get_mut(&fork).unwrap();
    repo.create_branch("bad", "main").unwrap();
    repo.commit(
        "bad",
        "eve",
        "broken bench",
        &[("ci/bcast_cts1.sbatch", "srun -n 4 nonexistent_binary\n")],
    )
    .unwrap();
    let pr = hub
        .open_pr("llnl/benchpark", &fork, "bad", "main", "eve")
        .unwrap();
    hub.approve(pr, "olga").unwrap();

    let mut lab = Lab::new();
    let jacamar = Jacamar::new(SiteAccounts::new(&["olga"]));
    let mut hubcast = Hubcast::new();
    let MirrorDecision::Mirrored { pipeline, run_as } =
        hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr)
    else {
        panic!("mirror expected");
    };
    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts());
    executor.add_cluster("cts1", Cluster::new(Machine::cts1()));
    run_pipeline(&mut lab, pipeline, &run_as, &mut executor).unwrap();

    let p = lab.pipeline(pipeline).unwrap();
    assert_eq!(p.state(), PipelineState::Failed);
    // build succeeded, bench failed
    assert_eq!(p.jobs[0].state, JobState::Success);
    assert_eq!(p.jobs[1].state, JobState::Failed);

    hubcast.report_pipeline(&mut hub, &lab, pr, pipeline);
    let err = hub.merge("llnl/benchpark", pr).unwrap_err();
    assert!(err.contains("failing"), "{err}");
}

#[test]
fn failed_stage_skips_later_stages() {
    let config = "stages:\n  - build\n  - bench\nb:\n  stage: build\n  script:\n    - spack install definitely-not-a-package\nr:\n  stage: bench\n  script:\n    - echo never runs\n";
    let mut repo = Repository::init("r");
    repo.commit("main", "u", "c", &[(".gitlab-ci.yml", config)])
        .unwrap();
    let mut lab = Lab::new();
    let source = repo.clone();
    let id = lab.receive_mirror(&source, "main", "pr-1").unwrap();

    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts());
    run_pipeline(&mut lab, id, "olga", &mut executor).unwrap();
    let p = lab.pipeline(id).unwrap();
    assert_eq!(p.jobs[0].state, JobState::Failed);
    // bugfix: skipped jobs are marked explicitly, not left as Created
    assert_eq!(
        p.jobs[1].state,
        JobState::Skipped,
        "bench stage must be skipped"
    );
    assert_eq!(p.state(), PipelineState::Failed);
}

#[test]
fn pipeline_state_empty_and_partial_progress() {
    use crate::lab::{CiJob, Pipeline};

    let job = |state: JobState| CiJob {
        name: "j".to_string(),
        stage: "build".to_string(),
        script: vec!["echo hi".to_string()],
        tags: Vec::new(),
        retry: 0,
        allow_failure: false,
        needs: Vec::new(),
        state,
        ran_as: None,
        log: String::new(),
        started_at: None,
        finished_at: None,
    };
    let pipeline = |jobs: Vec<CiJob>| Pipeline {
        id: 1,
        commit: "c".to_string(),
        branch: "pr-1".to_string(),
        stages: vec!["build".to_string()],
        jobs,
    };

    // regression: a pipeline with no jobs must not be vacuously Success
    assert_eq!(pipeline(Vec::new()).state(), PipelineState::Pending);
    // nothing started yet
    assert_eq!(
        pipeline(vec![job(JobState::Created), job(JobState::Created)]).state(),
        PipelineState::Pending
    );
    // regression: some jobs done, some not yet started → still Running
    assert_eq!(
        pipeline(vec![job(JobState::Success), job(JobState::Created)]).state(),
        PipelineState::Running
    );
    assert_eq!(
        pipeline(vec![job(JobState::Running), job(JobState::Created)]).state(),
        PipelineState::Running
    );
    // terminal states
    assert_eq!(
        pipeline(vec![job(JobState::Success), job(JobState::Success)]).state(),
        PipelineState::Success
    );
    assert_eq!(
        pipeline(vec![job(JobState::Success), job(JobState::Failed)]).state(),
        PipelineState::Failed
    );
}

/// Table 1 row 6: "Hubcast@LLNL/RIKEN/AWS" — three sites validate the same
/// PR; each posts its own status; all must pass before merge.
#[test]
fn federation_requires_all_sites_green() {
    use crate::{Federation, PipelineState, Site, SiteOutcome};

    // CI config whose bench job targets `cts1` — a runner every site has to
    // provide under its own tag mapping.
    let (mut hub, pr) = hub_with_pr();
    hub.approve(pr, "olga").unwrap();

    let mut federation = Federation::new(vec![
        Site::new("llnl", Jacamar::new(SiteAccounts::new(&["olga"]))),
        Site::new("riken", Jacamar::new(SiteAccounts::new(&["olga", "jens"]))),
        Site::new("aws", Jacamar::new(SiteAccounts::new(&["olga", "heidi"]))),
    ]);

    let pkg_repo = Repo::builtin();
    let site_cfg = SiteConfig::example_cts();
    let mut llnl = BenchparkExecutor::new(&pkg_repo, site_cfg.clone());
    llnl.add_cluster("cts1", Cluster::new(Machine::cts1()));
    let mut riken = BenchparkExecutor::new(&pkg_repo, site_cfg.clone());
    riken.add_cluster("cts1", Cluster::new(Machine::ats4()));
    // AWS "forgot" to register a runner for the cts1 tag → its bench job fails
    let mut aws = BenchparkExecutor::new(&pkg_repo, site_cfg.clone());

    let outcomes = federation.process_pr(&mut hub, pr, &mut [&mut llnl, &mut riken, &mut aws]);
    assert_eq!(outcomes.len(), 3);
    assert_eq!(outcomes[0].1, SiteOutcome::Ran(PipelineState::Success));
    assert_eq!(outcomes[1].1, SiteOutcome::Ran(PipelineState::Success));
    assert_eq!(outcomes[2].1, SiteOutcome::Ran(PipelineState::Failed));

    // per-site status checks on the PR
    let checks = &hub.pr(pr).unwrap().checks;
    let check = |ctx: &str| checks.iter().find(|c| c.context == ctx).unwrap().state;
    assert_eq!(check("gitlab-ci/llnl"), StatusState::Success);
    assert_eq!(check("gitlab-ci/riken"), StatusState::Success);
    assert_eq!(check("gitlab-ci/aws"), StatusState::Failure);
    // merge is blocked by the failing site
    assert!(hub.merge("llnl/benchpark", pr).is_err());

    // AWS fixes its runner; reprocessing is up-to-date at green sites and
    // retries nothing (same head already mirrored there)
    aws.add_cluster("cts1", Cluster::new(Machine::cloud_c5()));
    let outcomes = federation.process_pr(&mut hub, pr, &mut [&mut llnl, &mut riken, &mut aws]);
    assert_eq!(outcomes[0].1, SiteOutcome::UpToDate);
    assert_eq!(
        outcomes[2].1,
        SiteOutcome::UpToDate,
        "same head is not re-run"
    );

    // the contributor pushes a fix commit → all sites revalidate
    let source_repo = hub.pr(pr).unwrap().source_repo.clone();
    hub.repos
        .get_mut(&source_repo)
        .unwrap()
        .commit(
            "add-bcast",
            "jens",
            "bump iters",
            &[(
                "ci/bcast_cts1.sbatch",
                "#SBATCH -N 2\n#SBATCH -n 16\nsrun -n 16 osu_bcast -m 8:8 -i 200\n",
            )],
        )
        .unwrap();
    hub.refresh_pr_head(pr).unwrap();
    hub.approve(pr, "olga").unwrap();
    let outcomes = federation.process_pr(&mut hub, pr, &mut [&mut llnl, &mut riken, &mut aws]);
    assert!(
        outcomes
            .iter()
            .all(|(_, o)| *o == SiteOutcome::Ran(PipelineState::Success)),
        "{outcomes:?}"
    );
    hub.merge("llnl/benchpark", pr).unwrap();
}

#[test]
fn binary_cache_shared_across_pipeline_runs() {
    let mut repo = Repository::init("r");
    let config =
        "stages: [build]\nb:\n  stage: build\n  script:\n    - spack install amg2023+caliper\n";
    repo.commit("main", "u", "c", &[(".gitlab-ci.yml", config)])
        .unwrap();

    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts());

    let mut lab = Lab::new();
    let p1 = lab.receive_mirror(&repo.clone(), "main", "pr-1").unwrap();
    run_pipeline(&mut lab, p1, "olga", &mut executor).unwrap();
    let builds_before = executor.cache.len();
    assert!(builds_before > 0);

    // a second pipeline on a "fresh machine" (empty DB) hits the cache
    executor.db = benchpark_spack::InstallDatabase::new();
    let p2 = lab.receive_mirror(&repo.clone(), "main", "pr-2").unwrap();
    run_pipeline(&mut lab, p2, "olga", &mut executor).unwrap();
    let log = &lab.pipeline(p2).unwrap().jobs[0].log;
    assert!(log.contains("FetchFromCache"), "{log}");
    assert!(
        !log.contains(" Build "),
        "second run should not rebuild: {log}"
    );
}

// ---------------------------------------------------------------------------
// Resilience: retry, allow_failure, flaky runners
// ---------------------------------------------------------------------------

#[test]
fn ci_config_parses_retry_and_allow_failure() {
    let config = "stages: [a]\nplain:\n  stage: a\n  script: [x]\nint-form:\n  stage: a\n  script: [x]\n  retry: 2\nmap-form:\n  stage: a\n  script: [x]\n  retry:\n    max: 3\ntolerated:\n  stage: a\n  script: [x]\n  allow_failure: true\n";
    let (_, jobs) = crate::lab::parse_ci_config(config).unwrap();
    let by_name = |n: &str| jobs.iter().find(|j| j.name == n).unwrap();
    assert_eq!(by_name("plain").retry, 0);
    assert!(!by_name("plain").allow_failure);
    assert_eq!(by_name("int-form").retry, 2);
    assert_eq!(by_name("map-form").retry, 3);
    assert!(by_name("tolerated").allow_failure);
}

#[test]
fn allow_failure_does_not_fail_pipeline_or_skip_stages() {
    let config = "stages:\n  - build\n  - bench\ncanary:\n  stage: build\n  script:\n    - spack install definitely-not-a-package\n  allow_failure: true\nr:\n  stage: bench\n  script:\n    - echo still runs\n";
    let mut repo = Repository::init("r");
    repo.commit("main", "u", "c", &[(".gitlab-ci.yml", config)])
        .unwrap();
    let mut lab = Lab::new();
    let id = lab.receive_mirror(&repo.clone(), "main", "pr-1").unwrap();

    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts());
    run_pipeline(&mut lab, id, "olga", &mut executor).unwrap();
    let p = lab.pipeline(id).unwrap();
    assert_eq!(p.jobs[0].state, JobState::Failed);
    assert_eq!(p.jobs[1].state, JobState::Success, "later stage must run");
    assert_eq!(p.state(), PipelineState::Success, "failure was tolerated");
}

#[test]
fn retry_recovers_flaky_runner() {
    use benchpark_resilience::FaultInjector;
    use benchpark_telemetry::TelemetrySink;

    let config = "stages: [build]\nb:\n  stage: build\n  script:\n    - echo ok\n  retry: 3\n";
    let mut repo = Repository::init("r");
    repo.commit("main", "u", "c", &[(".gitlab-ci.yml", config)])
        .unwrap();
    let mut lab = Lab::new();
    let id = lab.receive_mirror(&repo.clone(), "main", "pr-1").unwrap();

    let pkg_repo = Repo::builtin();
    let sink = TelemetrySink::recording();
    let mut executor =
        BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts()).with_telemetry(sink.clone());
    // the first two attempts die at the runner level, the third succeeds
    executor.inject_runner_faults(FaultInjector::new(1.0, 11).with_budget(2));
    run_pipeline(&mut lab, id, "olga", &mut executor).unwrap();

    let p = lab.pipeline(id).unwrap();
    assert_eq!(p.state(), PipelineState::Success, "{:#?}", p.jobs);
    assert!(p.jobs[0].log.contains("runner system failure"));
    assert!(p.jobs[0].log.contains("attempt 3/4"), "{}", p.jobs[0].log);
    let report = sink.report().unwrap();
    assert_eq!(report.counter("retry.attempts"), 2);
    assert_eq!(report.counter("ci.runner.flakes"), 2);
}

#[test]
fn retry_exhaustion_fails_job_and_skips_later_stages() {
    use benchpark_resilience::FaultInjector;

    let config = "stages:\n  - build\n  - bench\nb:\n  stage: build\n  script:\n    - echo ok\n  retry: 1\nr:\n  stage: bench\n  script:\n    - echo never\n";
    let mut repo = Repository::init("r");
    repo.commit("main", "u", "c", &[(".gitlab-ci.yml", config)])
        .unwrap();
    let mut lab = Lab::new();
    let id = lab.receive_mirror(&repo.clone(), "main", "pr-1").unwrap();

    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts());
    executor.inject_runner_faults(FaultInjector::new(1.0, 5)); // unbounded outage
    run_pipeline(&mut lab, id, "olga", &mut executor).unwrap();

    let p = lab.pipeline(id).unwrap();
    assert_eq!(p.jobs[0].state, JobState::Failed);
    assert_eq!(p.jobs[1].state, JobState::Skipped);
    assert_eq!(p.state(), PipelineState::Failed);
}

/// The convergence guarantee behind runner-level fault injection: because a
/// flake strikes *before* the job reaches the cluster, the eventual
/// successful attempt replays exactly the work the fault-free pipeline does
/// — same cluster job ids, same deterministic noise, same FOMs.
#[test]
fn flaky_pipeline_converges_to_fault_free_results() {
    use benchpark_resilience::FaultInjector;
    use benchpark_telemetry::TelemetrySink;

    let config = "stages:\n  - build\n  - bench\nbuild-cts1:\n  stage: build\n  script:\n    - spack install saxpy+openmp\n  tags: [cts1]\n  retry: 3\nbench-cts1:\n  stage: bench\n  script:\n    - submit cts1 ci/bcast_cts1.sbatch\n  tags: [cts1]\n  retry: 3\n";
    let sbatch = "#SBATCH -N 2\n#SBATCH -n 16\nsrun -n 16 osu_bcast -m 8:8 -i 100\n";
    let mut repo = Repository::init("r");
    repo.commit(
        "main",
        "u",
        "c",
        &[(".gitlab-ci.yml", config), ("ci/bcast_cts1.sbatch", sbatch)],
    )
    .unwrap();

    let pkg_repo = Repo::builtin();
    let run = |faults: Option<FaultInjector>| {
        let mut lab = Lab::new();
        let id = lab.receive_mirror(&repo.clone(), "main", "pr-1").unwrap();
        let sink = TelemetrySink::recording();
        let mut executor = BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts())
            .with_telemetry(sink.clone());
        executor.add_cluster("cts1", Cluster::new(Machine::cts1()));
        if let Some(injector) = faults {
            executor.inject_runner_faults(injector);
        }
        run_pipeline(&mut lab, id, "olga", &mut executor).unwrap();
        let p = lab.pipeline(id).unwrap();
        assert_eq!(p.state(), PipelineState::Success, "{:#?}", p.jobs);
        (p.jobs[1].log.clone(), sink.report().unwrap())
    };

    let (clean_bench, _) = run(None);
    // a 30% flaky runner, as a paper-scale fault load; the budget guarantees
    // the pipeline converges within the per-job retry allowance
    let (flaky_bench, report) = run(Some(FaultInjector::new(0.3, 16).with_budget(3)));

    assert!(
        report.counter("ci.runner.flakes") > 0,
        "seed must produce at least one flake for the test to mean anything"
    );
    assert!(report.counter("retry.attempts") > 0);
    // the successful attempt's output — FOMs included — is byte-identical
    assert!(
        flaky_bench.ends_with(&clean_bench),
        "flaky run must converge to the fault-free log;\nclean:\n{clean_bench}\nflaky:\n{flaky_bench}"
    );
    assert_ne!(flaky_bench, clean_bench, "retry markers precede the replay");
}

// ---------------------------------------------------------------------------
// Job DAGs: same-stage independence and `needs:`
// ---------------------------------------------------------------------------

/// Regression: GitLab runs every job within a stage regardless of sibling
/// failures — only *later* stages gate on the outcome. The old stage loop
/// skipped the rest of a stage as soon as one job failed.
#[test]
fn same_stage_jobs_all_run_when_one_fails() {
    let config = "stages:\n  - build\n  - bench\nb1:\n  stage: build\n  script:\n    - frobnicate\nb2:\n  stage: build\n  script:\n    - echo still runs\nr:\n  stage: bench\n  script:\n    - echo never\n";
    let mut repo = Repository::init("r");
    repo.commit("main", "u", "c", &[(".gitlab-ci.yml", config)])
        .unwrap();
    let mut lab = Lab::new();
    let id = lab.receive_mirror(&repo.clone(), "main", "pr-1").unwrap();

    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts());
    run_pipeline(&mut lab, id, "olga", &mut executor).unwrap();

    let p = lab.pipeline(id).unwrap();
    let by_name = |n: &str| p.jobs.iter().find(|j| j.name == n).unwrap();
    assert_eq!(by_name("b1").state, JobState::Failed);
    assert_eq!(
        by_name("b2").state,
        JobState::Success,
        "a stage sibling of a failed job must still run"
    );
    assert!(by_name("b2").log.contains("still runs"));
    assert_eq!(
        by_name("r").state,
        JobState::Skipped,
        "later stages still gate on the failure"
    );
    assert_eq!(p.state(), PipelineState::Failed);
}

/// The point of `needs:`: a job detaches from stage ordering and starts as
/// soon as the jobs it names finish — here the bench job starts (in virtual
/// time) long before the slow build-stage straggler has finished.
#[test]
fn needs_job_starts_before_earlier_stage_finishes() {
    let config = "stages:\n  - build\n  - bench\nb-fast:\n  stage: build\n  script:\n    - echo one\nb-slow:\n  stage: build\n  script:\n    - echo one\n    - echo two\n    - echo three\n    - echo four\n    - echo five\nr:\n  stage: bench\n  needs: [b-fast]\n  script:\n    - echo early\n";
    let mut repo = Repository::init("r");
    repo.commit("main", "u", "c", &[(".gitlab-ci.yml", config)])
        .unwrap();
    let mut lab = Lab::new();
    let id = lab.receive_mirror(&repo.clone(), "main", "pr-1").unwrap();

    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts());
    run_pipeline(&mut lab, id, "olga", &mut executor).unwrap();

    let p = lab.pipeline(id).unwrap();
    assert_eq!(p.state(), PipelineState::Success, "{:#?}", p.jobs);
    let by_name = |n: &str| p.jobs.iter().find(|j| j.name == n).unwrap();
    let needs_start = by_name("r").started_at.unwrap();
    let fast_finish = by_name("b-fast").finished_at.unwrap();
    let slow_finish = by_name("b-slow").finished_at.unwrap();
    assert!(
        needs_start >= fast_finish,
        "needs edge still gates: {needs_start} < {fast_finish}"
    );
    assert!(
        needs_start < slow_finish,
        "needs job must start before the earlier stage finishes \
         ({needs_start} vs {slow_finish})"
    );
}

/// A `needs:` failure skips exactly the dependent chain, not unrelated jobs.
#[test]
fn needs_failure_skips_only_dependents() {
    let config = "stages:\n  - build\n  - bench\nb-ok:\n  stage: build\n  script:\n    - echo fine\nb-bad:\n  stage: build\n  script:\n    - frobnicate\nr-ok:\n  stage: bench\n  needs: [b-ok]\n  script:\n    - echo runs\nr-bad:\n  stage: bench\n  needs: [b-bad]\n  script:\n    - echo never\n";
    let mut repo = Repository::init("r");
    repo.commit("main", "u", "c", &[(".gitlab-ci.yml", config)])
        .unwrap();
    let mut lab = Lab::new();
    let id = lab.receive_mirror(&repo.clone(), "main", "pr-1").unwrap();

    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SiteConfig::example_cts());
    run_pipeline(&mut lab, id, "olga", &mut executor).unwrap();

    let p = lab.pipeline(id).unwrap();
    let by_name = |n: &str| p.jobs.iter().find(|j| j.name == n).unwrap();
    assert_eq!(by_name("b-bad").state, JobState::Failed);
    assert_eq!(
        by_name("r-ok").state,
        JobState::Success,
        "a needs job with healthy dependencies is detached from the failure"
    );
    assert_eq!(by_name("r-bad").state, JobState::Skipped);
    assert_eq!(p.state(), PipelineState::Failed);
}

#[test]
fn ci_config_validates_needs_references() {
    let unknown = "stages: [a]\nj:\n  stage: a\n  script: [x]\n  needs: [ghost]\n";
    assert!(crate::lab::parse_ci_config(unknown)
        .unwrap_err()
        .contains("unknown job `ghost`"));

    let forward = "stages: [a, b]\nearly:\n  stage: a\n  script: [x]\n  needs: [late]\nlate:\n  stage: b\n  script: [x]\n";
    assert!(crate::lab::parse_ci_config(forward)
        .unwrap_err()
        .contains("later stage"));

    let selfish = "stages: [a]\nj:\n  stage: a\n  script: [x]\n  needs: [j]\n";
    assert!(crate::lab::parse_ci_config(selfish)
        .unwrap_err()
        .contains("cannot need itself"));

    let ok = "stages: [a, b]\nbase:\n  stage: a\n  script: [x]\nnext:\n  stage: b\n  script: [x]\n  needs: [base]\n";
    let (_, jobs) = crate::lab::parse_ci_config(ok).unwrap();
    assert_eq!(
        jobs.iter().find(|j| j.name == "next").unwrap().needs,
        vec!["base".to_string()]
    );
}
