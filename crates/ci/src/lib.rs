//! `benchpark-ci` — the continuous-integration substrate (paper §3.3,
//! Figure 6).
//!
//! Benchpark *"relies on GitLab CI through Hubcast and Jacamar to manage the
//! continuous integration task of continuous benchmarking"*. This crate
//! implements that entire automation loop as an in-process simulation with
//! real policy checks:
//!
//! * [`Repository`] — a content-hashed git-like repository model (commits,
//!   branches, forks, diffs) standing in for real git.
//! * [`Hub`] — the GitHub side: the canonical repository, fork-based pull
//!   requests, reviews/approvals, and native status checks.
//! * [`Lab`] — the GitLab side: mirrored repositories, `.gitlab-ci.yml`
//!   parsing (stages + jobs), pipelines, and runners.
//! * [`Hubcast`] — the secure mirroring bot (§3.3.1): *"untrusted pull
//!   requests from forks … mirrored to a GitLab once they pass a configured
//!   set of security criteria"*; a PR from outside the trusted org must be
//!   *"reviewed and approved by a site and system administrator"* before the
//!   commit is mirrored, CI runs, and statuses stream back to GitHub.
//! * [`Jacamar`] (§3.3.2) — the setuid executor: jobs run as the triggering
//!   user when they have a site account, otherwise *"as the user who
//!   approved the pull request"*.
//! * [`BenchparkExecutor`] — executes pipeline jobs against the other
//!   substrates: `spack install …` jobs drive the install engine (with the
//!   shared S3-style [`benchpark_spack::BinaryCache`] from Figure 6), and
//!   benchmark jobs submit batch scripts to a simulated cluster.

mod exec;
mod federation;
mod git;
mod hub;
mod hubcast;
mod jacamar;
mod lab;

pub use exec::{run_pipeline, BenchparkExecutor, JobExecutor, JobResult};
pub use federation::{Federation, Site, SiteOutcome};
pub use git::{Commit, Repository};
pub use hub::{Hub, PrState, PullRequest, StatusCheck, StatusState};
pub use hubcast::{Hubcast, MirrorDecision};
pub use jacamar::{Jacamar, SiteAccounts};
pub use lab::{CiJob, JobState, Lab, Pipeline, PipelineState};

#[cfg(test)]
mod tests;
