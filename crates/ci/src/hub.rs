//! The GitHub side: canonical repository, fork PRs, approvals, status checks.

use crate::git::Repository;
use std::collections::{BTreeMap, BTreeSet};

/// Pull request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrState {
    Open,
    Merged,
    Closed,
}

/// Status-check state (GitHub's commit statuses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusState {
    Pending,
    Running,
    Success,
    Failure,
}

/// One status check on a PR head (streamed back through Hubcast).
#[derive(Debug, Clone)]
pub struct StatusCheck {
    /// Context string, e.g. `gitlab-ci/build-cts1`.
    pub context: String,
    pub state: StatusState,
    pub description: String,
}

/// A pull request from a fork branch into the canonical repository.
#[derive(Debug, Clone)]
pub struct PullRequest {
    pub number: u64,
    pub author: String,
    /// Fork repository name holding the source branch.
    pub source_repo: String,
    pub source_branch: String,
    pub target_branch: String,
    pub state: PrState,
    /// Users who approved the PR.
    pub approvals: BTreeSet<String>,
    pub checks: Vec<StatusCheck>,
    /// Head commit hash of the source branch at PR creation/update.
    pub head: String,
}

impl PullRequest {
    /// All checks concluded successfully (and at least one ran).
    pub fn checks_green(&self) -> bool {
        !self.checks.is_empty() && self.checks.iter().all(|c| c.state == StatusState::Success)
    }

    /// Sets or updates a status check by context.
    pub fn set_check(&mut self, context: &str, state: StatusState, description: &str) {
        if let Some(check) = self.checks.iter_mut().find(|c| c.context == context) {
            check.state = state;
            check.description = description.to_string();
        } else {
            self.checks.push(StatusCheck {
                context: context.to_string(),
                state,
                description: description.to_string(),
            });
        }
    }
}

/// The GitHub-like service.
#[derive(Debug, Default)]
pub struct Hub {
    /// Repositories by name (`llnl/benchpark`, `alice/benchpark`).
    pub repos: BTreeMap<String, Repository>,
    prs: Vec<PullRequest>,
    /// Members of the trusted organization (maintainers).
    pub org_members: BTreeSet<String>,
    /// Users allowed to approve PRs for CI purposes (site/system admins).
    pub admins: BTreeSet<String>,
    next_pr: u64,
}

impl Hub {
    /// A hub hosting the canonical repository.
    pub fn new(canonical: Repository) -> Hub {
        let mut repos = BTreeMap::new();
        repos.insert(canonical.name.clone(), canonical);
        Hub {
            repos,
            next_pr: 1,
            ..Hub::default()
        }
    }

    /// Adds a trusted-org member.
    pub fn add_org_member(&mut self, user: &str) {
        self.org_members.insert(user.to_string());
    }

    /// Adds a site/system administrator (may approve untrusted PRs).
    pub fn add_admin(&mut self, user: &str) {
        self.admins.insert(user.to_string());
        self.org_members.insert(user.to_string());
    }

    /// Forks `repo` for `user`, returning the fork's repo name.
    pub fn fork(&mut self, repo: &str, user: &str) -> Result<String, String> {
        let source = self
            .repos
            .get(repo)
            .ok_or_else(|| format!("no repository `{repo}`"))?;
        let base = repo.rsplit('/').next().unwrap_or(repo);
        let fork_name = format!("{user}/{base}");
        let fork = source.fork(&fork_name);
        self.repos.insert(fork_name.clone(), fork);
        Ok(fork_name)
    }

    /// Opens a PR from `source_repo:source_branch` into the canonical
    /// repository's `target_branch`.
    pub fn open_pr(
        &mut self,
        canonical: &str,
        source_repo: &str,
        source_branch: &str,
        target_branch: &str,
        author: &str,
    ) -> Result<u64, String> {
        let head = self
            .repos
            .get(source_repo)
            .ok_or_else(|| format!("no repository `{source_repo}`"))?
            .head(source_branch)
            .ok_or_else(|| format!("no branch `{source_branch}` in `{source_repo}`"))?
            .hash
            .clone();
        if !self.repos.contains_key(canonical) {
            return Err(format!("no repository `{canonical}`"));
        }
        let number = self.next_pr;
        self.next_pr += 1;
        self.prs.push(PullRequest {
            number,
            author: author.to_string(),
            source_repo: source_repo.to_string(),
            source_branch: source_branch.to_string(),
            target_branch: target_branch.to_string(),
            state: PrState::Open,
            approvals: BTreeSet::new(),
            checks: Vec::new(),
            head,
        });
        Ok(number)
    }

    /// Re-reads the source branch head into the PR (what GitHub does when
    /// the contributor pushes). Returns true if the head moved; stale status
    /// checks and approvals are cleared when it does, as GitHub's
    /// dismiss-stale-reviews policy would.
    pub fn refresh_pr_head(&mut self, number: u64) -> Result<bool, String> {
        let (source_repo, source_branch) = {
            let pr = self.pr(number).ok_or_else(|| format!("no PR #{number}"))?;
            (pr.source_repo.clone(), pr.source_branch.clone())
        };
        let head = self
            .repos
            .get(&source_repo)
            .ok_or_else(|| format!("no repository `{source_repo}`"))?
            .head(&source_branch)
            .ok_or_else(|| format!("no branch `{source_branch}`"))?
            .hash
            .clone();
        let pr = self.pr_mut(number)?;
        if pr.head == head {
            return Ok(false);
        }
        pr.head = head;
        pr.checks.clear();
        pr.approvals.clear();
        Ok(true)
    }

    /// Records a review approval. Only org members may approve.
    pub fn approve(&mut self, number: u64, reviewer: &str) -> Result<(), String> {
        if !self.org_members.contains(reviewer) {
            return Err(format!("`{reviewer}` is not authorized to review"));
        }
        let pr = self.pr_mut(number)?;
        if pr.author == reviewer {
            return Err("authors cannot approve their own pull requests".to_string());
        }
        pr.approvals.insert(reviewer.to_string());
        Ok(())
    }

    /// The PR, immutable.
    pub fn pr(&self, number: u64) -> Option<&PullRequest> {
        self.prs.iter().find(|p| p.number == number)
    }

    /// The PR, mutable.
    pub fn pr_mut(&mut self, number: u64) -> Result<&mut PullRequest, String> {
        self.prs
            .iter_mut()
            .find(|p| p.number == number)
            .ok_or_else(|| format!("no PR #{number}"))
    }

    /// Open PRs.
    pub fn open_prs(&self) -> impl Iterator<Item = &PullRequest> {
        self.prs.iter().filter(|p| p.state == PrState::Open)
    }

    /// Merges an approved, green PR into the canonical repository.
    pub fn merge(&mut self, canonical: &str, number: u64) -> Result<(), String> {
        let (head, source_repo, target, approved, green) = {
            let pr = self.pr(number).ok_or_else(|| format!("no PR #{number}"))?;
            (
                pr.head.clone(),
                pr.source_repo.clone(),
                pr.target_branch.clone(),
                !pr.approvals.is_empty(),
                pr.checks_green(),
            )
        };
        if !approved {
            return Err(format!("PR #{number} is not approved"));
        }
        if !green {
            return Err(format!("PR #{number} has failing or missing status checks"));
        }
        let source = self
            .repos
            .get(&source_repo)
            .ok_or_else(|| format!("no repository `{source_repo}`"))?
            .clone();
        let canonical_repo = self
            .repos
            .get_mut(canonical)
            .ok_or_else(|| format!("no repository `{canonical}`"))?;
        let tmp = format!("pr-{number}");
        canonical_repo.import_branch(&source, &find_branch_for(&source, &head)?, &tmp)?;
        canonical_repo.fast_forward(&target, &head)?;
        self.pr_mut(number)?.state = PrState::Merged;
        Ok(())
    }
}

fn find_branch_for(repo: &Repository, head: &str) -> Result<String, String> {
    repo.branches()
        .find(|b| repo.head(b).is_some_and(|c| c.hash == head))
        .map(String::from)
        .ok_or_else(|| "PR head no longer on any branch".to_string())
}
