//! Hubcast: secure GitHub→GitLab mirroring with approval gating (§3.3.1).

use crate::hub::{Hub, StatusState};
use crate::jacamar::Jacamar;
use crate::lab::Lab;

/// Why a PR was (not) mirrored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MirrorDecision {
    /// Mirrored; pipeline created with this id, jobs will run as this user.
    Mirrored { pipeline: u64, run_as: String },
    /// Untrusted author and no admin approval yet.
    AwaitingApproval,
    /// Already mirrored at this head.
    AlreadyMirrored,
    /// Mirroring failed (e.g. no `.gitlab-ci.yml`).
    Error(String),
}

/// The mirroring bot.
#[derive(Debug, Default)]
pub struct Hubcast {
    /// `(pr number, head hash)` pairs already mirrored.
    mirrored: Vec<(u64, String)>,
}

impl Hubcast {
    /// A fresh bot.
    pub fn new() -> Hubcast {
        Hubcast::default()
    }

    /// Security criteria (§3.3.1): a PR may be mirrored when its author is a
    /// trusted-org member, or when a site/system administrator (other than
    /// the author) has approved it.
    pub fn eligible(hub: &Hub, pr_number: u64) -> bool {
        let Some(pr) = hub.pr(pr_number) else {
            return false;
        };
        if hub.org_members.contains(&pr.author) {
            return true;
        }
        pr.approvals.iter().any(|a| hub.admins.contains(a))
    }

    /// Processes one PR: if eligible and not yet mirrored at its current
    /// head, mirrors the branch to GitLab, creates the pipeline, and sets
    /// the pending status check on GitHub.
    pub fn process_pr(
        &mut self,
        hub: &mut Hub,
        lab: &mut Lab,
        jacamar: &Jacamar,
        pr_number: u64,
    ) -> MirrorDecision {
        let Some(pr) = hub.pr(pr_number) else {
            return MirrorDecision::Error(format!("no PR #{pr_number}"));
        };
        let head = pr.head.clone();
        let author = pr.author.clone();
        let approver = pr
            .approvals
            .iter()
            .find(|a| hub.admins.contains(*a))
            .cloned();
        let source_repo = pr.source_repo.clone();
        let source_branch = pr.source_branch.clone();

        if !Self::eligible(hub, pr_number) {
            if let Ok(pr) = hub.pr_mut(pr_number) {
                pr.set_check(
                    "hubcast/mirror",
                    StatusState::Pending,
                    "awaiting review by a site and system administrator",
                );
            }
            return MirrorDecision::AwaitingApproval;
        }
        if self.mirrored.contains(&(pr_number, head.clone())) {
            return MirrorDecision::AlreadyMirrored;
        }

        // decide the execution user before running anything (§3.3.2)
        let run_as = match jacamar.resolve_user(&author, approver.as_deref()) {
            Ok(user) => user,
            Err(e) => {
                if let Ok(pr) = hub.pr_mut(pr_number) {
                    pr.set_check("hubcast/mirror", StatusState::Failure, &e);
                }
                return MirrorDecision::Error(e);
            }
        };

        let Some(source) = hub.repos.get(&source_repo) else {
            return MirrorDecision::Error(format!("missing repo `{source_repo}`"));
        };
        let mirror_branch = format!("pr-{pr_number}");
        match lab.receive_mirror(source, &source_branch, &mirror_branch) {
            Ok(pipeline) => {
                self.mirrored.push((pr_number, head));
                if let Ok(pr) = hub.pr_mut(pr_number) {
                    pr.set_check(
                        "hubcast/mirror",
                        StatusState::Success,
                        &format!("mirrored to gitlab as {mirror_branch}"),
                    );
                    pr.set_check(
                        "gitlab-ci/pipeline",
                        StatusState::Running,
                        &format!("pipeline #{pipeline} created"),
                    );
                }
                MirrorDecision::Mirrored { pipeline, run_as }
            }
            Err(e) => {
                if let Ok(pr) = hub.pr_mut(pr_number) {
                    pr.set_check("hubcast/mirror", StatusState::Failure, &e);
                }
                MirrorDecision::Error(e)
            }
        }
    }

    /// Streams a finished pipeline's state back to the PR as a status check.
    pub fn report_pipeline(&self, hub: &mut Hub, lab: &Lab, pr_number: u64, pipeline: u64) {
        let Some(p) = lab.pipeline(pipeline) else {
            return;
        };
        let (state, description) = match p.state() {
            crate::lab::PipelineState::Success => {
                (StatusState::Success, "all jobs passed".to_string())
            }
            crate::lab::PipelineState::Failed => {
                let failed: Vec<&str> = p
                    .jobs
                    .iter()
                    .filter(|j| j.state == crate::lab::JobState::Failed)
                    .map(|j| j.name.as_str())
                    .collect();
                (
                    StatusState::Failure,
                    format!("failed jobs: {}", failed.join(", ")),
                )
            }
            _ => (StatusState::Running, "in progress".to_string()),
        };
        if let Ok(pr) = hub.pr_mut(pr_number) {
            pr.set_check("gitlab-ci/pipeline", state, &description);
        }
    }
}
