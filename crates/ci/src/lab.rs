//! The GitLab side: mirrored repositories, `.gitlab-ci.yml` parsing,
//! pipelines, and job state.

use crate::git::Repository;
use benchpark_yamlite::{parse, Value};
use std::collections::BTreeMap;

/// CI job lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Created,
    Running,
    Success,
    Failed,
    /// Never ran because an earlier stage failed (GitLab semantics). Marked
    /// explicitly so an inspector can tell "skipped" from "not yet run".
    Skipped,
}

/// Pipeline lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineState {
    Pending,
    Running,
    Success,
    Failed,
}

/// One CI job parsed from `.gitlab-ci.yml`.
#[derive(Debug, Clone)]
pub struct CiJob {
    pub name: String,
    pub stage: String,
    /// Script lines, interpreted by the executor.
    pub script: Vec<String>,
    /// Runner tags (which machine the job targets, e.g. `cts1`).
    pub tags: Vec<String>,
    /// Times a failed attempt is re-run before the job counts as failed
    /// (GitLab's `retry: max`). 0 means a single attempt.
    pub retry: u32,
    /// A failure of this job does not fail the pipeline or skip later
    /// stages (GitLab's `allow_failure: true`).
    pub allow_failure: bool,
    /// Jobs this job waits for (GitLab's `needs:`). When non-empty the job
    /// detaches from stage ordering and starts as soon as the named jobs
    /// finish; when empty it waits for every job of every earlier stage.
    pub needs: Vec<String>,
    pub state: JobState,
    /// The OS user the job ran as (decided by Jacamar).
    pub ran_as: Option<String>,
    pub log: String,
    /// Virtual start time under the pipeline's deterministic schedule
    /// (set once the job has executed).
    pub started_at: Option<f64>,
    /// Virtual finish time under the pipeline's deterministic schedule.
    pub finished_at: Option<f64>,
}

/// A pipeline for one mirrored commit.
#[derive(Debug, Clone)]
pub struct Pipeline {
    pub id: u64,
    /// Commit hash the pipeline tests.
    pub commit: String,
    /// Mirror branch it came from (e.g. `pr-3`).
    pub branch: String,
    /// Stage names in execution order.
    pub stages: Vec<String>,
    pub jobs: Vec<CiJob>,
}

impl Pipeline {
    /// Overall state: failed if any job failed (unless it carries
    /// `allow_failure`), success only if there is at least one job and all
    /// finished as Success or as a tolerated failure. A pipeline with no
    /// jobs is Pending (never vacuously Success), and one with some — but
    /// not all — jobs finished is still Running.
    pub fn state(&self) -> PipelineState {
        let fatal = |j: &CiJob| j.state == JobState::Failed && !j.allow_failure;
        let finished_ok = |j: &CiJob| {
            j.state == JobState::Success || (j.state == JobState::Failed && j.allow_failure)
        };
        if self.jobs.iter().any(fatal) {
            PipelineState::Failed
        } else if !self.jobs.is_empty() && self.jobs.iter().all(finished_ok) {
            PipelineState::Success
        } else if self
            .jobs
            .iter()
            .any(|j| !matches!(j.state, JobState::Created))
        {
            PipelineState::Running
        } else {
            PipelineState::Pending
        }
    }

    /// Jobs of one stage, in declaration order.
    pub fn stage_jobs(&mut self, stage: &str) -> Vec<usize> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.stage == stage)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The GitLab-like service.
#[derive(Debug, Default)]
pub struct Lab {
    /// The mirrored repository (one per Benchpark deployment).
    pub repo: Option<Repository>,
    pipelines: Vec<Pipeline>,
    next_pipeline: u64,
}

impl Lab {
    /// An empty GitLab instance.
    pub fn new() -> Lab {
        Lab {
            next_pipeline: 1,
            ..Lab::default()
        }
    }

    /// Receives a mirrored branch (called by Hubcast) and creates a pipeline
    /// from the branch's `.gitlab-ci.yml`. Returns the pipeline id.
    pub fn receive_mirror(
        &mut self,
        source: &Repository,
        source_branch: &str,
        as_branch: &str,
    ) -> Result<u64, String> {
        let repo = self.repo.get_or_insert_with(|| Repository::init("mirror"));
        let head = repo.import_branch(source, source_branch, as_branch)?;
        let ci_text = repo
            .read(as_branch, ".gitlab-ci.yml")
            .ok_or_else(|| "branch has no .gitlab-ci.yml".to_string())?
            .to_string();
        let (stages, jobs) = parse_ci_config(&ci_text)?;
        let id = self.next_pipeline;
        self.next_pipeline += 1;
        self.pipelines.push(Pipeline {
            id,
            commit: head,
            branch: as_branch.to_string(),
            stages,
            jobs,
        });
        Ok(id)
    }

    /// A pipeline by id.
    pub fn pipeline(&self, id: u64) -> Option<&Pipeline> {
        self.pipelines.iter().find(|p| p.id == id)
    }

    /// A pipeline by id, mutable.
    pub fn pipeline_mut(&mut self, id: u64) -> Option<&mut Pipeline> {
        self.pipelines.iter_mut().find(|p| p.id == id)
    }

    /// All pipelines.
    pub fn pipelines(&self) -> &[Pipeline] {
        &self.pipelines
    }
}

/// Parses `.gitlab-ci.yml`: a `stages:` list plus one mapping per job with
/// `stage:`, `script:`, and optional `tags:`.
pub fn parse_ci_config(text: &str) -> Result<(Vec<String>, Vec<CiJob>), String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let map = doc.as_map().ok_or("ci config must be a mapping")?;
    let stages = map
        .get("stages")
        .and_then(Value::string_list)
        .unwrap_or_else(|| vec!["test".to_string()]);
    let mut jobs = Vec::new();
    for (name, body) in map.iter() {
        if name == "stages" || name.starts_with('.') {
            continue;
        }
        let Some(body_map) = body.as_map() else {
            continue;
        };
        let Some(script) = body_map.get("script").and_then(Value::string_list) else {
            continue; // not a job
        };
        let stage = body_map
            .get("stage")
            .and_then(Value::as_str)
            .unwrap_or("test")
            .to_string();
        if !stages.contains(&stage) {
            return Err(format!("job `{name}` references unknown stage `{stage}`"));
        }
        // GitLab accepts `retry: 2` and `retry: { max: 2 }`
        let retry = body_map
            .get("retry")
            .and_then(|v| {
                v.as_int().or_else(|| {
                    v.as_map()
                        .and_then(|m| m.get("max"))
                        .and_then(Value::as_int)
                })
            })
            .unwrap_or(0)
            .clamp(0, 10) as u32;
        let allow_failure = body_map
            .get("allow_failure")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let needs = body_map
            .get("needs")
            .and_then(Value::string_list)
            .unwrap_or_default();
        if needs.iter().any(|n| n == name) {
            return Err(format!("job `{name}` cannot need itself"));
        }
        jobs.push(CiJob {
            name: name.clone(),
            stage,
            script,
            tags: body_map
                .get("tags")
                .and_then(Value::string_list)
                .unwrap_or_default(),
            retry,
            allow_failure,
            needs,
            state: JobState::Created,
            ran_as: None,
            log: String::new(),
            started_at: None,
            finished_at: None,
        });
    }
    if jobs.is_empty() {
        return Err("ci config defines no jobs".to_string());
    }
    // `needs:` must reference declared jobs in the same or an earlier stage
    // (GitLab forbids forward references; they would also create dependency
    // cycles against the default stage edges)
    let job_stage: BTreeMap<&str, &str> = jobs
        .iter()
        .map(|j| (j.name.as_str(), j.stage.as_str()))
        .collect();
    let stage_rank = |stage: &str| stages.iter().position(|s| s == stage).unwrap_or(usize::MAX);
    for job in &jobs {
        for need in &job.needs {
            let Some(need_stage) = job_stage.get(need.as_str()) else {
                return Err(format!("job `{}` needs unknown job `{need}`", job.name));
            };
            if stage_rank(need_stage) > stage_rank(&job.stage) {
                return Err(format!(
                    "job `{}` needs `{need}`, which is in a later stage",
                    job.name
                ));
            }
        }
    }
    // order jobs by stage order for readability
    let stage_index: BTreeMap<&str, usize> = stages
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_str(), i))
        .collect();
    jobs.sort_by_key(|j| {
        stage_index
            .get(j.stage.as_str())
            .copied()
            .unwrap_or(usize::MAX)
    });
    Ok((stages, jobs))
}
