//! Pipeline execution: CI builders and benchmark runners (Figure 6's right
//! half).

use crate::git::Repository;
use crate::lab::{CiJob, JobState, Lab};
use benchpark_cluster::Cluster;
use benchpark_concretizer::SiteConfig;
use benchpark_pkg::Repo;
use benchpark_resilience::{FaultInjector, RetryPolicy};
use benchpark_spack::{BinaryCache, InstallDatabase, InstallOptions, Installer};
use benchpark_telemetry::TelemetrySink;
use std::collections::BTreeMap;

/// Outcome of one job execution.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub success: bool,
    pub log: String,
}

/// Executes one CI job's script.
pub trait JobExecutor {
    /// Runs `job` as OS user `run_as` with the mirrored repository contents
    /// available at `branch`.
    fn execute(&mut self, job: &CiJob, repo: &Repository, branch: &str, run_as: &str) -> JobResult;

    /// The sink [`run_pipeline`] uses for pipeline/stage spans and job
    /// counters. No-op unless the executor overrides it.
    fn telemetry(&self) -> TelemetrySink {
        TelemetrySink::noop()
    }
}

/// The Benchpark executor: interprets job scripts against the package
/// manager and cluster substrates.
///
/// Supported script commands:
///
/// * `spack install <spec…>` — concretize + install through the shared
///   install database and binary cache (Figure 6's S3 cache).
/// * `submit <machine> <path>` — submit the batch script at `path` (from the
///   mirrored repository) to the cluster tagged `<machine>` and wait.
/// * `echo <text>` — log text.
pub struct BenchparkExecutor<'a> {
    pkg_repo: &'a Repo,
    site: SiteConfig,
    /// Shared across all builder jobs (the rolling cache).
    pub cache: BinaryCache,
    /// Shared install database (the CI builders' install tree).
    pub db: InstallDatabase,
    /// Benchmark runners, keyed by machine name / job tag.
    pub clusters: BTreeMap<String, Cluster>,
    pub install_opts: InstallOptions,
    telemetry: TelemetrySink,
    /// When set, job attempts fail at the runner level (before any script
    /// line executes) with the injector's probability.
    runner_faults: Option<FaultInjector>,
    /// Retry policy applied to binary-cache fetches inside `spack install`.
    cache_retry: Option<RetryPolicy>,
}

impl<'a> BenchparkExecutor<'a> {
    /// Builds an executor over the given package repository and site.
    pub fn new(pkg_repo: &'a Repo, site: SiteConfig) -> BenchparkExecutor<'a> {
        BenchparkExecutor {
            pkg_repo,
            site,
            cache: BinaryCache::new(),
            db: InstallDatabase::new(),
            clusters: BTreeMap::new(),
            install_opts: InstallOptions::default(),
            telemetry: TelemetrySink::noop(),
            runner_faults: None,
            cache_retry: None,
        }
    }

    /// Makes the runner flaky: each job *attempt* fails with the injector's
    /// probability before reaching the cluster — the stale-NFS-mount / dead
    /// agent class of CI failure that GitLab `retry:` exists for. Because
    /// the flake strikes before submission, a retried job replays the exact
    /// same cluster work and converges to the fault-free result.
    pub fn inject_runner_faults(&mut self, injector: FaultInjector) {
        self.runner_faults = Some(injector);
    }

    /// Retries flaky binary-cache fetches during `spack install` script
    /// lines under `policy` (see [`Installer::with_retry_policy`]).
    pub fn with_cache_retry(mut self, policy: RetryPolicy) -> BenchparkExecutor<'a> {
        self.cache_retry = Some(policy);
        self
    }

    /// Routes executor telemetry (concretize/install instrumentation, cluster
    /// scheduler metrics, pipeline spans) to `sink`. Clusters registered
    /// before or after this call all share the sink.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> BenchparkExecutor<'a> {
        for cluster in self.clusters.values_mut() {
            cluster.set_telemetry(sink.clone());
        }
        self.telemetry = sink;
        self
    }

    /// Registers a benchmark-runner cluster under a tag.
    pub fn add_cluster(&mut self, tag: &str, mut cluster: Cluster) {
        cluster.set_telemetry(self.telemetry.clone());
        self.clusters.insert(tag.to_string(), cluster);
    }

    fn run_spack_install(&mut self, spec_text: &str, log: &mut String) -> bool {
        let spec: benchpark_spec::Spec = match spec_text.parse() {
            Ok(s) => s,
            Err(e) => {
                log.push_str(&format!("error: bad spec `{spec_text}`: {e}\n"));
                return false;
            }
        };
        let solver = benchpark_concretizer::Concretizer::new(self.pkg_repo, &self.site)
            .with_telemetry(self.telemetry.clone());
        let dag = match solver.concretize(&spec) {
            Ok(d) => d,
            Err(e) => {
                log.push_str(&format!("error: concretization failed: {e}\n"));
                return false;
            }
        };
        let mut installer = Installer::new(self.pkg_repo)
            .with_database(self.db.clone())
            .with_cache(self.cache.clone())
            .with_telemetry(self.telemetry.clone());
        if let Some(policy) = &self.cache_retry {
            installer = installer.with_retry_policy(policy.clone());
        }
        let report = installer.install(&dag, &self.install_opts);
        for result in &report.results {
            log.push_str(&format!(
                "  [{:>7.1}s] {:?} {}\n",
                result.finish, result.action, result.name
            ));
        }
        log.push_str(&format!(
            "installed {} packages in {:.1} virtual seconds\n",
            report.newly_installed, report.makespan_seconds
        ));
        true
    }

    fn run_submit(
        &mut self,
        machine: &str,
        path: &str,
        repo: &Repository,
        branch: &str,
        run_as: &str,
        log: &mut String,
    ) -> bool {
        let Some(script) = repo.read(branch, path) else {
            log.push_str(&format!("error: no file `{path}` in mirrored branch\n"));
            return false;
        };
        let script = script.to_string();
        let Some(cluster) = self.clusters.get_mut(machine) else {
            log.push_str(&format!("error: no runner for machine `{machine}`\n"));
            return false;
        };
        match cluster.submit_script(&script, run_as) {
            Ok(id) => {
                cluster.run_until_idle();
                let job = cluster.job(id).expect("submitted job exists");
                log.push_str(&job.stdout);
                log.push_str(&format!(
                    "job {} on {}: {:?} (exit {})\n",
                    id.0, machine, job.state, job.exit_code
                ));
                job.success()
            }
            Err(e) => {
                log.push_str(&format!("error: submission rejected: {e}\n"));
                false
            }
        }
    }
}

impl JobExecutor for BenchparkExecutor<'_> {
    fn telemetry(&self) -> TelemetrySink {
        self.telemetry.clone()
    }

    fn execute(&mut self, job: &CiJob, repo: &Repository, branch: &str, run_as: &str) -> JobResult {
        // a runner flake kills the attempt before the script starts
        if self
            .runner_faults
            .as_ref()
            .is_some_and(|injector| injector.should_fail())
        {
            self.telemetry.incr("ci.runner.flakes", 1);
            return JobResult {
                success: false,
                log: format!(
                    "ERROR: runner system failure on job `{}` (lost contact with agent)\n",
                    job.name
                ),
            };
        }
        let mut log = format!("$ whoami\n{run_as}\n");
        let mut success = true;
        for line in &job.script {
            log.push_str(&format!("$ {line}\n"));
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let ok = match tokens.as_slice() {
                ["spack", "install", rest @ ..] => {
                    let spec = rest.join(" ");
                    self.run_spack_install(&spec, &mut log)
                }
                ["submit", machine, path] => {
                    self.run_submit(machine, path, repo, branch, run_as, &mut log)
                }
                ["echo", rest @ ..] => {
                    log.push_str(&rest.join(" "));
                    log.push('\n');
                    true
                }
                [] => true,
                other => {
                    log.push_str(&format!("error: unknown command `{}`\n", other.join(" ")));
                    false
                }
            };
            if !ok {
                success = false;
                break;
            }
        }
        JobResult { success, log }
    }
}

/// Runs a pipeline to completion as a job DAG on the shared execution
/// engine.
///
/// Dependency edges follow GitLab semantics: a job with `needs:` waits only
/// for the jobs it names (detaching from stage ordering — it can start
/// before nominally earlier stages have finished); a job without `needs:`
/// waits for every job of every earlier stage. Jobs within one stage carry
/// no mutual edges, so a failure never skips its stage siblings — only
/// dependent (later-stage or `needs:`-downstream) jobs are marked
/// [`JobState::Skipped`], unless the failed job carries `allow_failure`.
///
/// Failed attempts of a job with `retry: N` are re-run up to N times by the
/// engine's per-task retry policy, each retry counted on the executor's
/// telemetry sink under `retry.attempts`. Each job's virtual
/// `started_at`/`finished_at` come from the engine's deterministic LPT
/// schedule.
pub fn run_pipeline(
    lab: &mut Lab,
    pipeline_id: u64,
    run_as: &str,
    executor: &mut dyn JobExecutor,
) -> Result<(), String> {
    use benchpark_engine::{Engine, FailurePolicy, TaskGraph, TaskStatus};

    let repo = lab
        .repo
        .as_ref()
        .ok_or("lab has no mirrored repository")?
        .clone();
    let pipeline = lab
        .pipeline_mut(pipeline_id)
        .ok_or_else(|| format!("no pipeline #{pipeline_id}"))?;
    let branch = pipeline.branch.clone();
    let stages = pipeline.stages.clone();
    let jobs = pipeline.jobs.clone();
    let sink = executor.telemetry();
    let _pipeline_span = sink.span("ci.pipeline");

    // pre-flight: warn-only static analysis of the pipeline definition; the
    // runtime parser already rejected hard errors, but the linter also sees
    // masked failures, unreachable stages, and same-stage cycles. Findings
    // are counted on the telemetry sink and never fail the run.
    if let Some(config) = repo.read(&branch, ".gitlab-ci.yml") {
        let mut set = benchpark_lint::ArtifactSet::new();
        set.add(".gitlab-ci.yml", config);
        let report = benchpark_lint::Linter::bare().lint(&set);
        if report.errors() > 0 {
            sink.incr("ci.lint.errors", report.errors() as u64);
        }
        if report.warnings() > 0 {
            sink.incr("ci.lint.warnings", report.warnings() as u64);
        }
    }

    // ---- job graph: one task per job, edges from needs/stage order -------
    let mut graph = TaskGraph::new();
    let mut ids = Vec::with_capacity(jobs.len());
    for (idx, job) in jobs.iter().enumerate() {
        // virtual duration: one second per script line, so LPT has a
        // meaningful length signal without simulating the scripts twice
        let id = graph
            .add_task(&job.name, idx, job.script.len().max(1) as f64)
            .map_err(|e| e.to_string())?;
        if job.allow_failure {
            graph.set_policy(id, FailurePolicy::AllowFailure);
        }
        if job.retry > 0 {
            graph.set_retry(id, RetryPolicy::new(job.retry.saturating_add(1)));
        }
        ids.push(id);
    }
    let stage_rank = |stage: &str| stages.iter().position(|s| s == stage).unwrap_or(usize::MAX);
    for (idx, job) in jobs.iter().enumerate() {
        if job.needs.is_empty() {
            // default GitLab gating: wait for every job of every earlier
            // stage
            for (dep_idx, dep) in jobs.iter().enumerate() {
                if stage_rank(&dep.stage) < stage_rank(&job.stage) {
                    graph
                        .depends_on(ids[idx], ids[dep_idx])
                        .map_err(|e| e.to_string())?;
                }
            }
        } else {
            for need in &job.needs {
                let dep = graph
                    .id(need)
                    .ok_or_else(|| format!("job `{}` needs unknown job `{need}`", job.name))?;
                graph.depends_on(ids[idx], dep).map_err(|e| e.to_string())?;
            }
        }
    }

    // ---- execute on the engine's deterministic serial drive --------------
    // one virtual slot per job is a fixed property of the pipeline (not a
    // user tunable), so the schedule-derived telemetry is stable: per-job
    // `ci.job.<name>` spans carry their planned started_at/finished_at slot
    // attributes into canonical exports
    let mut logs: Vec<String> = vec![String::new(); jobs.len()];
    let report = Engine::new(jobs.len().max(1))
        .with_telemetry(sink.clone())
        .with_span_prefix("ci.job")
        .with_stable_plan()
        .run(&graph, |task, ctx| {
            let job = &jobs[task.payload];
            let log = &mut logs[task.payload];
            if ctx.attempt > 1 {
                log.push_str(&format!(
                    "\nRetrying job `{}` (attempt {}/{})\n",
                    job.name, ctx.attempt, ctx.max_attempts
                ));
            }
            let result = executor.execute(job, &repo, &branch, run_as);
            log.push_str(&result.log);
            if result.success {
                Ok(())
            } else {
                Err(format!("job `{}` failed", job.name))
            }
        })
        .map_err(|e| e.to_string())?;

    // ---- write outcomes back into the pipeline ---------------------------
    let pipeline = lab
        .pipeline_mut(pipeline_id)
        .expect("pipeline existed above");
    for (idx, outcome) in report.tasks.iter().enumerate() {
        let job = &mut pipeline.jobs[idx];
        match outcome.status {
            TaskStatus::Success => {
                sink.incr("ci.jobs.success", 1);
                job.state = JobState::Success;
            }
            TaskStatus::Failed => {
                sink.incr("ci.jobs.failed", 1);
                job.state = JobState::Failed;
            }
            TaskStatus::Skipped => {
                // explicitly Skipped, not silently left Created: inspectors
                // can tell "never ran because of a failure" from "pending"
                sink.incr("ci.jobs.skipped", 1);
                job.state = JobState::Skipped;
            }
        }
        if outcome.status != TaskStatus::Skipped {
            job.log = std::mem::take(&mut logs[idx]);
            job.ran_as = Some(run_as.to_string());
            job.started_at = Some(outcome.start);
            job.finished_at = Some(outcome.finish);
        }
    }
    Ok(())
}
