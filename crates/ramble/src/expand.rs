//! `{variable}` expansion, Ramble's templating primitive.

use crate::error::RambleError;
use std::collections::BTreeMap;

/// Maximum substitution passes before declaring a cycle.
const MAX_DEPTH: usize = 16;

/// Expands `{var}` references in `template` using `vars`, recursively
/// (values may themselves reference variables, as `mpi_command` does in
/// Figure 12). Unknown variables are an error; `{{` renders a literal `{`.
pub fn expand(template: &str, vars: &BTreeMap<String, String>) -> Result<String, RambleError> {
    let mut current = template.to_string();
    for _ in 0..MAX_DEPTH {
        let (next, changed) = expand_once(&current, vars)?;
        if !changed {
            return Ok(next.replace("\u{1}", "{").replace("\u{2}", "}"));
        }
        current = next;
    }
    Err(RambleError::Expansion(format!(
        "expansion of {template:?} did not terminate (cyclic variable definitions?)"
    )))
}

fn expand_once(
    text: &str,
    vars: &BTreeMap<String, String>,
) -> Result<(String, bool), RambleError> {
    let mut out = String::with_capacity(text.len());
    let mut changed = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                out.push('\u{1}'); // protected literal brace
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                out.push('\u{2}');
            }
            '{' => {
                let mut name = String::new();
                for nc in chars.by_ref() {
                    if nc == '}' {
                        break;
                    }
                    name.push(nc);
                }
                if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    return Err(RambleError::Expansion(format!(
                        "malformed variable reference `{{{name}}}` in {text:?}"
                    )));
                }
                match vars.get(&name) {
                    Some(value) => {
                        out.push_str(value);
                        changed = true;
                    }
                    None => {
                        return Err(RambleError::Expansion(format!(
                            "undefined variable `{name}` in {text:?}"
                        )))
                    }
                }
            }
            other => out.push(other),
        }
    }
    Ok((out, changed))
}

/// Expands every value of a variable map against itself (used to resolve
/// `variables.yaml` entries that reference experiment variables late).
pub fn expand_all(
    vars: &BTreeMap<String, String>,
) -> Result<BTreeMap<String, String>, RambleError> {
    vars.iter()
        .map(|(k, v)| Ok((k.clone(), expand(v, vars)?)))
        .collect()
}
