//! `{variable}` expansion, Ramble's templating primitive.

use crate::error::RambleError;
use std::collections::{BTreeMap, BTreeSet};

/// Substitution passes before checking the reference graph for a real cycle.
const MAX_DEPTH: usize = 16;

/// Expands `{var}` references in `template` using `vars`, recursively
/// (values may themselves reference variables, as `mpi_command` does in
/// Figure 12). Unknown variables are an error; `{{` renders a literal `{`.
///
/// Expansion runs to a fixpoint. After `MAX_DEPTH` passes the variable
/// reference graph reachable from the template is checked: only a genuine
/// cycle is an error — a deep-but-acyclic chain keeps expanding, since an
/// acyclic graph guarantees termination.
///
/// Undefined references do not abort the pass: expansion continues so that
/// *every* undefined variable reachable from the template is collected, and
/// the fixpoint error names them all at once.
pub fn expand(template: &str, vars: &BTreeMap<String, String>) -> Result<String, RambleError> {
    let mut current = template.to_string();
    let mut passes = 0usize;
    loop {
        let mut undefined = BTreeSet::new();
        let (next, changed) = expand_once(&current, vars, &mut undefined)?;
        if !changed {
            if !undefined.is_empty() {
                let names: Vec<String> = undefined.iter().map(|n| format!("`{n}`")).collect();
                let noun = if names.len() == 1 {
                    "variable"
                } else {
                    "variables"
                };
                return Err(RambleError::Expansion(format!(
                    "undefined {noun} {} in {:?}",
                    names.join(", "),
                    unprotect(template)
                )));
            }
            return Ok(next.replace('\u{1}', "{").replace('\u{2}', "}"));
        }
        current = next;
        passes += 1;
        if passes == MAX_DEPTH {
            if let Some(cycle) = find_cycle(template, vars) {
                return Err(RambleError::Expansion(format!(
                    "cyclic variable definitions while expanding {:?}: {}",
                    unprotect(template),
                    cycle.join(" -> ")
                )));
            }
            // acyclic: the fixpoint exists, keep going until we reach it
        }
    }
}

/// Restores protected-brace sentinels to readable braces for error messages.
fn unprotect(text: &str) -> String {
    text.replace('\u{1}', "{").replace('\u{2}', "}")
}

fn expand_once(
    text: &str,
    vars: &BTreeMap<String, String>,
    undefined: &mut BTreeSet<String>,
) -> Result<(String, bool), RambleError> {
    let mut out = String::with_capacity(text.len());
    let mut changed = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                out.push('\u{1}'); // protected literal brace
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                out.push('\u{2}');
            }
            '{' => {
                let mut name = String::new();
                for nc in chars.by_ref() {
                    if nc == '}' {
                        break;
                    }
                    name.push(nc);
                }
                if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    return Err(RambleError::Expansion(format!(
                        "malformed variable reference `{{{}}}` in {:?}",
                        unprotect(&name),
                        unprotect(text)
                    )));
                }
                match vars.get(&name) {
                    Some(value) => {
                        out.push_str(value);
                        changed = true;
                    }
                    None => {
                        // Leave the reference in place and keep expanding, so
                        // one error can report every undefined variable.
                        undefined.insert(name.clone());
                        out.push('{');
                        out.push_str(&name);
                        out.push('}');
                    }
                }
            }
            other => out.push(other),
        }
    }
    Ok((out, changed))
}

/// Well-formed variable names referenced by `text` (protected braces skipped).
fn refs_in(text: &str) -> Vec<String> {
    let mut refs = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
            }
            '{' => {
                let mut name = String::new();
                for nc in chars.by_ref() {
                    if nc == '}' {
                        break;
                    }
                    name.push(nc);
                }
                if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    refs.push(name);
                }
            }
            _ => {}
        }
    }
    refs
}

/// Searches the definition graph reachable from `template` for a reference
/// cycle; returns the cycle path (first node repeated at the end) if found.
fn find_cycle(template: &str, vars: &BTreeMap<String, String>) -> Option<Vec<String>> {
    fn dfs(
        name: &str,
        vars: &BTreeMap<String, String>,
        stack: &mut Vec<String>,
        done: &mut BTreeSet<String>,
    ) -> Option<Vec<String>> {
        if let Some(pos) = stack.iter().position(|s| s == name) {
            let mut cycle = stack[pos..].to_vec();
            cycle.push(name.to_string());
            return Some(cycle);
        }
        if done.contains(name) {
            return None;
        }
        stack.push(name.to_string());
        if let Some(value) = vars.get(name) {
            for reference in refs_in(value) {
                if let Some(cycle) = dfs(&reference, vars, stack, done) {
                    return Some(cycle);
                }
            }
        }
        stack.pop();
        done.insert(name.to_string());
        None
    }

    let mut done = BTreeSet::new();
    for root in refs_in(template) {
        if let Some(cycle) = dfs(&root, vars, &mut Vec::new(), &mut done) {
            return Some(cycle);
        }
    }
    None
}

/// Expands every value of a variable map against itself (used to resolve
/// `variables.yaml` entries that reference experiment variables late).
pub fn expand_all(
    vars: &BTreeMap<String, String>,
) -> Result<BTreeMap<String, String>, RambleError> {
    vars.iter()
        .map(|(k, v)| Ok((k.clone(), expand(v, vars)?)))
        .collect()
}
