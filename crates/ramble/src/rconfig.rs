//! Parsing `ramble.yaml` (Figure 10) and `variables.yaml` (Figure 12).

use crate::error::RambleError;
use benchpark_yamlite::{parse, Value};
use std::collections::BTreeMap;

/// A variable value: scalar, or a list to be consumed by zips/matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum VarValue {
    Scalar(String),
    List(Vec<String>),
}

impl VarValue {
    fn from_yaml(v: &Value) -> Option<VarValue> {
        match v {
            Value::Seq(_) => v.string_list().map(VarValue::List),
            other => other.scalar_string().map(VarValue::Scalar),
        }
    }
}

/// One experiment declaration (Figure 10, lines 20–30).
#[derive(Debug, Clone)]
pub struct ExperimentDef {
    /// The name template, e.g. `saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}`.
    pub name_template: String,
    /// Experiment-scoped variables (scalars and lists).
    pub variables: BTreeMap<String, VarValue>,
    /// Matrices: each entry is the list of variable names crossed together.
    pub matrices: Vec<(String, Vec<String>)>,
    /// `n_repeats`: replicate each generated experiment this many times
    /// (named `<name>.1` … `<name>.N`) so analysis can measure run-to-run
    /// variance. 1 = no repetition.
    pub n_repeats: u32,
}

impl Default for ExperimentDef {
    fn default() -> Self {
        ExperimentDef {
            name_template: String::new(),
            variables: BTreeMap::new(),
            matrices: Vec::new(),
            n_repeats: 1,
        }
    }
}

/// One workload section (Figure 10, lines 12–30).
#[derive(Debug, Clone, Default)]
pub struct WorkloadConfig {
    /// `env_vars: set:` entries.
    pub env_vars: BTreeMap<String, String>,
    /// Workload-scoped variables.
    pub variables: BTreeMap<String, VarValue>,
    /// Experiments declared under this workload.
    pub experiments: Vec<ExperimentDef>,
    /// Extra success criteria declared in `ramble.yaml` (§4.5 / Table 1 row
    /// 5: evaluation can be experiment-specific, not only `application.py`).
    pub success_criteria: Vec<benchpark_pkg::SuccessCriterion>,
}

/// `spack: packages:` entry (Figure 10 lines 31–35 / Figure 9).
#[derive(Debug, Clone)]
pub struct SpackPackageDef {
    pub spack_spec: String,
    /// Reference to another package entry acting as the compiler
    /// (`compiler: default-compiler`).
    pub compiler: Option<String>,
}

/// `spack: environments:` entry (Figure 10 lines 36–40).
#[derive(Debug, Clone, Default)]
pub struct EnvironmentDef {
    pub packages: Vec<String>,
}

/// The parsed `ramble.yaml` (+ merged `variables.yaml`).
#[derive(Debug, Clone, Default)]
pub struct RambleConfig {
    /// `include:` paths (informational; Benchpark resolves them by handing
    /// us the included texts via [`RambleConfig::merge_variables_yaml`]).
    pub includes: Vec<String>,
    /// application → workload name → workload config.
    pub applications: BTreeMap<String, BTreeMap<String, WorkloadConfig>>,
    /// Named spack package definitions.
    pub spack_packages: BTreeMap<String, SpackPackageDef>,
    /// Named software environments.
    pub environments: BTreeMap<String, EnvironmentDef>,
    /// Global variables (from `variables.yaml` and `ramble: variables:`).
    pub variables: BTreeMap<String, String>,
    /// `compilers:` list from `variables.yaml`.
    pub compilers: Vec<String>,
}

impl RambleConfig {
    /// Parses a `ramble.yaml` document (Figure 10's exact layout).
    pub fn from_yaml(text: &str) -> Result<RambleConfig, RambleError> {
        let doc = parse(text)?;
        let ramble = doc
            .get("ramble")
            .ok_or_else(|| RambleError::Config("missing top-level `ramble:` key".to_string()))?;

        let mut config = RambleConfig::default();
        if let Some(includes) = ramble.get("include").and_then(Value::string_list) {
            config.includes = includes;
        }
        if let Some(vars) = ramble.get("variables").and_then(Value::as_map) {
            for (k, v) in vars.iter() {
                if let Some(s) = v.scalar_string() {
                    config.variables.insert(k.clone(), s);
                }
            }
        }

        if let Some(apps) = ramble.get("applications").and_then(Value::as_map) {
            for (app_name, app_body) in apps.iter() {
                let mut workloads = BTreeMap::new();
                if let Some(wls) = app_body.get("workloads").and_then(Value::as_map) {
                    for (wl_name, wl_body) in wls.iter() {
                        workloads.insert(wl_name.clone(), parse_workload(wl_body)?);
                    }
                }
                config.applications.insert(app_name.clone(), workloads);
            }
        }

        if let Some(spack) = ramble.get("spack") {
            if let Some(pkgs) = spack.get("packages").and_then(Value::as_map) {
                for (name, body) in pkgs.iter() {
                    let spec = body
                        .get("spack_spec")
                        .and_then(Value::as_str)
                        .ok_or_else(|| {
                            RambleError::Config(format!("package `{name}` lacks spack_spec"))
                        })?;
                    config.spack_packages.insert(
                        name.clone(),
                        SpackPackageDef {
                            spack_spec: spec.to_string(),
                            compiler: body
                                .get("compiler")
                                .and_then(Value::as_str)
                                .map(String::from),
                        },
                    );
                }
            }
            if let Some(envs) = spack.get("environments").and_then(Value::as_map) {
                for (name, body) in envs.iter() {
                    let packages = body
                        .get("packages")
                        .and_then(Value::string_list)
                        .unwrap_or_default();
                    config
                        .environments
                        .insert(name.clone(), EnvironmentDef { packages });
                }
            }
        }
        Ok(config)
    }

    /// Merges a `variables.yaml` document (Figure 12) into the global
    /// variables — Benchpark's way of resolving the `include:` entries.
    pub fn merge_variables_yaml(&mut self, text: &str) -> Result<(), RambleError> {
        let doc = parse(text)?;
        let vars = doc
            .get("variables")
            .ok_or_else(|| RambleError::Config("missing `variables:` key".to_string()))?
            .as_map()
            .ok_or_else(|| RambleError::Config("`variables:` must be a mapping".to_string()))?;
        for (k, v) in vars.iter() {
            if k == "compilers" {
                if let Some(list) = v.string_list() {
                    self.compilers = list;
                }
            } else if let Some(s) = v.scalar_string() {
                self.variables.insert(k.clone(), s);
            }
        }
        Ok(())
    }

    /// Merges a system-level `spack.yaml` (Figure 9: named package and
    /// compiler definitions like `default-compiler`, `default-mpi`) into the
    /// configuration — the other half of the `include:` mechanism. Existing
    /// experiment-level definitions win.
    pub fn merge_spack_yaml(&mut self, text: &str) -> Result<(), RambleError> {
        let doc = parse(text)?;
        let spack = doc
            .get("spack")
            .ok_or_else(|| RambleError::Config("missing `spack:` key".to_string()))?;
        if let Some(pkgs) = spack.get("packages").and_then(Value::as_map) {
            for (name, body) in pkgs.iter() {
                if self.spack_packages.contains_key(name) {
                    continue;
                }
                let spec = body
                    .get("spack_spec")
                    .and_then(Value::as_str)
                    .ok_or_else(|| {
                        RambleError::Config(format!("package `{name}` lacks spack_spec"))
                    })?;
                self.spack_packages.insert(
                    name.clone(),
                    SpackPackageDef {
                        spack_spec: spec.to_string(),
                        compiler: body
                            .get("compiler")
                            .and_then(Value::as_str)
                            .map(String::from),
                    },
                );
            }
        }
        Ok(())
    }

    /// Resolves a `spack_spec` plus its `compiler:` reference into one
    /// abstract spec string (`saxpy@1.0.0 +openmp ^cmake@3.23.1 %gcc@12.1.1`).
    pub fn resolved_spec(&self, package: &str) -> Result<String, RambleError> {
        let def = self.spack_packages.get(package).ok_or_else(|| {
            RambleError::Config(format!("unknown spack package `{package}` in ramble.yaml"))
        })?;
        let mut spec = def.spack_spec.clone();
        if let Some(comp_ref) = &def.compiler {
            let comp = self.spack_packages.get(comp_ref).ok_or_else(|| {
                RambleError::Config(format!(
                    "package `{package}` references unknown compiler `{comp_ref}`"
                ))
            })?;
            spec.push_str(&format!(" %{}", comp.spack_spec));
        }
        Ok(spec)
    }
}

fn parse_workload(body: &Value) -> Result<WorkloadConfig, RambleError> {
    let mut wl = WorkloadConfig::default();
    if let Some(set) = body.get_path(&["env_vars", "set"]).and_then(Value::as_map) {
        for (k, v) in set.iter() {
            if let Some(s) = v.scalar_string() {
                wl.env_vars.insert(k.clone(), s);
            }
        }
    }
    if let Some(vars) = body.get("variables").and_then(Value::as_map) {
        for (k, v) in vars.iter() {
            if let Some(value) = VarValue::from_yaml(v) {
                wl.variables.insert(k.clone(), value);
            }
        }
    }
    if let Some(criteria) = body.get("success_criteria").and_then(Value::as_seq) {
        for crit in criteria {
            let name = crit
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| RambleError::Config("success criterion lacks `name`".to_string()))?;
            let mode = match crit.get("mode").and_then(Value::as_str) {
                Some("string") | None => benchpark_pkg::SuccessMode::StringMatch,
                Some("fom_comparison") => benchpark_pkg::SuccessMode::FomComparison,
                Some(other) => {
                    return Err(RambleError::Config(format!(
                        "unknown success criterion mode `{other}`"
                    )))
                }
            };
            let match_expr = crit
                .get("match")
                .and_then(Value::as_str)
                .ok_or_else(|| RambleError::Config(format!("criterion `{name}` lacks `match`")))?;
            wl.success_criteria.push(benchpark_pkg::SuccessCriterion {
                name: name.to_string(),
                mode,
                match_expr: match_expr.to_string(),
                file: crit
                    .get("file")
                    .and_then(Value::as_str)
                    .unwrap_or("{experiment_run_dir}/{experiment_name}.out")
                    .to_string(),
            });
        }
    }
    if let Some(exps) = body.get("experiments").and_then(Value::as_map) {
        for (name_template, exp_body) in exps.iter() {
            let mut def = ExperimentDef {
                name_template: name_template.clone(),
                ..ExperimentDef::default()
            };
            if let Some(vars) = exp_body.get("variables").and_then(Value::as_map) {
                for (k, v) in vars.iter() {
                    if let Some(value) = VarValue::from_yaml(v) {
                        def.variables.insert(k.clone(), value);
                    }
                }
            }
            if let Some(n) = exp_body.get("n_repeats").and_then(|v| v.scalar_string()) {
                def.n_repeats = n.parse().map_err(|_| {
                    RambleError::Config(format!("n_repeats must be a positive integer, got {n:?}"))
                })?;
                if def.n_repeats == 0 {
                    return Err(RambleError::Config("n_repeats must be >= 1".to_string()));
                }
            }
            if let Some(matrices) = exp_body.get("matrices").and_then(Value::as_seq) {
                for m in matrices {
                    let map = m.as_map().ok_or_else(|| {
                        RambleError::Config("each matrix must be `- name:` with a list".to_string())
                    })?;
                    for (mname, mvars) in map.iter() {
                        let vars = mvars.string_list().ok_or_else(|| {
                            RambleError::Config(format!("matrix `{mname}` must list variables"))
                        })?;
                        def.matrices.push((mname.clone(), vars));
                    }
                }
            }
            wl.experiments.push(def);
        }
    }
    Ok(wl)
}
