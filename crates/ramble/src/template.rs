//! Batch-script template rendering (paper Figure 13).

use crate::error::RambleError;
use crate::expand::expand;
use std::collections::BTreeMap;

/// The default `execute_experiment.tpl`, verbatim from Figure 13.
pub const DEFAULT_TEMPLATE: &str = "#!/bin/bash\n{batch_nodes}\n{batch_ranks}\ncd {experiment_run_dir}\n{spack_setup}\n{command}\n";

/// Renders a template with the experiment's full variable table — the last
/// step of `ramble workspace setup` (§3.2.3: *"Generating files from every
/// template file in the configs"*).
pub fn render_template(
    template: &str,
    vars: &BTreeMap<String, String>,
) -> Result<String, RambleError> {
    expand(template, vars)
}
