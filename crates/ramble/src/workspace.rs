//! The Ramble workspace: the five-step workflow of Figure 5 over a real
//! directory tree.

use crate::analyze::{analyze_experiment_with, AnalyzeReport};
use crate::error::RambleError;
use crate::expand::expand;
use crate::expgen::{generate_experiments, ExperimentInstance};
use crate::modifiers::Modifier;
use crate::rconfig::RambleConfig;
use crate::template::{render_template, DEFAULT_TEMPLATE};
use benchpark_concretizer::SiteConfig;
use benchpark_engine::{Engine, TaskGraph};
use benchpark_pkg::{AppRepo, Repo};
use benchpark_resilience::RetryPolicy;
use benchpark_spack::{BinaryCache, Environment, InstallOptions, InstallReport, Installer};
use benchpark_telemetry::TelemetrySink;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// What one experiment run produced (`ramble on`).
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub stdout: String,
    pub exit_code: i32,
    /// Caliper-style profile if the runner collected one.
    pub profile: Vec<(String, f64)>,
}

/// The outcome of `ramble workspace setup`.
#[derive(Debug)]
pub struct SetupReport {
    /// Experiments generated, in declaration order.
    pub experiments: Vec<ExperimentInstance>,
    /// One install report per software environment built.
    pub install_reports: BTreeMap<String, Vec<InstallReport>>,
    /// Abstract spec strings per environment.
    pub environment_specs: BTreeMap<String, Vec<String>>,
}

/// A self-contained experiment workspace (Figure 5).
pub struct Workspace {
    root: PathBuf,
    config: Option<RambleConfig>,
    template: String,
    modifiers: Vec<Modifier>,
    experiments: Vec<ExperimentInstance>,
    scripts: BTreeMap<String, String>,
    run_outputs: BTreeMap<String, RunOutput>,
    telemetry: TelemetrySink,
    /// Site-wide binary cache shared across setups (when attached, builds
    /// push to it and later installs fetch from it).
    cache: Option<BinaryCache>,
    retry: Option<RetryPolicy>,
}

impl Workspace {
    /// `ramble workspace create`: builds the directory skeleton.
    pub fn create(root: impl AsRef<Path>) -> Result<Workspace, RambleError> {
        let root = root.as_ref().to_path_buf();
        for sub in ["configs", "experiments", "software", "logs"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(Workspace {
            root,
            config: None,
            template: DEFAULT_TEMPLATE.to_string(),
            modifiers: Vec::new(),
            experiments: Vec::new(),
            scripts: BTreeMap::new(),
            run_outputs: BTreeMap::new(),
            telemetry: TelemetrySink::noop(),
            cache: None,
            retry: None,
        })
    }

    /// The workspace root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Routes workspace telemetry (setup/run/analyze spans, per-environment
    /// concretize and install instrumentation) to `sink`.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Attaches a shared (site-wide) binary cache used by `setup` instead of
    /// a fresh per-setup cache.
    pub fn set_cache(&mut self, cache: BinaryCache) {
        self.cache = Some(cache);
    }

    /// Retries transient binary-cache fetch failures during `setup` under
    /// `policy` (single attempt, no retries, when unset).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// `ramble workspace edit`: installs the `ramble.yaml` text.
    pub fn set_config(&mut self, ramble_yaml: &str) -> Result<(), RambleError> {
        fs::write(self.root.join("configs/ramble.yaml"), ramble_yaml)?;
        self.config = Some(RambleConfig::from_yaml(ramble_yaml)?);
        Ok(())
    }

    /// Resolves an `include:` by merging a `variables.yaml` text.
    pub fn merge_variables(&mut self, variables_yaml: &str) -> Result<(), RambleError> {
        fs::write(self.root.join("configs/variables.yaml"), variables_yaml)?;
        self.config
            .as_mut()
            .ok_or_else(|| RambleError::Phase("set_config before merge_variables".to_string()))?
            .merge_variables_yaml(variables_yaml)
    }

    /// Resolves an `include:` by merging a system `spack.yaml` (Figure 9).
    pub fn merge_spack(&mut self, spack_yaml: &str) -> Result<(), RambleError> {
        fs::write(self.root.join("configs/spack.yaml"), spack_yaml)?;
        self.config
            .as_mut()
            .ok_or_else(|| RambleError::Phase("set_config before merge_spack".to_string()))?
            .merge_spack_yaml(spack_yaml)
    }

    /// Replaces the batch template (`execute_experiment.tpl`).
    pub fn set_template(&mut self, template: &str) -> Result<(), RambleError> {
        fs::write(self.root.join("configs/execute_experiment.tpl"), template)?;
        self.template = template.to_string();
        Ok(())
    }

    /// Registers a modifier applied to every experiment at setup.
    pub fn add_modifier(&mut self, modifier: Modifier) {
        self.modifiers.push(modifier);
    }

    /// The parsed configuration.
    pub fn config(&self) -> Option<&RambleConfig> {
        self.config.as_ref()
    }

    /// Generated experiments (after setup).
    pub fn experiments(&self) -> &[ExperimentInstance] {
        &self.experiments
    }

    /// Drops every generated experiment (and its rendered script) for which
    /// `keep` returns false — the skip step of incremental re-benchmarking:
    /// experiments whose fingerprint already has a valid ledger record are
    /// pruned here, so `run`/`analyze` only touch the remainder. Returns how
    /// many experiments were dropped. Call between `setup` and `run`; with
    /// everything pruned, `run` refuses as usual ("setup before run"), so
    /// callers skip the run phase entirely when nothing is left.
    pub fn retain_experiments(&mut self, mut keep: impl FnMut(&str) -> bool) -> usize {
        let before = self.experiments.len();
        self.experiments.retain(|exp| {
            let kept = keep(&exp.name);
            if !kept {
                self.scripts.remove(&exp.name);
            }
            kept
        });
        before - self.experiments.len()
    }

    /// The rendered batch script for an experiment.
    pub fn script(&self, experiment: &str) -> Option<&str> {
        self.scripts.get(experiment).map(String::as_str)
    }

    /// `ramble workspace setup`: generates experiments, builds software with
    /// Spack, renders one batch script per experiment.
    pub fn setup(
        &mut self,
        repo: &Repo,
        app_repo: &AppRepo,
        site: &SiteConfig,
        install_opts: &InstallOptions,
    ) -> Result<SetupReport, RambleError> {
        let _setup_span = self.telemetry.span("workspace.setup");
        let config = self
            .config
            .clone()
            .ok_or_else(|| RambleError::Phase("set_config before setup".to_string()))?;

        // ---- software environments (§3.2.3 step: install via Spack) -------
        let cache = self.cache.clone().unwrap_or_default();
        let mut installer = Installer::new(repo)
            .with_cache(cache)
            .with_telemetry(self.telemetry.clone());
        if let Some(policy) = &self.retry {
            installer = installer.with_retry_policy(policy.clone());
        }
        let mut install_reports = BTreeMap::new();
        let mut environment_specs = BTreeMap::new();
        for (env_name, env_def) in &config.environments {
            let _env_span = self.telemetry.span("environment");
            let mut env = Environment::create(env_name);
            let mut specs = Vec::new();
            for pkg_ref in &env_def.packages {
                let spec = config.resolved_spec(pkg_ref)?;
                env.add(&spec)
                    .map_err(|e| RambleError::Software(format!("bad spec `{spec}`: {e}")))?;
                specs.push(spec);
            }
            env.concretize_instrumented(repo, site, self.telemetry.clone())
                .map_err(|e| RambleError::Software(format!("environment `{env_name}`: {e}")))?;
            let reports = env
                .install(&installer, install_opts)
                .map_err(|e| RambleError::Software(e.to_string()))?;
            install_reports.insert(env_name.clone(), reports);
            environment_specs.insert(env_name.clone(), specs);
        }

        // ---- experiment generation + script rendering ----------------------
        self.experiments.clear();
        self.scripts.clear();
        for (app_name, workloads) in &config.applications {
            let app = app_repo
                .get(app_name)
                .ok_or_else(|| RambleError::Config(format!("unknown application `{app_name}`")))?;
            for (wl_name, wl_cfg) in workloads {
                if app.get_workload(wl_name).is_none() {
                    return Err(RambleError::Config(format!(
                        "application `{app_name}` has no workload `{wl_name}`"
                    )));
                }
                // base variables: app defaults < global variables
                let mut base = app.defaults_for(wl_name);
                for (k, v) in &config.variables {
                    base.insert(k.clone(), v.clone());
                }
                base.insert("workspace_dir".to_string(), self.root.display().to_string());
                for def in &wl_cfg.experiments {
                    let mut generated =
                        generate_experiments(app_name, wl_name, wl_cfg, def, &base)?;
                    for exp in &mut generated {
                        for modifier in &self.modifiers {
                            modifier.apply(exp);
                        }
                        self.render_experiment(app, exp)?;
                        self.experiments.push(exp.clone());
                    }
                }
            }
        }
        Ok(SetupReport {
            experiments: self.experiments.clone(),
            install_reports,
            environment_specs,
        })
    }

    /// Renders one experiment's run directory and batch script.
    fn render_experiment(
        &mut self,
        app: &benchpark_pkg::ApplicationDef,
        exp: &mut ExperimentInstance,
    ) -> Result<(), RambleError> {
        let run_dir = self
            .root
            .join("experiments")
            .join(&exp.application)
            .join(&exp.workload)
            .join(&exp.name);
        fs::create_dir_all(&run_dir)?;
        exp.variables.insert(
            "experiment_run_dir".to_string(),
            run_dir.display().to_string(),
        );

        // assemble the `command` variable: env exports + one line per
        // workload executable (MPI-launched where declared)
        let workload = app.get_workload(&exp.workload).expect("validated in setup");
        let mut command_lines = Vec::new();
        for (key, value) in &exp.env_vars {
            let value = expand(value, &exp.variables)?;
            command_lines.push(format!("export {key}={value}"));
        }
        for exe_name in &workload.executables {
            let exe = app.get_executable(exe_name).ok_or_else(|| {
                RambleError::Config(format!(
                    "workload `{}` references unknown executable `{exe_name}`",
                    exp.workload
                ))
            })?;
            let exe_cmd = expand(&exe.template, &exp.variables)?;
            if exe.use_mpi {
                let launcher_tpl = exp
                    .variables
                    .get("mpi_command")
                    .cloned()
                    .unwrap_or_else(|| "mpirun -n {n_ranks}".to_string());
                let launcher = expand(&launcher_tpl, &exp.variables)?;
                command_lines.push(format!("{launcher} {exe_cmd}"));
            } else {
                command_lines.push(exe_cmd);
            }
        }
        exp.variables
            .insert("command".to_string(), command_lines.join("\n"));
        // the rendered script's own path (referenced by Figure 12's
        // `batch_submit: 'sbatch {execute_experiment}'`)
        exp.variables.insert(
            "execute_experiment".to_string(),
            run_dir.join("execute_experiment").display().to_string(),
        );
        exp.variables
            .entry("spack_setup".to_string())
            .or_insert_with(|| {
                format!(
                    "# spack environment for {} activated from {}/software",
                    exp.application,
                    self.root.display()
                )
            });
        // default batch directives when variables.yaml does not provide them
        for (key, default) in [
            ("batch_nodes", "#SBATCH -N {n_nodes}"),
            ("batch_ranks", "#SBATCH -n {n_ranks}"),
        ] {
            exp.variables
                .entry(key.to_string())
                .or_insert_with(|| default.to_string());
        }
        // expand the batch directive variables themselves
        let expanded = crate::expand::expand_all(&exp.variables)?;
        let script = render_template(&self.template, &expanded)?;
        let script_path = run_dir.join("execute_experiment");
        fs::write(&script_path, &script)?;
        self.scripts.insert(exp.name.clone(), script);
        Ok(())
    }

    /// `ramble on`: executes every experiment's script through `runner` and
    /// captures stdout to `{experiment_run_dir}/{experiment_name}.out`.
    pub fn run_with(
        &mut self,
        mut runner: impl FnMut(&ExperimentInstance, &str) -> RunOutput,
    ) -> Result<(), RambleError> {
        if self.experiments.is_empty() {
            return Err(RambleError::Phase("setup before run".to_string()));
        }
        let _run_span = self.telemetry.span("workspace.run");
        let experiments = self.experiments.clone();
        for exp in &experiments {
            let script = self
                .scripts
                .get(&exp.name)
                .expect("setup rendered every script")
                .clone();
            let output = runner(exp, &script);
            self.record_output(exp, output)?;
        }
        Ok(())
    }

    /// `ramble on` against a real batch scheduler: submits every experiment
    /// first, drains the queue once, then collects outputs. Unlike
    /// [`Workspace::run_with`] (one submit-and-wait per experiment),
    /// experiments coexist in the queue, so scheduler-level events — backfill,
    /// node failures, preemption and requeue — can involve several jobs at
    /// once. `submit` returns an opaque job handle, or `Err(output)` when the
    /// submission itself is rejected.
    pub fn run_batched<H>(
        &mut self,
        mut submit: impl FnMut(&ExperimentInstance, &str) -> Result<H, RunOutput>,
        drain: impl FnOnce(),
        mut collect: impl FnMut(&ExperimentInstance, H) -> RunOutput,
    ) -> Result<(), RambleError> {
        if self.experiments.is_empty() {
            return Err(RambleError::Phase("setup before run".to_string()));
        }
        let _run_span = self.telemetry.span("workspace.run");
        let experiments = self.experiments.clone();
        let scripts: Vec<String> = experiments
            .iter()
            .map(|exp| {
                self.scripts
                    .get(&exp.name)
                    .expect("setup rendered every script")
                    .clone()
            })
            .collect();

        // phase markers for the engine's task payloads
        enum Step {
            Submit(usize),
            Drain,
            Collect(usize),
        }

        // submit → drain → collect as an explicit task graph: every submit
        // precedes the single drain, every collect follows it. Equal
        // durations make the engine's insertion-order tie-break dispatch
        // submits in declaration order, preserving cluster job-id assignment.
        let mut graph = TaskGraph::new();
        let mut submits = Vec::with_capacity(experiments.len());
        for (i, exp) in experiments.iter().enumerate() {
            submits.push(
                graph
                    .add_task(&format!("submit:{}", exp.name), Step::Submit(i), 1.0)
                    .map_err(|e| RambleError::Phase(e.to_string()))?,
            );
        }
        let drain_task = graph
            .add_task("drain", Step::Drain, 1.0)
            .expect("unique key");
        for &submitted in &submits {
            graph
                .depends_on(drain_task, submitted)
                .expect("distinct tasks");
        }
        for (i, exp) in experiments.iter().enumerate() {
            let collect_task = graph
                .add_task(&format!("collect:{}", exp.name), Step::Collect(i), 1.0)
                .map_err(|e| RambleError::Phase(e.to_string()))?;
            graph
                .depends_on(collect_task, drain_task)
                .expect("distinct tasks");
        }

        let mut handles: Vec<Option<Result<H, RunOutput>>> =
            (0..experiments.len()).map(|_| None).collect();
        let mut collected: Vec<Option<RunOutput>> = (0..experiments.len()).map(|_| None).collect();
        let mut drain = Some(drain);
        Engine::new(experiments.len().max(1))
            .with_telemetry(self.telemetry.clone())
            .run(&graph, |task, _ctx| {
                match task.payload {
                    Step::Submit(i) => handles[i] = Some(submit(&experiments[i], &scripts[i])),
                    Step::Drain => (drain.take().expect("drain runs once"))(),
                    Step::Collect(i) => {
                        let output = match handles[i].take().expect("submit preceded collect") {
                            Ok(handle) => collect(&experiments[i], handle),
                            Err(rejected) => rejected,
                        };
                        collected[i] = Some(output);
                    }
                }
                Ok::<(), String>(())
            })
            .expect("batched run graph is acyclic and infallible");

        for (exp, output) in experiments.iter().zip(collected.iter_mut()) {
            self.record_output(exp, output.take().expect("collect task ran"))?;
        }
        Ok(())
    }

    /// Captures one experiment's output to `{experiment_run_dir}/{name}.out`
    /// (plus its Caliper profile when enabled).
    fn record_output(
        &mut self,
        exp: &ExperimentInstance,
        output: RunOutput,
    ) -> Result<(), RambleError> {
        let run_dir = Path::new(&exp.variables["experiment_run_dir"]);
        fs::write(run_dir.join(format!("{}.out", exp.name)), &output.stdout)?;
        // always-on Caliper profiling (§5): the Caliper modifier sets
        // CALI_CONFIG, and each run then emits its profile as a .cali
        // file next to the output
        if exp.env_vars.contains_key("CALI_CONFIG") && !output.profile.is_empty() {
            let mut cali = String::from("# caliper spot profile\n");
            for (region, seconds) in &output.profile {
                cali.push_str(&format!("{region} {seconds:.9}\n"));
            }
            fs::write(run_dir.join(format!("{}.cali", exp.name)), cali)?;
        }
        self.run_outputs.insert(exp.name.clone(), output);
        Ok(())
    }

    /// Output of one experiment (after `run_with`).
    pub fn run_output(&self, experiment: &str) -> Option<&RunOutput> {
        self.run_outputs.get(experiment)
    }

    /// `ramble workspace archive`: copies everything needed to reproduce and
    /// audit the experiments — configs, rendered scripts, and captured
    /// outputs — into `dest`, with a MANIFEST index. This is how results
    /// travel between collaborators (§5, §7.1).
    pub fn archive(&self, dest: impl AsRef<Path>) -> Result<usize, RambleError> {
        if self.run_outputs.is_empty() {
            return Err(RambleError::Phase("run before archive".to_string()));
        }
        let dest = dest.as_ref();
        fs::create_dir_all(dest.join("configs"))?;
        let mut manifest = String::from("# ramble workspace archive\nfiles:\n");
        let mut copied = 0usize;
        for file in [
            "ramble.yaml",
            "variables.yaml",
            "spack.yaml",
            "execute_experiment.tpl",
        ] {
            let src = self.root.join("configs").join(file);
            if src.is_file() {
                fs::copy(&src, dest.join("configs").join(file))?;
                manifest.push_str(&format!("  - configs/{file}\n"));
                copied += 1;
            }
        }
        for exp in &self.experiments {
            let exp_dest = dest.join("experiments").join(&exp.name);
            fs::create_dir_all(&exp_dest)?;
            let run_dir = Path::new(&exp.variables["experiment_run_dir"]);
            for file in [
                "execute_experiment".to_string(),
                format!("{}.out", exp.name),
                format!("{}.cali", exp.name),
            ] {
                let src = run_dir.join(&file);
                if src.is_file() {
                    fs::copy(&src, exp_dest.join(&file))?;
                    manifest.push_str(&format!("  - experiments/{}/{file}\n", exp.name));
                    copied += 1;
                }
            }
        }
        fs::write(dest.join("MANIFEST"), manifest)?;
        Ok(copied)
    }

    /// `ramble workspace analyze`: extracts figures of merit and evaluates
    /// success criteria (§3.2.5, §4.5).
    pub fn analyze(&self, app_repo: &AppRepo) -> Result<AnalyzeReport, RambleError> {
        if self.run_outputs.is_empty() {
            return Err(RambleError::Phase("run before analyze".to_string()));
        }
        let _analyze_span = self.telemetry.span("workspace.analyze");
        let mut results = Vec::new();
        for exp in &self.experiments {
            let app = app_repo
                .get(&exp.application)
                .ok_or_else(|| RambleError::Config(format!("unknown app `{}`", exp.application)))?;
            let output = self.run_outputs.get(&exp.name).ok_or_else(|| {
                RambleError::Phase(format!("experiment `{}` never ran", exp.name))
            })?;
            let extra = self
                .config
                .as_ref()
                .and_then(|c| c.applications.get(&exp.application))
                .and_then(|workloads| workloads.get(&exp.workload))
                .map(|wl| wl.success_criteria.clone())
                .unwrap_or_default();
            results.push(analyze_experiment_with(exp, app, output, &extra)?);
        }
        Ok(AnalyzeReport { results })
    }
}
