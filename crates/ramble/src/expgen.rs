//! Experiment generation: scalars + zips + matrices → concrete experiments.
//!
//! Semantics (matching Ramble's workspace configuration language):
//!
//! 1. Variables named in a **matrix** must be lists; each matrix is the
//!    cross product of its variables. Multiple matrices are crossed with
//!    each other.
//! 2. List variables *not* named in any matrix are **zipped**: they advance
//!    together and must all have the same length.
//! 3. The zip is crossed with the matrix product; scalar variables are
//!    constant across all experiments.
//!
//! Figure 10: matrix `size_threads = n × n_threads` (2×2 = 4) crossed with
//! zip `(processes_per_node, n_nodes)` (length 2) ⇒ 8 experiments.

use crate::error::RambleError;
use crate::expand::expand;
use crate::rconfig::VarValue;
use crate::rconfig::{ExperimentDef, WorkloadConfig};
use std::collections::BTreeMap;

/// One fully-expanded experiment.
#[derive(Debug, Clone)]
pub struct ExperimentInstance {
    /// Expanded experiment name (`saxpy_512_1_8_2`).
    pub name: String,
    pub application: String,
    pub workload: String,
    /// All variables, fully expanded to strings.
    pub variables: BTreeMap<String, String>,
    /// Environment variables to export in the batch script.
    pub env_vars: BTreeMap<String, String>,
}

/// Variables whose values are derived from the workspace's on-disk location
/// (or from other variables plus that location). They identify *where* an
/// experiment ran, not *what* it computed, so experiment fingerprints
/// exclude them — the same experiment set up in two different workspace
/// directories must hash identically.
pub const WORKSPACE_LOCAL_VARIABLES: [&str; 5] = [
    "workspace_dir",
    "experiment_run_dir",
    "execute_experiment",
    "spack_setup",
    "command",
];

impl ExperimentInstance {
    /// The variables that determine this experiment's *result* — everything
    /// in [`ExperimentInstance::variables`] except the workspace-location
    /// derived entries of [`WORKSPACE_LOCAL_VARIABLES`]. Iteration order is
    /// the map's (sorted), so fingerprinting is deterministic.
    pub fn provenance_variables(&self) -> impl Iterator<Item = (&str, &str)> {
        self.variables
            .iter()
            .filter(|(k, _)| !WORKSPACE_LOCAL_VARIABLES.contains(&k.as_str()))
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// Generates all experiments for one experiment definition.
///
/// `base_vars` holds lower-precedence variables (application defaults,
/// `variables.yaml` contents, workspace paths). Precedence, low→high:
/// base < workload < experiment.
pub fn generate_experiments(
    application: &str,
    workload: &str,
    workload_cfg: &WorkloadConfig,
    def: &ExperimentDef,
    base_vars: &BTreeMap<String, String>,
) -> Result<Vec<ExperimentInstance>, RambleError> {
    // merged variable table
    let mut merged: BTreeMap<String, VarValue> = base_vars
        .iter()
        .map(|(k, v)| (k.clone(), VarValue::Scalar(v.clone())))
        .collect();
    for (k, v) in &workload_cfg.variables {
        merged.insert(k.clone(), v.clone());
    }
    for (k, v) in &def.variables {
        merged.insert(k.clone(), v.clone());
    }

    // matrices: cross within, cross across
    let mut matrix_vars: Vec<String> = Vec::new();
    let mut matrix_rows: Vec<BTreeMap<String, String>> = vec![BTreeMap::new()];
    for (matrix_name, vars) in &def.matrices {
        for var in vars {
            if matrix_vars.contains(var) {
                return Err(RambleError::Generation(format!(
                    "variable `{var}` appears in more than one matrix"
                )));
            }
            let values = match merged.get(var) {
                Some(VarValue::List(values)) => values.clone(),
                Some(VarValue::Scalar(_)) => {
                    return Err(RambleError::Generation(format!(
                        "matrix `{matrix_name}` references scalar variable `{var}` (must be a list)"
                    )))
                }
                None => {
                    return Err(RambleError::Generation(format!(
                        "matrix `{matrix_name}` references undefined variable `{var}`"
                    )))
                }
            };
            matrix_vars.push(var.clone());
            let mut next = Vec::with_capacity(matrix_rows.len() * values.len());
            for row in &matrix_rows {
                for value in &values {
                    let mut new_row = row.clone();
                    new_row.insert(var.clone(), value.clone());
                    next.push(new_row);
                }
            }
            matrix_rows = next;
        }
    }

    // zip of remaining list variables
    let zip_vars: Vec<(&String, &Vec<String>)> = merged
        .iter()
        .filter_map(|(k, v)| match v {
            VarValue::List(values) if !matrix_vars.contains(k) => Some((k, values)),
            _ => None,
        })
        .collect();
    let zip_len = zip_vars.first().map(|(_, v)| v.len()).unwrap_or(1);
    for (name, values) in &zip_vars {
        if values.len() != zip_len {
            return Err(RambleError::Generation(format!(
                "zipped list variables must have equal lengths: `{}` has {} values, expected {}",
                name,
                values.len(),
                zip_len
            )));
        }
    }

    // assemble: matrix rows × zip indices
    let mut out = Vec::with_capacity(matrix_rows.len() * zip_len);
    for row in &matrix_rows {
        for zi in 0..zip_len {
            let mut vars: BTreeMap<String, String> = BTreeMap::new();
            for (k, v) in &merged {
                if let VarValue::Scalar(s) = v {
                    vars.insert(k.clone(), s.clone());
                }
            }
            for (k, values) in &zip_vars {
                vars.insert((*k).clone(), values[zi].clone());
            }
            for (k, v) in row {
                vars.insert(k.clone(), v.clone());
            }

            vars.insert("application_name".to_string(), application.to_string());
            vars.insert("workload_name".to_string(), workload.to_string());

            // derived: n_ranks = processes_per_node × n_nodes when both are
            // numeric and n_ranks was not given (Ramble's builtin rule)
            if !vars.contains_key("n_ranks") {
                if let (Some(ppn), Some(nodes)) = (
                    vars.get("processes_per_node")
                        .and_then(|v| v.parse::<u64>().ok()),
                    vars.get("n_nodes").and_then(|v| v.parse::<u64>().ok()),
                ) {
                    vars.insert("n_ranks".to_string(), (ppn * nodes).to_string());
                }
            }

            let name = expand(&def.name_template, &vars)?;
            vars.insert("experiment_name".to_string(), name.clone());
            out.push(ExperimentInstance {
                name,
                application: application.to_string(),
                workload: workload.to_string(),
                variables: vars,
                env_vars: workload_cfg.env_vars.clone(),
            });
        }
    }

    // n_repeats: replicate each instance as `<name>.1` … `<name>.N` with a
    // `repeat_index` variable (Ramble's repetition support, for measuring
    // run-to-run variance)
    if def.n_repeats > 1 {
        let mut repeated = Vec::with_capacity(out.len() * def.n_repeats as usize);
        for exp in out {
            for repeat in 1..=def.n_repeats {
                let mut copy = exp.clone();
                copy.name = format!("{}.{repeat}", exp.name);
                copy.variables
                    .insert("repeat_index".to_string(), repeat.to_string());
                copy.variables
                    .insert("experiment_name".to_string(), copy.name.clone());
                repeated.push(copy);
            }
        }
        out = repeated;
    }

    // duplicate names are a configuration error (templates must
    // discriminate all varying variables)
    let mut seen = std::collections::BTreeSet::new();
    for exp in &out {
        if !seen.insert(exp.name.clone()) {
            return Err(RambleError::Generation(format!(
                "experiment name template produced duplicate name `{}` — \
                 include every varying variable in the template",
                exp.name
            )));
        }
    }
    Ok(out)
}
