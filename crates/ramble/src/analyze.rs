//! FOM extraction and success-criteria evaluation
//! (`ramble workspace analyze`, paper §3.2.5 and §4.5).

use crate::error::RambleError;
use crate::expgen::ExperimentInstance;
use crate::workspace::RunOutput;
use benchpark_pkg::{ApplicationDef, SuccessMode};
use benchpark_rex::Regex;
use std::collections::BTreeMap;

/// Did the experiment succeed?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentStatus {
    /// Exit code 0 and every success criterion matched.
    Success,
    /// Ran, but a success criterion failed.
    Failed,
    /// The job itself failed (nonzero exit).
    JobError,
}

/// One extracted figure of merit.
#[derive(Debug, Clone, PartialEq)]
pub struct FomValue {
    pub name: String,
    /// The captured group text.
    pub value: String,
    pub units: String,
    /// Additional named groups captured by the same regex
    /// (`size` in osu-bcast's per-size latency lines).
    pub context: BTreeMap<String, String>,
}

impl FomValue {
    /// The value as a float, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        self.value.parse().ok()
    }
}

/// The analysis of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub experiment: String,
    pub application: String,
    pub workload: String,
    pub status: ExperimentStatus,
    pub foms: Vec<FomValue>,
    /// Per-criterion outcomes, in declaration order.
    pub criteria: Vec<(String, bool)>,
    /// The experiment's variables (stored with results for reproducibility,
    /// per §5's manifest-with-results goal).
    pub variables: BTreeMap<String, String>,
    /// Caliper-style profile captured by the runner, if any.
    pub profile: Vec<(String, f64)>,
    /// Provenance: `true` when this result was *not* measured by the run
    /// that reports it but spliced from an earlier ledger record whose
    /// experiment fingerprint matched (incremental re-benchmarking).
    pub cached: bool,
}

/// All experiment results of a workspace.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    pub results: Vec<ExperimentResult>,
}

impl AnalyzeReport {
    /// Results with status `Success`.
    pub fn successes(&self) -> impl Iterator<Item = &ExperimentResult> {
        self.results
            .iter()
            .filter(|r| r.status == ExperimentStatus::Success)
    }

    /// Looks up one experiment's result.
    pub fn get(&self, experiment: &str) -> Option<&ExperimentResult> {
        self.results.iter().find(|r| r.experiment == experiment)
    }

    /// A flat `(experiment, fom name, value)` table, the input to dashboards
    /// and the metrics database.
    pub fn fom_table(&self) -> Vec<(String, String, String)> {
        self.results
            .iter()
            .flat_map(|r| {
                r.foms
                    .iter()
                    .map(|f| (r.experiment.clone(), f.name.clone(), f.value.clone()))
            })
            .collect()
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&format!(
                "{} [{}:{}] — {:?}{}\n",
                r.experiment,
                r.application,
                r.workload,
                r.status,
                if r.cached { " [cached]" } else { "" }
            ));
            for fom in &r.foms {
                out.push_str(&format!("    {} = {} {}\n", fom.name, fom.value, fom.units));
            }
        }
        out
    }
}

/// Analyzes one experiment's captured output.
pub fn analyze_experiment(
    exp: &ExperimentInstance,
    app: &ApplicationDef,
    output: &RunOutput,
) -> Result<ExperimentResult, RambleError> {
    analyze_experiment_with(exp, app, output, &[])
}

/// Like [`analyze_experiment`], with extra criteria from `ramble.yaml`
/// (experiment-specific evaluation, §4.5).
pub fn analyze_experiment_with(
    exp: &ExperimentInstance,
    app: &ApplicationDef,
    output: &RunOutput,
    extra_criteria: &[benchpark_pkg::SuccessCriterion],
) -> Result<ExperimentResult, RambleError> {
    // --- figures of merit: regex per line, all matches collected -----------
    let mut foms = Vec::new();
    for fom in &app.figures_of_merit {
        let re = Regex::new(&fom.fom_regex)
            .map_err(|e| RambleError::Regex(format!("{}/{}: {e}", app.name, fom.name)))?;
        for line in output.stdout.lines() {
            if let Some(caps) = re.captures(line) {
                if let Some(m) = caps.name(&fom.group_name) {
                    let mut context = BTreeMap::new();
                    for group in caps.group_names() {
                        if group != fom.group_name {
                            if let Some(gm) = caps.name(group) {
                                context.insert(group.to_string(), gm.text.to_string());
                            }
                        }
                    }
                    foms.push(FomValue {
                        name: fom.name.clone(),
                        value: m.text.to_string(),
                        units: fom.units.clone(),
                        context,
                    });
                }
            }
        }
    }

    // --- success criteria ----------------------------------------------------
    let mut criteria = Vec::new();
    let mut all_passed = true;
    for crit in app.success_criteria.iter().chain(extra_criteria) {
        let passed = match crit.mode {
            SuccessMode::StringMatch => {
                let re = Regex::new(&crit.match_expr)
                    .map_err(|e| RambleError::Regex(format!("{}/{}: {e}", app.name, crit.name)))?;
                output.stdout.lines().any(|line| re.is_match(line))
            }
            SuccessMode::FomComparison => evaluate_fom_comparison(&crit.match_expr, &foms)?,
        };
        all_passed &= passed;
        criteria.push((crit.name.clone(), passed));
    }

    let status = if output.exit_code != 0 {
        ExperimentStatus::JobError
    } else if all_passed {
        ExperimentStatus::Success
    } else {
        ExperimentStatus::Failed
    };

    Ok(ExperimentResult {
        experiment: exp.name.clone(),
        application: exp.application.clone(),
        workload: exp.workload.clone(),
        status,
        foms,
        criteria,
        variables: exp.variables.clone(),
        profile: output.profile.clone(),
        cached: false,
    })
}

/// Evaluates `"<fom_name> <op> <number>"` against the extracted FOMs
/// (`mode='fom_comparison'`). Every instance of the named FOM must satisfy
/// the comparison; a missing FOM fails.
fn evaluate_fom_comparison(expr: &str, foms: &[FomValue]) -> Result<bool, RambleError> {
    let parts: Vec<&str> = expr.split_whitespace().collect();
    let [name, op, value] = parts.as_slice() else {
        return Err(RambleError::Config(format!(
            "fom_comparison must be `<fom> <op> <number>`, got {expr:?}"
        )));
    };
    let threshold: f64 = value
        .parse()
        .map_err(|_| RambleError::Config(format!("bad comparison constant in {expr:?}")))?;
    let values: Vec<f64> = foms
        .iter()
        .filter(|f| f.name == *name)
        .filter_map(FomValue::as_f64)
        .collect();
    if values.is_empty() {
        return Ok(false);
    }
    let check = |v: f64| match *op {
        ">" => v > threshold,
        ">=" => v >= threshold,
        "<" => v < threshold,
        "<=" => v <= threshold,
        "==" => (v - threshold).abs() < f64::EPSILON,
        _ => false,
    };
    if !matches!(*op, ">" | ">=" | "<" | "<=" | "==") {
        return Err(RambleError::Config(format!(
            "unknown comparison operator in {expr:?}"
        )));
    }
    Ok(values.into_iter().all(check))
}
