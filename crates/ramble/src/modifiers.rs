//! Experiment modifiers (paper §3.2: *"abstract modifiers for changing the
//! behavior of the experiments in repeatable ways"*; §4.5: *"Ramble also
//! provides the modifier construct to capture architecture-specific FOMs"*).

use crate::expgen::ExperimentInstance;

/// A repeatable transformation applied to every generated experiment.
#[derive(Debug, Clone)]
pub enum Modifier {
    /// Enables always-on Caliper profiling (§5): sets `CALI_CONFIG` so each
    /// run emits a profile next to its output.
    Caliper,
    /// Exports an extra environment variable.
    EnvVar(String, String),
    /// Overrides (or injects) a variable.
    SetVariable(String, String),
    /// Appends a suffix to every experiment name (e.g. a trial tag).
    NameSuffix(String),
}

impl Modifier {
    /// Applies the modifier to one experiment.
    pub fn apply(&self, exp: &mut ExperimentInstance) {
        match self {
            Modifier::Caliper => {
                exp.env_vars.insert(
                    "CALI_CONFIG".to_string(),
                    "spot(output={experiment_run_dir}/{experiment_name}.cali)".to_string(),
                );
            }
            Modifier::EnvVar(k, v) => {
                exp.env_vars.insert(k.clone(), v.clone());
            }
            Modifier::SetVariable(k, v) => {
                exp.variables.insert(k.clone(), v.clone());
            }
            Modifier::NameSuffix(suffix) => {
                exp.name.push_str(suffix);
                exp.variables
                    .insert("experiment_name".to_string(), exp.name.clone());
            }
        }
    }
}
