//! Tests for expansion, experiment generation, the workspace workflow, and
//! analysis.

use crate::{
    expand, generate_experiments, ExperimentStatus, Modifier, RambleConfig, RunOutput, Workspace,
};
use benchpark_concretizer::SiteConfig;
use benchpark_pkg::{AppRepo, Repo};
use benchpark_spack::InstallOptions;
use std::collections::BTreeMap;

fn vars(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Figure 10's ramble.yaml, verbatim.
const FIG10: &str = r#"ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  config:
    deprecated: true
    spack_flags:
      install: '--add --keep-stage'
      concretize: '-U -f'
  applications:
    saxpy:
      workloads:
        problem:
          env_vars:
            set:
              OMP_NUM_THREADS: '{n_threads}'
          variables:
            n_ranks: '8'
            batch_time: '120'
          experiments:
            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:
              variables:
                processes_per_node: ['8', '4']
                n_nodes: ['1', '2']
                n_threads: ['2', '4']
                n: ['512', '1024']
              matrices:
              - size_threads:
                - n
                - n_threads
  spack:
    packages:
      saxpy:
        spack_spec: saxpy@1.0.0 +openmp ^cmake@3.23.1
        compiler: default-compiler
      default-compiler:
        spack_spec: gcc@12.1.1
      default-mpi:
        spack_spec: mvapich2@2.3.7
    environments:
      saxpy:
        packages:
        - default-mpi
        - saxpy
"#;

/// Figure 12's variables.yaml, verbatim.
const FIG12: &str = r#"variables:
  mpi_command: 'srun -N {n_nodes} -n {n_ranks}'
  batch_submit: 'sbatch {execute_experiment}'
  batch_nodes: '#SBATCH -N {n_nodes}'
  batch_ranks: '#SBATCH -n {n_ranks}'
  batch_timeout: '#SBATCH -t {batch_time}:00'
  compilers: [gcc1211, intel202160classic]
"#;

// ---------------------------------------------------------------------------
// Variable expansion
// ---------------------------------------------------------------------------

#[test]
fn expand_basics() {
    let v = vars(&[("n", "512"), ("n_nodes", "2")]);
    assert_eq!(expand("saxpy -n {n}", &v).unwrap(), "saxpy -n 512");
    assert_eq!(expand("no vars", &v).unwrap(), "no vars");
    assert_eq!(expand("{n}{n_nodes}", &v).unwrap(), "5122");
}

#[test]
fn expand_recursive() {
    // Figure 12's mpi_command references experiment variables
    let v = vars(&[
        ("mpi_command", "srun -N {n_nodes} -n {n_ranks}"),
        ("n_nodes", "2"),
        ("n_ranks", "16"),
        ("launch", "{mpi_command} ./app"),
    ]);
    assert_eq!(expand("{launch}", &v).unwrap(), "srun -N 2 -n 16 ./app");
}

#[test]
fn expand_errors() {
    let v = vars(&[("a", "{b}"), ("b", "{a}")]);
    assert!(expand("{missing}", &v).is_err());
    assert!(expand("{a}", &v).is_err()); // cycle
    assert!(expand("{bad name}", &v).is_err());
}

#[test]
fn expand_reports_all_undefined_variables_at_once() {
    // regression: the old code failed on the first undefined reference, so
    // fixing a template was a one-error-per-run loop
    let v = vars(&[("n", "512"), ("launch", "{mpi_command} -x {omp_places}")]);
    let err = expand("run {n} {launch}", &v).unwrap_err().to_string();
    assert!(err.contains("undefined variables"), "{err}");
    assert!(err.contains("`mpi_command`"), "{err}");
    assert!(err.contains("`omp_places`"), "{err}");
    // a single miss keeps the singular message shape
    let err = expand("{missing} {n}", &v).unwrap_err().to_string();
    assert!(err.contains("undefined variable `missing`"), "{err}");
}

#[test]
fn expand_literal_braces() {
    let v = vars(&[("n", "5")]);
    assert_eq!(expand("{{literal}} {n}", &v).unwrap(), "{literal} 5");
}

#[test]
fn expand_deep_acyclic_chain_is_not_a_cycle() {
    // regression: a chain of nested references deeper than the pass budget
    // is acyclic and must still expand (the old code reported it as cyclic)
    let mut v = BTreeMap::new();
    for i in 0..40 {
        v.insert(format!("v{i}"), format!("{{v{}}}", i + 1));
    }
    v.insert("v40".to_string(), "done".to_string());
    assert_eq!(expand("{v0}", &v).unwrap(), "done");
}

#[test]
fn expand_cycle_error_names_the_cycle() {
    let v = vars(&[("a", "x {b}"), ("b", "y {c}"), ("c", "z {a}")]);
    let err = expand("{a}", &v).unwrap_err().to_string();
    assert!(err.contains("cyclic"), "{err}");
    assert!(err.contains("a -> b -> c -> a"), "{err}");
}

#[test]
fn expand_errors_do_not_leak_brace_sentinels() {
    // regression: after a pass protects `{{`/`}}` as \u{1}/\u{2} sentinels,
    // a later error used to embed the protected text verbatim
    let v = vars(&[("a", "{missing}")]);
    let err = expand("{{lit}} {a}", &v).unwrap_err().to_string();
    assert!(!err.contains('\u{1}') && !err.contains('\u{2}'), "{err:?}");
    assert!(err.contains("{lit}"), "{err}");

    let err = expand("{{x}} {bad name}", &v).unwrap_err().to_string();
    assert!(!err.contains('\u{1}') && !err.contains('\u{2}'), "{err:?}");
}

// ---------------------------------------------------------------------------
// Experiment generation (Figure 10 semantics)
// ---------------------------------------------------------------------------

/// The golden test: Figure 10 produces exactly 8 experiments with the
/// documented names.
#[test]
fn golden_fig10_expansion() {
    let config = RambleConfig::from_yaml(FIG10).unwrap();
    let workloads = &config.applications["saxpy"];
    let wl = &workloads["problem"];
    assert_eq!(wl.env_vars["OMP_NUM_THREADS"], "{n_threads}");
    let def = &wl.experiments[0];
    assert_eq!(
        def.name_template,
        "saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}"
    );
    assert_eq!(def.matrices.len(), 1);
    assert_eq!(def.matrices[0].0, "size_threads");

    let base = vars(&[("batch_time", "120")]);
    let exps = generate_experiments("saxpy", "problem", wl, def, &base).unwrap();
    assert_eq!(
        exps.len(),
        8,
        "matrix(2×2) × zip(2) must give 8 experiments"
    );

    let names: Vec<&str> = exps.iter().map(|e| e.name.as_str()).collect();
    for expected in [
        "saxpy_512_1_8_2",
        "saxpy_512_2_8_2",
        "saxpy_512_1_8_4",
        "saxpy_512_2_8_4",
        "saxpy_1024_1_8_2",
        "saxpy_1024_2_8_2",
        "saxpy_1024_1_8_4",
        "saxpy_1024_2_8_4",
    ] {
        assert!(
            names.contains(&expected),
            "missing {expected}; got {names:?}"
        );
    }

    // the zip ties processes_per_node to n_nodes: 8↔1, 4↔2
    for exp in &exps {
        let ppn = &exp.variables["processes_per_node"];
        let nodes = &exp.variables["n_nodes"];
        assert!(
            (ppn == "8" && nodes == "1") || (ppn == "4" && nodes == "2"),
            "zip broken: ppn={ppn} nodes={nodes}"
        );
        assert_eq!(exp.variables["n_ranks"], "8"); // workload scalar
        assert_eq!(exp.variables["application_name"], "saxpy");
        assert_eq!(exp.variables["workload_name"], "problem");
    }
}

#[test]
fn derived_n_ranks() {
    let config = RambleConfig::from_yaml(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e_{n_nodes}:\n              variables:\n                processes_per_node: '4'\n                n_nodes: ['1', '2']\n                n: '64'\n",
    )
    .unwrap();
    let wl = &config.applications["saxpy"]["problem"];
    let exps =
        generate_experiments("saxpy", "problem", wl, &wl.experiments[0], &BTreeMap::new()).unwrap();
    assert_eq!(exps.len(), 2);
    assert_eq!(exps[0].variables["n_ranks"], "4");
    assert_eq!(exps[1].variables["n_ranks"], "8");
}

#[test]
fn generation_errors() {
    let make = |yaml: &str| {
        let config = RambleConfig::from_yaml(yaml).unwrap();
        let wl = config.applications["saxpy"]["problem"].clone();
        generate_experiments(
            "saxpy",
            "problem",
            &wl,
            &wl.experiments[0],
            &BTreeMap::new(),
        )
    };

    // matrix over a scalar variable
    let err = make(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e_{n}:\n              variables:\n                n: '512'\n              matrices:\n              - m:\n                - n\n",
    )
    .unwrap_err();
    assert!(err.to_string().contains("must be a list"), "{err}");

    // zip length mismatch
    let err = make(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e_{a}_{b}:\n              variables:\n                a: ['1', '2']\n                b: ['1', '2', '3']\n",
    )
    .unwrap_err();
    assert!(err.to_string().contains("equal lengths"), "{err}");

    // duplicate names (template misses a varying variable)
    let err = make(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e_fixed:\n              variables:\n                a: ['1', '2']\n",
    )
    .unwrap_err();
    assert!(err.to_string().contains("duplicate name"), "{err}");

    // variable in two matrices
    let err = make(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e_{a}_{b}:\n              variables:\n                a: ['1', '2']\n                b: ['3', '4']\n              matrices:\n              - m1:\n                - a\n              - m2:\n                - a\n",
    )
    .unwrap_err();
    assert!(err.to_string().contains("more than one matrix"), "{err}");
}

#[test]
fn n_repeats_replicates_experiments() {
    let config = RambleConfig::from_yaml(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e_{n}:\n              n_repeats: '3'\n              variables:\n                n: ['64', '128']\n",
    )
    .unwrap();
    let wl = &config.applications["saxpy"]["problem"];
    assert_eq!(wl.experiments[0].n_repeats, 3);
    let exps =
        generate_experiments("saxpy", "problem", wl, &wl.experiments[0], &BTreeMap::new()).unwrap();
    assert_eq!(exps.len(), 6); // 2 sizes × 3 repeats
    let names: Vec<&str> = exps.iter().map(|e| e.name.as_str()).collect();
    for expected in [
        "e_64.1", "e_64.2", "e_64.3", "e_128.1", "e_128.2", "e_128.3",
    ] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
    assert_eq!(exps[0].variables["repeat_index"], "1");
    assert_eq!(exps[0].variables["experiment_name"], exps[0].name);

    // invalid values rejected
    assert!(RambleConfig::from_yaml(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e:\n              n_repeats: '0'\n",
    )
    .is_err());
    assert!(RambleConfig::from_yaml(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e:\n              n_repeats: 'lots'\n",
    )
    .is_err());
}

#[test]
fn two_matrices_cross() {
    let config = RambleConfig::from_yaml(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e_{a}_{b}:\n              variables:\n                a: ['1', '2']\n                b: ['3', '4', '5']\n              matrices:\n              - m1:\n                - a\n              - m2:\n                - b\n",
    )
    .unwrap();
    let wl = &config.applications["saxpy"]["problem"];
    let exps =
        generate_experiments("saxpy", "problem", wl, &wl.experiments[0], &BTreeMap::new()).unwrap();
    assert_eq!(exps.len(), 6); // 2 × 3
}

#[test]
fn resolved_spec_with_compiler_reference() {
    let config = RambleConfig::from_yaml(FIG10).unwrap();
    assert_eq!(
        config.resolved_spec("saxpy").unwrap(),
        "saxpy@1.0.0 +openmp ^cmake@3.23.1 %gcc@12.1.1"
    );
    assert_eq!(
        config.resolved_spec("default-mpi").unwrap(),
        "mvapich2@2.3.7"
    );
    assert!(config.resolved_spec("nope").is_err());
}

/// Figure 9: system spack.yaml provides named definitions the experiment
/// configuration references (`compiler: default-compiler`).
#[test]
fn golden_fig9_spack_yaml_merge() {
    let mut config = RambleConfig::from_yaml(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments: {}\n  spack:\n    packages:\n      saxpy:\n        spack_spec: saxpy@1.0.0 +openmp\n        compiler: default-compiler\n    environments:\n      saxpy:\n        packages: [default-mpi, saxpy]\n",
    )
    .unwrap();
    config
        .merge_spack_yaml(
            r#"spack:
  packages:
    default-compiler:
      spack_spec: gcc@12.1.1
    default-mpi:
      spack_spec: mvapich2@2.3.7-gcc12.1.1
    gcc1211:
      spack_spec: gcc@12.1.1
    lapack:
      spack_spec: intel-oneapi-mkl@2022.1.0
    mpi-compilers:
      spack_spec: mvapich2@2.3.7-compilers
"#,
        )
        .unwrap();
    assert_eq!(
        config.resolved_spec("saxpy").unwrap(),
        "saxpy@1.0.0 +openmp %gcc@12.1.1"
    );
    assert_eq!(
        config.resolved_spec("default-mpi").unwrap(),
        "mvapich2@2.3.7-gcc12.1.1"
    );
    assert_eq!(config.spack_packages.len(), 6);
}

#[test]
fn variables_yaml_merge() {
    let mut config = RambleConfig::from_yaml(FIG10).unwrap();
    config.merge_variables_yaml(FIG12).unwrap();
    assert_eq!(
        config.variables["mpi_command"],
        "srun -N {n_nodes} -n {n_ranks}"
    );
    assert_eq!(config.variables["batch_nodes"], "#SBATCH -N {n_nodes}");
    assert_eq!(config.compilers, vec!["gcc1211", "intel202160classic"]);
}

// ---------------------------------------------------------------------------
// Template rendering (Figure 13)
// ---------------------------------------------------------------------------

#[test]
fn golden_fig13_template_render() {
    let v = vars(&[
        ("batch_nodes", "#SBATCH -N 2"),
        ("batch_ranks", "#SBATCH -n 16"),
        (
            "experiment_run_dir",
            "/ws/experiments/saxpy/problem/saxpy_512_2_8_4",
        ),
        ("spack_setup", "# spack env"),
        ("command", "srun -N 2 -n 16 saxpy -n 512"),
    ]);
    let script = crate::render_template(crate::template::DEFAULT_TEMPLATE, &v).unwrap();
    assert_eq!(
        script,
        "#!/bin/bash\n#SBATCH -N 2\n#SBATCH -n 16\ncd /ws/experiments/saxpy/problem/saxpy_512_2_8_4\n# spack env\nsrun -N 2 -n 16 saxpy -n 512\n"
    );
}

// ---------------------------------------------------------------------------
// Workspace workflow (Figure 5)
// ---------------------------------------------------------------------------

fn temp_workspace(tag: &str) -> Workspace {
    let dir = std::env::temp_dir().join(format!(
        "benchpark-ramble-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Workspace::create(&dir).unwrap()
}

fn stub_runner(_exp: &crate::ExperimentInstance, script: &str) -> RunOutput {
    // succeed iff the script launches saxpy
    if script.contains("saxpy -n") {
        RunOutput {
            stdout: "Running saxpy\nKernel done\nKernel time (s): 0.001234\n".to_string(),
            exit_code: 0,
            profile: vec![("MPI_Bcast".to_string(), 0.0001)],
        }
    } else {
        RunOutput {
            stdout: "unexpected script\n".to_string(),
            exit_code: 1,
            profile: Vec::new(),
        }
    }
}

#[test]
fn golden_fig5_workspace_workflow() {
    let repo = Repo::builtin();
    let apps = AppRepo::builtin();
    let site = SiteConfig::example_cts();

    // 1. ramble workspace create
    let mut ws = temp_workspace("fig5");
    assert!(ws.root().join("configs").is_dir());
    assert!(ws.root().join("experiments").is_dir());

    // 2. ramble workspace edit
    ws.set_config(FIG10).unwrap();
    ws.merge_variables(FIG12).unwrap();

    // 3. ramble workspace setup
    let report = ws
        .setup(&repo, &apps, &site, &InstallOptions::default())
        .unwrap();
    assert_eq!(report.experiments.len(), 8);
    // software was built through Spack
    let env_reports = &report.install_reports["saxpy"];
    assert!(!env_reports.is_empty());
    assert_eq!(
        report.environment_specs["saxpy"],
        vec![
            "mvapich2@2.3.7".to_string(),
            "saxpy@1.0.0 +openmp ^cmake@3.23.1 %gcc@12.1.1".to_string()
        ]
    );
    // scripts rendered with srun + SBATCH directives from Figure 12
    let script = ws.script("saxpy_512_2_8_4").unwrap();
    assert!(script.contains("#SBATCH -N 2"), "{script}");
    assert!(script.contains("#SBATCH -n 8"), "{script}");
    assert!(script.contains("export OMP_NUM_THREADS=4"), "{script}");
    assert!(script.contains("srun -N 2 -n 8 saxpy -n 512"), "{script}");
    // script file exists on disk
    assert!(ws
        .root()
        .join("experiments/saxpy/problem/saxpy_512_2_8_4/execute_experiment")
        .is_file());

    // 4. ramble on
    ws.run_with(stub_runner).unwrap();
    assert!(ws
        .root()
        .join("experiments/saxpy/problem/saxpy_512_1_8_2/saxpy_512_1_8_2.out")
        .is_file());

    // 5. ramble workspace analyze
    let analysis = ws.analyze(&apps).unwrap();
    assert_eq!(analysis.results.len(), 8);
    assert_eq!(analysis.successes().count(), 8);
    let result = analysis.get("saxpy_512_1_8_2").unwrap();
    assert_eq!(result.status, ExperimentStatus::Success);
    // Figure 8's FOMs extracted
    let success_fom = result.foms.iter().find(|f| f.name == "success").unwrap();
    assert_eq!(success_fom.value, "Kernel done");
    let time_fom = result
        .foms
        .iter()
        .find(|f| f.name == "kernel_time")
        .unwrap();
    assert_eq!(time_fom.value, "0.001234");
    assert_eq!(time_fom.units, "s");
    // variables stored with results (§5 reproducibility goal)
    assert_eq!(result.variables["n"], "512");
    assert!(result.criteria.iter().any(|(n, ok)| n == "pass" && *ok));
}

#[test]
fn phases_enforced() {
    let repo = Repo::builtin();
    let apps = AppRepo::builtin();
    let mut ws = temp_workspace("phases");
    // setup before set_config
    assert!(ws
        .setup(
            &repo,
            &apps,
            &SiteConfig::example_cts(),
            &InstallOptions::default()
        )
        .is_err());
    // run before setup
    assert!(ws.run_with(stub_runner).is_err());
    // analyze before run
    ws.set_config(FIG10).unwrap();
    ws.merge_variables(FIG12).unwrap();
    ws.setup(
        &repo,
        &apps,
        &SiteConfig::example_cts(),
        &InstallOptions::default(),
    )
    .unwrap();
    assert!(ws.analyze(&apps).is_err());
}

#[test]
fn failed_criterion_reported() {
    let repo = Repo::builtin();
    let apps = AppRepo::builtin();
    let mut ws = temp_workspace("fail");
    ws.set_config(FIG10).unwrap();
    ws.merge_variables(FIG12).unwrap();
    ws.setup(
        &repo,
        &apps,
        &SiteConfig::example_cts(),
        &InstallOptions::default(),
    )
    .unwrap();
    // runner whose output lacks "Kernel done"
    ws.run_with(|_, _| RunOutput {
        stdout: "something went wrong\n".to_string(),
        exit_code: 0,
        profile: Vec::new(),
    })
    .unwrap();
    let analysis = ws.analyze(&apps).unwrap();
    assert_eq!(analysis.successes().count(), 0);
    assert!(analysis
        .results
        .iter()
        .all(|r| r.status == ExperimentStatus::Failed));
}

#[test]
fn job_error_reported() {
    let repo = Repo::builtin();
    let apps = AppRepo::builtin();
    let mut ws = temp_workspace("joberr");
    ws.set_config(FIG10).unwrap();
    ws.merge_variables(FIG12).unwrap();
    ws.setup(
        &repo,
        &apps,
        &SiteConfig::example_cts(),
        &InstallOptions::default(),
    )
    .unwrap();
    ws.run_with(|_, _| RunOutput {
        stdout: "Kernel done\n".to_string(),
        exit_code: 132,
        profile: Vec::new(),
    })
    .unwrap();
    let analysis = ws.analyze(&apps).unwrap();
    assert!(analysis
        .results
        .iter()
        .all(|r| r.status == ExperimentStatus::JobError));
}

#[test]
fn modifiers_apply() {
    let repo = Repo::builtin();
    let apps = AppRepo::builtin();
    let mut ws = temp_workspace("mods");
    ws.set_config(FIG10).unwrap();
    ws.merge_variables(FIG12).unwrap();
    ws.add_modifier(Modifier::Caliper);
    ws.add_modifier(Modifier::EnvVar("MY_FLAG".to_string(), "1".to_string()));
    ws.setup(
        &repo,
        &apps,
        &SiteConfig::example_cts(),
        &InstallOptions::default(),
    )
    .unwrap();
    let script = ws.script("saxpy_512_1_8_2").unwrap();
    assert!(script.contains("export CALI_CONFIG=spot"), "{script}");
    assert!(script.contains("export MY_FLAG=1"), "{script}");
}

/// §4.5: success criteria can be defined "for individual experiments in
/// ramble.yaml", in addition to application.py.
#[test]
fn ramble_yaml_success_criteria() {
    let yaml = r#"ramble:
  applications:
    saxpy:
      workloads:
        problem:
          variables:
            n_ranks: '4'
            n_nodes: '1'
            batch_time: '10'
          success_criteria:
          - name: fast_enough
            mode: fom_comparison
            match: kernel_time < 0.01
          - name: no_warnings
            mode: string
            match: Kernel done
          experiments:
            saxpy_{n}:
              variables:
                n: '64'
  spack:
    packages:
      saxpy:
        spack_spec: saxpy@1.0.0 +openmp
        compiler: default-compiler
      default-compiler:
        spack_spec: gcc@12.1.1
    environments:
      saxpy:
        packages: [saxpy]
"#;
    let repo = Repo::builtin();
    let apps = AppRepo::builtin();
    let run = |stdout: &str| {
        let mut ws = temp_workspace("yamlcrit");
        ws.set_config(yaml).unwrap();
        ws.merge_variables(FIG12).unwrap();
        ws.setup(
            &repo,
            &apps,
            &SiteConfig::example_cts(),
            &InstallOptions::default(),
        )
        .unwrap();
        let out = stdout.to_string();
        ws.run_with(move |_, _| RunOutput {
            stdout: out.clone(),
            exit_code: 0,
            profile: Vec::new(),
        })
        .unwrap();
        ws.analyze(&apps).unwrap()
    };

    // fast run: all criteria (app-level + ramble.yaml-level) pass
    let analysis = run("Kernel done\nKernel time (s): 0.000500\n");
    let result = &analysis.results[0];
    assert_eq!(result.status, ExperimentStatus::Success, "{result:?}");
    assert_eq!(result.criteria.len(), 3); // pass + fast_enough + no_warnings
    assert!(result.criteria.iter().all(|(_, ok)| *ok));

    // slow run: the fom_comparison criterion fails, experiment is Failed
    let analysis = run("Kernel done\nKernel time (s): 0.500000\n");
    let result = &analysis.results[0];
    assert_eq!(result.status, ExperimentStatus::Failed);
    let fast = result
        .criteria
        .iter()
        .find(|(n, _)| n == "fast_enough")
        .unwrap();
    assert!(!fast.1);

    // criteria with bad config are rejected at parse time
    assert!(RambleConfig::from_yaml(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          success_criteria:\n          - name: x\n            mode: bogus\n            match: y\n",
    )
    .is_err());
}

#[test]
fn caliper_modifier_writes_profiles() {
    let repo = Repo::builtin();
    let apps = AppRepo::builtin();
    let mut ws = temp_workspace("cali");
    ws.set_config(FIG10).unwrap();
    ws.merge_variables(FIG12).unwrap();
    ws.add_modifier(Modifier::Caliper);
    ws.setup(
        &repo,
        &apps,
        &SiteConfig::example_cts(),
        &InstallOptions::default(),
    )
    .unwrap();
    ws.run_with(stub_runner).unwrap();
    let cali = ws
        .root()
        .join("experiments/saxpy/problem/saxpy_512_1_8_2/saxpy_512_1_8_2.cali");
    assert!(cali.is_file(), "caliper profile must be written");
    let text = std::fs::read_to_string(cali).unwrap();
    assert!(text.contains("MPI_Bcast"), "{text}");
}

#[test]
fn workspace_archive() {
    let repo = Repo::builtin();
    let apps = AppRepo::builtin();
    let mut ws = temp_workspace("archive");
    ws.set_config(FIG10).unwrap();
    ws.merge_variables(FIG12).unwrap();
    ws.setup(
        &repo,
        &apps,
        &SiteConfig::example_cts(),
        &InstallOptions::default(),
    )
    .unwrap();
    // archive before run is a phase error
    let dest = std::env::temp_dir().join(format!("benchpark-archive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dest);
    assert!(ws.archive(&dest).is_err());

    ws.run_with(stub_runner).unwrap();
    let copied = ws.archive(&dest).unwrap();
    // configs (3: ramble.yaml, variables.yaml, + template absent by default)
    // plus 2 files per experiment (script + out)
    assert!(copied >= 2 + 8 * 2, "copied {copied}");
    assert!(dest.join("MANIFEST").is_file());
    assert!(dest.join("configs/ramble.yaml").is_file());
    assert!(dest
        .join("experiments/saxpy_512_1_8_2/saxpy_512_1_8_2.out")
        .is_file());
    let manifest = std::fs::read_to_string(dest.join("MANIFEST")).unwrap();
    assert!(manifest.contains("experiments/saxpy_512_1_8_2/execute_experiment"));
}

#[test]
fn analyze_fom_table() {
    let repo = Repo::builtin();
    let apps = AppRepo::builtin();
    let mut ws = temp_workspace("table");
    ws.set_config(FIG10).unwrap();
    ws.merge_variables(FIG12).unwrap();
    ws.setup(
        &repo,
        &apps,
        &SiteConfig::example_cts(),
        &InstallOptions::default(),
    )
    .unwrap();
    ws.run_with(stub_runner).unwrap();
    let analysis = ws.analyze(&apps).unwrap();
    let table = analysis.fom_table();
    // 8 experiments × 2 FOMs
    assert_eq!(table.len(), 16);
    let rendered = analysis.render();
    assert!(rendered.contains("saxpy_512_1_8_2"));
    assert!(rendered.contains("kernel_time = 0.001234 s"));
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Matrix/zip cardinality: |experiments| = Π|matrix vars| × zip len.
        #[test]
        fn expansion_cardinality(
            m1 in 1usize..4,
            m2 in 1usize..4,
            zip in 1usize..4,
        ) {
            let list = |n: usize, prefix: &str| -> String {
                let items: Vec<String> = (0..n).map(|i| format!("'{prefix}{i}'")).collect();
                format!("[{}]", items.join(", "))
            };
            let yaml = format!(
                "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e_{{a}}_{{b}}_{{z}}:\n              variables:\n                a: {}\n                b: {}\n                z: {}\n              matrices:\n              - m:\n                - a\n                - b\n",
                list(m1, "a"), list(m2, "b"), list(zip, "z"),
            );
            let config = RambleConfig::from_yaml(&yaml).unwrap();
            let wl = &config.applications["saxpy"]["problem"];
            let exps = generate_experiments(
                "saxpy", "problem", wl, &wl.experiments[0], &BTreeMap::new()).unwrap();
            prop_assert_eq!(exps.len(), m1 * m2 * zip);
            // all names unique
            let names: std::collections::BTreeSet<_> = exps.iter().map(|e| &e.name).collect();
            prop_assert_eq!(names.len(), exps.len());
        }

        /// expand is total on templates without `{` and idempotent on
        /// expanded output.
        #[test]
        fn expand_plain_text_identity(text in "[a-zA-Z0-9 ./_-]{0,40}") {
            let v = BTreeMap::new();
            prop_assert_eq!(expand(&text, &v).unwrap(), text);
        }
    }
}
