//! Ramble error type.

use std::fmt;

/// Errors across the workspace lifecycle.
#[derive(Debug)]
pub enum RambleError {
    /// Malformed `ramble.yaml` or `variables.yaml`.
    Config(String),
    /// Variable expansion failed (unknown variable, cycle).
    Expansion(String),
    /// Experiment generation failed (zip length mismatch, matrix misuse).
    Generation(String),
    /// Software environment could not be built.
    Software(String),
    /// A FOM regex failed to compile.
    Regex(String),
    /// Filesystem trouble in the workspace directory.
    Io(std::io::Error),
    /// Operation requires an earlier phase (`setup` before `on`…).
    Phase(String),
}

impl fmt::Display for RambleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RambleError::Config(m) => write!(f, "configuration error: {m}"),
            RambleError::Expansion(m) => write!(f, "variable expansion error: {m}"),
            RambleError::Generation(m) => write!(f, "experiment generation error: {m}"),
            RambleError::Software(m) => write!(f, "software environment error: {m}"),
            RambleError::Regex(m) => write!(f, "figure-of-merit regex error: {m}"),
            RambleError::Io(e) => write!(f, "workspace i/o error: {e}"),
            RambleError::Phase(m) => write!(f, "workflow phase error: {m}"),
        }
    }
}

impl std::error::Error for RambleError {}

impl From<std::io::Error> for RambleError {
    fn from(e: std::io::Error) -> Self {
        RambleError::Io(e)
    }
}

impl From<benchpark_yamlite::ParseError> for RambleError {
    fn from(e: benchpark_yamlite::ParseError) -> Self {
        RambleError::Config(e.to_string())
    }
}
