//! `benchpark-ramble` — the experimentation framework (paper §3.2).
//!
//! Ramble is *"a Python experimentation framework enabling the creation of
//! large sets of experiments with concise YAML files"*. This crate
//! reimplements the workflow of Figure 5 over the same file formats:
//!
//! * [`Workspace::create`] — `ramble workspace create`: a self-contained
//!   directory with `configs/`, `experiments/`, `software/`, `logs/`.
//! * [`Workspace::set_config`] — `ramble workspace edit`: installs the
//!   `ramble.yaml` (Figure 10 parses verbatim) and the
//!   `execute_experiment.tpl` template (Figure 13).
//! * [`Workspace::setup`] — `ramble workspace setup`: expands **variables**
//!   (`{var}` substitution, recursive), **zips** (list variables of equal
//!   length advance together), and **matrices** (cross products, Figure 10's
//!   `size_threads`) into concrete experiments; renders a batch script per
//!   experiment; builds the software environments through the Spack
//!   substrate (§3.2.3: *"Installing any required software with Spack"*).
//! * [`Workspace::run_with`] — `ramble on`: executes every rendered script
//!   through a pluggable runner (the simulated cluster, in Benchpark's case)
//!   and captures stdout into `{experiment_run_dir}/{experiment_name}.out`.
//! * [`Workspace::analyze`] — `ramble workspace analyze`: applies each
//!   application's FOM regexes and success criteria (Figure 8) to the
//!   captured output and produces structured results.
//!
//! Experiment-name templates (`saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}`)
//! and the matrix semantics reproduce Figure 10's eight generated
//! experiments exactly — see `tests::golden_fig10_expansion`.

mod analyze;
mod error;
mod expand;
mod expgen;
mod modifiers;
mod rconfig;
mod template;
mod workspace;

pub use analyze::{
    analyze_experiment, analyze_experiment_with, AnalyzeReport, ExperimentResult, ExperimentStatus,
    FomValue,
};
pub use error::RambleError;
pub use expand::expand;
pub use expgen::{generate_experiments, ExperimentInstance, WORKSPACE_LOCAL_VARIABLES};
pub use modifiers::Modifier;
pub use rconfig::{
    EnvironmentDef, ExperimentDef, RambleConfig, SpackPackageDef, VarValue, WorkloadConfig,
};
pub use template::render_template;

/// The default batch template (Figure 13), re-exported for writers of
/// workspace skeletons.
pub fn template_default() -> &'static str {
    template::DEFAULT_TEMPLATE
}
pub use workspace::{RunOutput, SetupReport, Workspace};

#[cfg(test)]
mod tests;
