//! One experiment request, as submitted by a tenant.

use benchpark_core::FingerprintBuilder;
use std::path::PathBuf;

/// A tenant's request for one experiment run — the unit the submission
/// queue admits and the scheduler picks.
///
/// The line format (replay files, the `submit` subcommand, the spool) is
///
/// ```text
/// <tenant> <benchmark>/<variant> <system> [faults] [template=PATH]
/// ```
///
/// with `#`-comments and blank lines ignored. `faults` activates the demo
/// fault plan (see [`crate::demo_fault_plan`]); `template=PATH` substitutes
/// a user-supplied `ramble.yaml` for the built-in experiment template (the
/// §4 customization path). The template text is read at admission time, so
/// a request in the queue is self-contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentRequest {
    /// Submitting tenant (a fork, a team, a bot) — lowercase
    /// `[a-z0-9_-]+`.
    pub tenant: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Experiment variant (programming model).
    pub variant: String,
    /// Target system profile.
    pub system: String,
    /// Run under the demo transient-fault plan.
    pub faults: bool,
    /// Template path as written in the request line, for provenance.
    pub template_path: Option<PathBuf>,
    /// Resolved template text (filled in at admission).
    pub template: Option<String>,
}

impl ExperimentRequest {
    /// A plain request for a built-in experiment.
    pub fn new(tenant: &str, benchmark: &str, variant: &str, system: &str) -> ExperimentRequest {
        ExperimentRequest {
            tenant: tenant.to_string(),
            benchmark: benchmark.to_string(),
            variant: variant.to_string(),
            system: system.to_string(),
            faults: false,
            template_path: None,
            template: None,
        }
    }

    /// Parses one request line. Returns `Ok(None)` for blank lines and
    /// `#`-comments; `Err` describes the malformation.
    pub fn parse_line(line: &str) -> Result<Option<ExperimentRequest>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut tokens = line.split_whitespace();
        let tenant = tokens.next().expect("non-empty line has a first token");
        let experiment = tokens
            .next()
            .ok_or("missing experiment (want `<tenant> <benchmark>/<variant> <system>`)")?;
        let (benchmark, variant) = experiment
            .split_once('/')
            .ok_or_else(|| format!("experiment `{experiment}` must be <benchmark>/<variant>"))?;
        let system = tokens
            .next()
            .ok_or("missing system (want `<tenant> <benchmark>/<variant> <system>`)")?;
        let mut request = ExperimentRequest::new(tenant, benchmark, variant, system);
        for token in tokens {
            if token == "faults" {
                request.faults = true;
            } else if let Some(path) = token.strip_prefix("template=") {
                request.template_path = Some(PathBuf::from(path));
            } else {
                return Err(format!(
                    "unknown request option `{token}` (want `faults` or `template=PATH`)"
                ));
            }
        }
        Ok(Some(request))
    }

    /// Renders the request back to its line form (what `submit` appends to
    /// the spool). Round-trips through [`ExperimentRequest::parse_line`].
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "{} {}/{} {}",
            self.tenant, self.benchmark, self.variant, self.system
        );
        if self.faults {
            line.push_str(" faults");
        }
        if let Some(path) = &self.template_path {
            line.push_str(&format!(" template={}", path.display()));
        }
        line
    }

    /// A tenant-independent key for what this request *runs* — benchmark,
    /// variant, system, fault plan, and template content hash. Two requests
    /// with equal spec keys generate identical workspaces (in different
    /// directories), so their experiment fingerprints are equal: the
    /// daemon's memo fastpath keys on this.
    pub fn spec_key(&self) -> String {
        let template_hash = FingerprintBuilder::new()
            .field("template", self.template.as_deref().unwrap_or(""))
            .finish();
        format!(
            "{}/{}@{}|faults={}|tpl={}",
            self.benchmark, self.variant, self.system, self.faults, template_hash
        )
    }
}
