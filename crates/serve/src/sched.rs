//! Deficit round-robin tenant fairness.

use crate::queue::{QueueConfig, QueuedRequest, SubmissionQueue};
use std::collections::BTreeMap;

/// Deficit round-robin over tenant queues (Shreedhar & Varghese '95, with
/// unit-cost requests). Each [`DrrScheduler::next_batch`] round visits the
/// waiting tenants in name order, tops up each tenant's deficit counter by
/// the quantum, and picks FIFO while the deficit lasts — capped by the
/// per-tenant in-flight limit, with any unspent deficit carried to the next
/// round. A tenant whose queue empties forfeits its deficit (no banking
/// credit while idle), so a returning flood starts from the same footing as
/// everyone else.
///
/// The pick sequence is a pure function of queue state: the same
/// submissions always drain in the same batches, whatever `--jobs` count
/// executes them.
pub struct DrrScheduler {
    quantum: u64,
    max_inflight: usize,
    deficits: BTreeMap<String, u64>,
}

impl DrrScheduler {
    /// A scheduler with `config`'s quantum and in-flight cap.
    pub fn new(config: &QueueConfig) -> DrrScheduler {
        DrrScheduler {
            quantum: config.quantum.max(1),
            max_inflight: config.max_inflight_per_tenant.max(1),
            deficits: BTreeMap::new(),
        }
    }

    /// One DRR round: the next batch of requests to run concurrently.
    /// Empty when nothing is queued.
    pub fn next_batch(&mut self, queue: &mut SubmissionQueue) -> Vec<QueuedRequest> {
        let mut batch = Vec::new();
        for tenant in queue.waiting_tenants() {
            let deficit = self.deficits.entry(tenant.clone()).or_insert(0);
            *deficit += self.quantum;
            let mut picked = 0usize;
            while *deficit >= 1 && picked < self.max_inflight {
                let Some(request) = queue.pop_front(&tenant) else {
                    break;
                };
                *deficit -= 1;
                picked += 1;
                batch.push(request);
            }
            if queue.depth(&tenant) == 0 {
                self.deficits.remove(&tenant);
            }
        }
        batch
    }

    /// The carried deficit for `tenant` (zero when idle). Test hook.
    pub fn deficit(&self, tenant: &str) -> u64 {
        self.deficits.get(tenant).copied().unwrap_or(0)
    }
}
