//! The serve daemon: intake → fair scheduling → pooled execution →
//! sharded commit.

use crate::queue::{QueuedRequest, RejectReason, SubmissionQueue};
use crate::report::{fom_transcript, RejectionRecord, ServeReport};
use crate::request::ExperimentRequest;
use crate::sched::DrrScheduler;
use crate::slo::SloSpec;
use crate::status::{write_atomic, StageHists, StatusSnapshot};
use crate::window::{CompletionEvent, RollingWindows};
use benchpark_cluster::{FaultPlan, TransientFault};
use benchpark_core::{
    append_run, shard_path, Benchpark, CollectedRun, FingerprintIndex, RequestTrace, RunSpec,
    ShardedLedger, SystemProfile,
};
use benchpark_engine::{Engine, FailurePolicy, TaskGraph, TaskStatus};
use benchpark_obs::{prometheus_text, Timebase};
use benchpark_ramble::{ExperimentResult, ExperimentStatus};
use benchpark_telemetry::{TelemetryReport, TelemetrySink};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Daemon configuration: the service root directory, queue quotas, and the
/// worker-pool width.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Service root. Shards live under `<root>/ledger/<tenant>/<system>.jsonl`,
    /// workspaces under `<root>/work/`, FOM transcripts under `<root>/foms/`,
    /// the Prometheus snapshot at `<root>/metrics.prom`.
    pub root: PathBuf,
    /// Admission-control quotas and scheduler parameters.
    pub queue: crate::queue::QueueConfig,
    /// Worker-pool width for each scheduler batch.
    pub jobs: usize,
    /// Declarative SLO targets (`--slo FILE`); verdicts land in the status
    /// snapshot.
    pub slo: Option<SloSpec>,
    /// Where to write the live status snapshot after every drain round
    /// (`--status-out PATH`). The final snapshot always lands at
    /// `<root>/status.json` regardless.
    pub status_out: Option<PathBuf>,
}

impl ServeConfig {
    /// Defaults: default quotas, one worker, no SLOs.
    pub fn new(root: impl AsRef<Path>) -> ServeConfig {
        ServeConfig {
            root: root.as_ref().to_path_buf(),
            queue: crate::queue::QueueConfig::default(),
            jobs: 1,
            slo: None,
            status_out: None,
        }
    }
}

/// The demo transient-fault plan a `faults` request token activates: flaky
/// binary-cache fetches plus an all-but-one node failure mid-drain (the
/// same plan `benchpark trace --faults` uses). Seeded, so deterministic.
pub fn demo_fault_plan(system: &str) -> Result<FaultPlan, String> {
    let nodes = SystemProfile::by_name(system)
        .ok_or_else(|| format!("unknown system `{system}`"))?
        .machine()
        .nodes
        .saturating_sub(1);
    Ok(FaultPlan::new(2023)
        .with(TransientFault::FlakyCacheFetch { rate: 1.0 })
        .with(TransientFault::NodeFailureAt { at_s: 0.25, nodes })
        .with_budget(12))
}

enum Outcome {
    /// Memo fastpath: every experiment spliced from the tenant's index
    /// without touching a workspace.
    Fast(Vec<ExperimentResult>),
    /// Ran through the staged pipeline.
    Ran(Box<CollectedRun>, Option<TelemetryReport>),
    /// The pipeline errored.
    Failed(String),
}

/// Virtual execution ticks for one request: the rounded sum of the
/// *stable* virtual durations in its telemetry report. Only spans that set
/// a non-volatile virtual duration contribute (the cluster scheduler's
/// simulated makespan does; wall-clock-derived spans do not), so the result
/// is identical at any worker count — and inflates deterministically when a
/// seeded fault plan extends the simulated schedule.
fn execute_ticks(report: Option<&TelemetryReport>) -> u64 {
    let Some(report) = report else { return 0 };
    report
        .spans
        .iter()
        .filter(|span| !span.virtual_volatile)
        .filter_map(|span| span.virtual_seconds)
        .sum::<f64>()
        .round() as u64
}

/// The multi-tenant daemon: owns the submission queue, the scheduler, the
/// per-tenant fingerprint indexes over the sharded ledger, and the drain
/// loop. Everything is deterministic in the submission sequence — batch
/// composition, shard contents, and FOM transcripts are identical at any
/// `jobs` count.
pub struct ServeDaemon {
    config: ServeConfig,
    telemetry: TelemetrySink,
    queue: SubmissionQueue,
    sched: DrrScheduler,
    /// Per-tenant fingerprint index over that tenant's ledger shards only:
    /// one tenant's measurements never satisfy another tenant's lookups.
    indexes: BTreeMap<String, FingerprintIndex>,
    /// Spec-key → per-experiment fingerprints of a fully successful run.
    /// Lets a repeat submission skip workspace setup entirely when the
    /// submitting tenant's index already holds every fingerprint.
    memo: BTreeMap<String, Vec<(String, String)>>,
    foms: BTreeMap<String, String>,
    report: ServeReport,
    /// Rolling tick windows feeding the SLO evaluator and status snapshot.
    windows: RollingWindows,
    /// Stage-latency histograms, mirrored into the telemetry sink as
    /// `serve.stage.*` / `serve.tenant.<t>.*` histogram families.
    hists: StageHists,
}

impl ServeDaemon {
    /// Opens the service root: discovers existing ledger shards and builds
    /// each tenant's fingerprint index from its own shards.
    pub fn new(config: ServeConfig) -> Result<ServeDaemon, String> {
        let telemetry = TelemetrySink::recording();
        let sharded = ShardedLedger::load(&config.root.join("ledger"), &telemetry)?;
        let mut indexes = BTreeMap::new();
        for tenant in sharded.tenant_names() {
            indexes.insert(
                tenant.to_string(),
                FingerprintIndex::from_ledger(&sharded.tenant_view(tenant)),
            );
        }
        let queue = SubmissionQueue::new(config.queue.clone(), telemetry.clone());
        let sched = DrrScheduler::new(&config.queue);
        Ok(ServeDaemon {
            config,
            telemetry,
            queue,
            sched,
            indexes,
            memo: BTreeMap::new(),
            foms: BTreeMap::new(),
            report: ServeReport::default(),
            windows: RollingWindows::default(),
            hists: StageHists::default(),
        })
    }

    /// The daemon's telemetry sink (`serve.*` counters live here).
    pub fn telemetry(&self) -> TelemetrySink {
        self.telemetry.clone()
    }

    /// The running report.
    pub fn report(&self) -> &ServeReport {
        &self.report
    }

    /// Submits one request programmatically. Returns the tenant-FIFO
    /// sequence number on admission.
    pub fn submit(&mut self, request: ExperimentRequest) -> Result<u64, String> {
        self.submit_at(request, 0)
    }

    fn submit_at(&mut self, request: ExperimentRequest, line: usize) -> Result<u64, String> {
        let tick = self.queue.tick();
        match self.queue.admit(request) {
            Ok(seq) => {
                self.report.admitted += 1;
                self.windows.record_submit(tick);
                Ok(seq)
            }
            Err(e) => {
                self.reject(line, e.tenant.clone(), &e.reason);
                Err(e.to_string())
            }
        }
    }

    fn reject(&mut self, line: usize, tenant: String, reason: &RejectReason) {
        self.windows.record_reject(self.queue.tick(), reason.code());
        if !matches!(
            reason,
            RejectReason::BadTenant { .. } | RejectReason::BadRequest { .. }
        ) {
            self.report
                .tenants
                .entry(tenant.clone())
                .or_default()
                .rejected += 1;
        }
        self.report.rejected += 1;
        self.report.rejections.push(RejectionRecord {
            line,
            tenant,
            code: reason.code().to_string(),
            detail: reason.to_string(),
        });
    }

    /// Processes a whole replay/spool text, line by line: parse, resolve
    /// `template=PATH` (relative paths resolve against `base`), admit.
    /// Rejections — including parse failures and unreadable templates —
    /// land in the report's rejection roll; intake never aborts.
    pub fn intake_text(&mut self, text: &str, base: &Path) {
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let mut request = match ExperimentRequest::parse_line(raw) {
                Ok(None) => continue,
                Ok(Some(request)) => request,
                Err(detail) => {
                    let tenant = raw.split_whitespace().next().unwrap_or("-").to_string();
                    let reason = RejectReason::BadRequest { detail };
                    self.telemetry.incr("serve.rejected", 1);
                    self.telemetry
                        .incr(&format!("serve.rejected.{}", reason.code()), 1);
                    self.reject(line_no, tenant, &reason);
                    continue;
                }
            };
            if let Some(path) = request.template_path.clone() {
                let resolved = if path.is_absolute() {
                    path.clone()
                } else {
                    base.join(&path)
                };
                match std::fs::read_to_string(&resolved) {
                    Ok(text) => request.template = Some(text),
                    Err(e) => {
                        let reason = RejectReason::TemplateUnreadable {
                            path: path.display().to_string(),
                            error: e.to_string(),
                        };
                        self.telemetry.incr("serve.rejected", 1);
                        self.telemetry
                            .incr(&format!("serve.rejected.{}", reason.code()), 1);
                        self.reject(line_no, request.tenant.clone(), &reason);
                        continue;
                    }
                }
            }
            let _ = self.submit_at(request, line_no);
        }
    }

    /// Drains the queue to empty: repeated DRR rounds, each fanned out over
    /// the engine pool, each committed (shards, indexes, transcripts) in
    /// pick order. Then flushes the per-tenant FOM transcripts and the
    /// Prometheus snapshot under the root.
    pub fn drain(&mut self) -> Result<&ServeReport, String> {
        let start = std::time::Instant::now();
        while !self.queue.is_empty() {
            // every request picked this round waited until the same tick
            let pick_tick = self.queue.tick();
            let batch = self.sched.next_batch(&mut self.queue);
            if batch.is_empty() {
                return Err("scheduler made no progress with a non-empty queue".to_string());
            }
            self.report.batches += 1;
            self.telemetry.incr("serve.batches", 1);
            self.run_batch(batch, pick_tick)?;
            self.queue.advance_tick(1);
            // sample the depth every drain tick, not just on queue churn —
            // the gauge must show the queue reaching empty
            self.telemetry
                .observe("serve.queue.depth", self.queue.len() as f64);
            self.windows.roll_to(self.queue.tick());
            if let Some(path) = self.config.status_out.clone() {
                self.write_status(&path)?;
            }
        }
        self.report.elapsed_s += start.elapsed().as_secs_f64();
        self.flush()?;
        Ok(&self.report)
    }

    /// The current status snapshot (tick clock, stage latencies, windows,
    /// SLO verdicts).
    pub fn status(&self) -> StatusSnapshot {
        StatusSnapshot::build(
            self.queue.tick(),
            &self.report,
            &self.hists,
            &self.windows,
            self.config.slo.as_ref(),
        )
    }

    fn write_status(&self, path: &Path) -> Result<(), String> {
        write_atomic(path, &self.status().to_json())
    }

    fn fastpath_results(&self, picked: &QueuedRequest) -> Option<Vec<ExperimentResult>> {
        let fingerprints = self.memo.get(&picked.request.spec_key())?;
        let index = self.indexes.get(&picked.request.tenant)?;
        let mut results = Vec::with_capacity(fingerprints.len());
        for (_experiment, fp) in fingerprints {
            let entry = index.lookup_hex(fp)?;
            let mut result = entry.result.clone();
            result.cached = true;
            results.push(result);
        }
        Some(results)
    }

    fn run_batch(&mut self, batch: Vec<QueuedRequest>, pick_tick: u64) -> Result<(), String> {
        // Phase 1 — memo fastpath: repeat submissions whose fingerprints all
        // resolve against the submitting tenant's index skip setup outright.
        let mut outcomes: Vec<Option<Outcome>> = batch.iter().map(|_| None).collect();
        let mut pool: Vec<usize> = Vec::new();
        for (idx, picked) in batch.iter().enumerate() {
            match self.fastpath_results(picked) {
                Some(results) => outcomes[idx] = Some(Outcome::Fast(results)),
                None => pool.push(idx),
            }
        }

        // Phase 2 — fan the rest out over the engine pool. Each request gets
        // its own driver, workspace directory, and recording sink; the
        // tenant's index snapshot (as of batch start) serves cache lookups.
        if !pool.is_empty() {
            let mut graph = TaskGraph::new();
            for &idx in &pool {
                let picked = &batch[idx];
                let id = graph
                    .add_task(
                        &format!(
                            "{}#{}:{}/{}@{}",
                            picked.request.tenant,
                            picked.tenant_seq,
                            picked.request.benchmark,
                            picked.request.variant,
                            picked.request.system
                        ),
                        idx,
                        1.0,
                    )
                    .map_err(|e| e.to_string())?;
                graph.set_policy(id, FailurePolicy::AllowFailure);
            }
            let indexes = &self.indexes;
            let config = &self.config;
            let engine_report = Engine::new(self.config.jobs)
                .run_pool(&graph, |task, _ctx| {
                    let picked = &batch[task.payload];
                    let req = &picked.request;
                    let sink = TelemetrySink::recording();
                    // the request's trace context roots this run's span tree;
                    // every field is a pure function of the intake sequence
                    let ctx = picked.ctx();
                    let span = sink.span("serve.request");
                    span.set_attr("tenant", &ctx.tenant);
                    span.set_attr("request_id", ctx.request_id);
                    span.set_attr("spec_key", &ctx.spec_key);
                    span.set_attr("submit_tick", ctx.submit_tick);
                    let mut benchpark = Benchpark::new().with_telemetry(sink.clone()).with_jobs(1);
                    if req.faults {
                        benchpark = benchpark.with_fault_plan(demo_fault_plan(&req.system)?);
                    }
                    let workdir = config
                        .root
                        .join("work")
                        .join(&req.tenant)
                        .join(format!("req-{:06}", picked.intake_seq));
                    let mut spec =
                        RunSpec::new(&req.benchmark, &req.variant, &req.system, &workdir);
                    if let Some(template) = &req.template {
                        spec = spec.with_template(template.clone());
                    }
                    let collected =
                        benchpark.run_request(&spec, indexes.get(&req.tenant), false)?;
                    drop(span); // close serve.request before snapshotting
                    let report = sink.report();
                    Ok((Box::new(collected), report))
                })
                .map_err(|e| e.to_string())?;
            // `run_pool` reports tasks in insertion order — the `pool` order.
            for (task, &slot) in engine_report.tasks.into_iter().zip(&pool) {
                let outcome = match task.status {
                    TaskStatus::Success => {
                        let (collected, report) = task.output.expect("successful task has output");
                        Outcome::Ran(collected, report)
                    }
                    _ => Outcome::Failed(task.error.unwrap_or_else(|| "skipped".to_string())),
                };
                outcomes[slot] = Some(outcome);
            }
        }

        // Phase 3 — commit in pick order: transcripts, shard appends, index
        // and memo updates. Serialized, so shard sequence numbers, stage
        // ticks, and per-tenant FIFO are exact whatever the pool width was.
        for (idx, picked) in batch.iter().enumerate() {
            let outcome = outcomes[idx]
                .take()
                .expect("every batch entry has an outcome");
            self.commit(picked, outcome, pick_tick, idx as u64)?;
        }
        Ok(())
    }

    /// Stamps one committed request's stage latencies everywhere they are
    /// observable: the daemon's own histograms (status snapshot), the
    /// telemetry sink's histogram families (Prometheus exposition), a
    /// `serve.request` span on the daemon's span tree, and the rolling
    /// windows (SLO horizons). Returns the trace for the ledger record.
    fn stamp_stages(
        &mut self,
        picked: &QueuedRequest,
        pick_tick: u64,
        batch_idx: u64,
        execute: u64,
        event: CompletionEvent,
    ) -> RequestTrace {
        let ctx = picked.ctx();
        let queue_wait = pick_tick.saturating_sub(ctx.submit_tick);
        let schedule = batch_idx;
        let commit = batch_idx + 1;
        if !event.failed {
            self.hists
                .record(&ctx.tenant, queue_wait, schedule, execute, commit);
            for (stage, ticks) in [
                ("queue_wait", queue_wait),
                ("schedule", schedule),
                ("execute", execute),
                ("commit", commit),
            ] {
                self.telemetry
                    .record_hist(&format!("serve.stage.{stage}"), ticks);
            }
            self.telemetry.record_hist(
                &format!("serve.tenant.{}.queue_wait", ctx.tenant),
                queue_wait,
            );
            self.telemetry
                .record_hist(&format!("serve.tenant.{}.execute", ctx.tenant), execute);
        }
        let span = self.telemetry.span("serve.request");
        span.set_attr("tenant", &ctx.tenant);
        span.set_attr("request_id", ctx.request_id);
        span.set_attr("submit_tick", ctx.submit_tick);
        span.set_attr("queue_wait_ticks", queue_wait);
        span.set_attr("schedule_ticks", schedule);
        span.set_attr("execute_ticks", execute);
        span.set_attr("commit_ticks", commit);
        span.set_virtual((queue_wait + schedule + execute + commit) as f64);
        drop(span);
        self.windows.record_complete(
            pick_tick,
            CompletionEvent {
                queue_wait_ticks: queue_wait,
                execute_ticks: execute,
                ..event
            },
        );
        RequestTrace {
            tenant: ctx.tenant,
            request_id: ctx.request_id,
            submit_tick: ctx.submit_tick,
            queue_wait_ticks: queue_wait,
            schedule_ticks: schedule,
            execute_ticks: execute,
            commit_ticks: commit,
        }
    }

    fn commit(
        &mut self,
        picked: &QueuedRequest,
        outcome: Outcome,
        pick_tick: u64,
        batch_idx: u64,
    ) -> Result<(), String> {
        let req = &picked.request;
        let tenant = req.tenant.clone();
        let header = format!(
            "=== {}#{} {}/{} @ {}\n",
            tenant, picked.tenant_seq, req.benchmark, req.variant, req.system
        );
        match outcome {
            Outcome::Fast(results) => {
                let transcript = self.foms.entry(tenant.clone()).or_default();
                transcript.push_str(&header);
                transcript.push_str(&fom_transcript(&results));
                transcript.push('\n');
                let stats = self.report.tenants.entry(tenant.clone()).or_default();
                stats.submitted += 1;
                stats.completed += 1;
                stats.fastpath += 1;
                stats.cached += results.len() as u64;
                self.report.completed += 1;
                self.report.fastpath += 1;
                self.report.experiments_cached += results.len() as u64;
                self.telemetry.incr("serve.completed", 1);
                self.telemetry.incr("serve.fastpath", 1);
                self.telemetry
                    .incr("serve.experiments.cached", results.len() as u64);
                self.telemetry
                    .incr(&format!("serve.tenant.{tenant}.completed"), 1);
                self.stamp_stages(
                    picked,
                    pick_tick,
                    batch_idx,
                    0, // fastpath splices touch no cluster: zero execute ticks
                    CompletionEvent {
                        fastpath: true,
                        cached: results.len() as u64,
                        ..CompletionEvent::default()
                    },
                );
            }
            Outcome::Ran(collected, tel_report) => {
                let transcript = self.foms.entry(tenant.clone()).or_default();
                transcript.push_str(&header);
                transcript.push_str(&fom_transcript(&collected.results));
                transcript.push('\n');
                let fresh = collected.executed.len() as u64;
                let cached = collected.cached() as u64;
                let stats = self.report.tenants.entry(tenant.clone()).or_default();
                stats.submitted += 1;
                stats.completed += 1;
                stats.fresh += fresh;
                stats.cached += cached;
                self.report.completed += 1;
                self.report.experiments_fresh += fresh;
                self.report.experiments_cached += cached;
                self.telemetry.incr("serve.completed", 1);
                self.telemetry.incr("serve.experiments.fresh", fresh);
                self.telemetry.incr("serve.experiments.cached", cached);
                self.telemetry
                    .incr(&format!("serve.tenant.{tenant}.completed"), 1);
                let trace = self.stamp_stages(
                    picked,
                    pick_tick,
                    batch_idx,
                    execute_ticks(tel_report.as_ref()),
                    CompletionEvent {
                        fresh,
                        cached,
                        ..CompletionEvent::default()
                    },
                );
                if let Some(record) = collected.to_record(tel_report.as_ref()) {
                    let mut record = record.with_request(trace);
                    let path =
                        shard_path(&self.config.root.join("ledger"), &tenant, &collected.system);
                    if let Some(parent) = path.parent() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| format!("cannot create shard dir: {e}"))?;
                    }
                    append_run(&path, &mut record)?;
                    self.indexes
                        .entry(tenant.clone())
                        .or_default()
                        .index_run(&record);
                }
                if collected
                    .results
                    .iter()
                    .all(|r| r.status == ExperimentStatus::Success)
                {
                    let fingerprints: Option<Vec<(String, String)>> = collected
                        .results
                        .iter()
                        .map(|r| {
                            collected
                                .fingerprints
                                .get(&r.experiment)
                                .map(|fp| (r.experiment.clone(), fp.hex()))
                        })
                        .collect();
                    if let Some(fingerprints) = fingerprints {
                        self.memo.insert(req.spec_key(), fingerprints);
                    }
                }
            }
            Outcome::Failed(error) => {
                let stats = self.report.tenants.entry(tenant.clone()).or_default();
                stats.submitted += 1;
                stats.failed += 1;
                self.report.failed += 1;
                self.report.failures.push((
                    format!(
                        "{}#{} {}/{} @ {}",
                        tenant, picked.tenant_seq, req.benchmark, req.variant, req.system
                    ),
                    error,
                ));
                self.telemetry.incr("serve.failed", 1);
                self.telemetry
                    .incr(&format!("serve.tenant.{tenant}.failed"), 1);
                self.stamp_stages(
                    picked,
                    pick_tick,
                    batch_idx,
                    0,
                    CompletionEvent {
                        failed: true,
                        ..CompletionEvent::default()
                    },
                );
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), String> {
        let foms_dir = self.config.root.join("foms");
        std::fs::create_dir_all(&foms_dir).map_err(|e| format!("cannot create foms dir: {e}"))?;
        for (tenant, transcript) in &self.foms {
            std::fs::write(foms_dir.join(format!("{tenant}.txt")), transcript)
                .map_err(|e| format!("cannot write FOM transcript: {e}"))?;
        }
        if let Some(report) = self.telemetry.report() {
            let prom = prometheus_text(&report, Timebase::Canonical);
            std::fs::write(self.config.root.join("metrics.prom"), prom)
                .map_err(|e| format!("cannot write metrics.prom: {e}"))?;
        }
        // the final snapshot always lands under the root (what `benchpark
        // status <root>` reads), plus wherever --status-out pointed
        self.write_status(&self.config.root.join("status.json"))?;
        if let Some(path) = self.config.status_out.clone() {
            self.write_status(&path)?;
        }
        Ok(())
    }
}
