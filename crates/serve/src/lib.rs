//! `benchpark-serve` — the paper's Figure 6 loop as a standing service.
//!
//! The one-shot `benchpark trace` driver runs one experiment batch and
//! exits: one tenant per process. Collaborative continuous benchmarking
//! (§6, "millions of users") is a *service* — many forks push experiment
//! requests, CI runners fan out, and a shared metrics database accumulates.
//! This crate re-platforms the driver as a multi-tenant daemon:
//!
//! * [`SubmissionQueue`] — file- or stdin-driven request intake with
//!   deterministic FIFO-within-tenant ordering and admission control:
//!   per-tenant and global queue quotas reject over-limit submissions with
//!   typed [`RejectReason`]s, surfaced as `serve.rejected.*` counters and a
//!   `serve.queue.depth` gauge (backpressure the submitter can see).
//! * [`DrrScheduler`] — deficit round-robin fairness across tenants: each
//!   drain round visits tenants in name order, tops up a per-tenant deficit
//!   by a fixed quantum, and picks FIFO up to the per-tenant in-flight cap.
//!   A flood from one tenant cannot starve the others, and the pick
//!   sequence is a pure function of queue state — identical at any
//!   `--jobs` count.
//! * [`ServeDaemon`] — the drain loop: each batch fans out over the shared
//!   `benchpark-engine` worker pool (one staged
//!   setup → execute → collect run per request, via
//!   [`benchpark_core::Benchpark::run_request`]), then commits outcomes in
//!   pick order: one schema-3 JSONL ledger shard per tenant/system under
//!   `<root>/ledger/`, per-tenant fingerprint indexes (a tenant's cache
//!   hits resolve against that tenant's shards only), and per-tenant FOM
//!   transcripts that are byte-identical to the same requests run serially
//!   through the one-shot path.
//! * [`ServeReport`] — throughput, fingerprint hit rate, rejection and
//!   failure rolls, per-tenant stats; rendered human-readable or as JSON
//!   for the CI artifact.
//! * **Service observability** — every admission mints a [`RequestCtx`]
//!   (tenant, request id, spec key, submit tick) against the queue's
//!   virtual clock; commits stamp queue-wait / schedule / execute / commit
//!   ticks onto the span tree, into `serve.stage.*` histogram families,
//!   into the schema-3 ledger trace, and into [`RollingWindows`] whose
//!   fast/slow burn horizons feed a declarative [`SloSpec`]. The daemon
//!   writes a [`StatusSnapshot`] (`status.json`, rendered by `benchpark
//!   status`) atomically after every drain round — all of it in virtual
//!   ticks, so snapshots are byte-identical at any `--jobs` count.
//!
//! No network: requests arrive as replay files or a spool directory (see
//! `docs/SERVICE.md`), which keeps the daemon deterministic and testable —
//! the stress harness replays 1000+ requests and byte-compares the result
//! against the serial driver.

mod daemon;
mod queue;
mod report;
mod request;
mod sched;
mod slo;
mod status;
mod window;

pub use daemon::{demo_fault_plan, ServeConfig, ServeDaemon};
pub use queue::{
    AdmitError, QueueConfig, QueuedRequest, RejectReason, RequestCtx, SubmissionQueue,
};
pub use report::{fom_transcript, RejectionRecord, ServeReport, TenantStats};
pub use request::ExperimentRequest;
pub use sched::DrrScheduler;
pub use slo::{SloMetric, SloOp, SloSpec, SloTarget, SloVerdict, Verdict};
pub use status::{
    write_atomic, SloStatus, StageHists, StageLatency, StatusSnapshot, TenantStatus, WindowStatus,
};
pub use window::{CompletionEvent, RollingWindows, WindowConfig, WindowSummary};

#[cfg(test)]
mod tests;
