//! The daemon's live status snapshot: per-tenant stage latencies, rolling
//! windows, and SLO verdicts, serialized deterministically.
//!
//! `benchpark serve --status-out PATH` writes a snapshot atomically
//! (temp-file + rename, so a concurrent reader never sees a torn file)
//! after every drain round, and a final one lands at `<root>/status.json`
//! on flush; `benchpark status <root>` renders either without touching the
//! daemon. Every number in the snapshot derives from virtual ticks or
//! commit-order tallies — never wall clocks — so `--jobs 1` and `--jobs 8`
//! drains of the same submissions write byte-identical files.

use crate::report::ServeReport;
use crate::slo::{SloSpec, SloVerdict, Verdict};
use crate::window::RollingWindows;
use benchpark_telemetry::HistogramStats;
use benchpark_yamlite::{emit_json, parse_json, Map, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// The daemon's in-memory stage-latency accumulators: one histogram per
/// pipeline stage, plus per-tenant queue-wait/execute pairs. Mirrors what
/// the telemetry sink holds under `serve.stage.*` / `serve.tenant.*` names,
/// kept separately so snapshot construction does not clone the telemetry
/// journal every drain round.
#[derive(Debug, Clone, Default)]
pub struct StageHists {
    /// Ticks between admission and DRR pick.
    pub queue_wait: HistogramStats,
    /// Dispatch offset within the picked batch.
    pub schedule: HistogramStats,
    /// Virtual execution ticks.
    pub execute: HistogramStats,
    /// Position in the serialized commit sequence.
    pub commit: HistogramStats,
    /// Per-tenant `(queue_wait, execute)` histograms.
    pub tenants: BTreeMap<String, (HistogramStats, HistogramStats)>,
}

impl StageHists {
    /// Records one committed request's stage latencies.
    pub fn record(
        &mut self,
        tenant: &str,
        queue_wait: u64,
        schedule: u64,
        execute: u64,
        commit: u64,
    ) {
        self.queue_wait.record(queue_wait);
        self.schedule.record(schedule);
        self.execute.record(execute);
        self.commit.record(commit);
        let (tenant_wait, tenant_execute) = self.tenants.entry(tenant.to_string()).or_default();
        tenant_wait.record(queue_wait);
        tenant_execute.record(execute);
    }
}

/// Latency quantiles for one stage, in virtual ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageLatency {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
    /// Sample count.
    pub count: u64,
}

impl StageLatency {
    /// Derives the quantile summary from a histogram.
    pub fn from_hist(hist: &HistogramStats) -> StageLatency {
        StageLatency {
            p50: hist.quantile(0.50),
            p95: hist.quantile(0.95),
            p99: hist.quantile(0.99),
            max: hist.max,
            count: hist.count,
        }
    }
}

/// One tenant's row in the status table.
#[derive(Debug, Clone, Default)]
pub struct TenantStatus {
    /// Tenant name.
    pub name: String,
    /// Requests admitted.
    pub submitted: u64,
    /// Requests refused.
    pub rejected: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests failed.
    pub failed: u64,
    /// Experiments measured fresh.
    pub fresh: u64,
    /// Experiments spliced from caches.
    pub cached: u64,
    /// Memo-fastpath completions.
    pub fastpath: u64,
    /// Queue-wait quantiles.
    pub queue_wait: StageLatency,
    /// Execute quantiles.
    pub execute: StageLatency,
}

/// One rolling window's row.
#[derive(Debug, Clone, Default)]
pub struct WindowStatus {
    /// Window ordinal.
    pub index: u64,
    /// First covered tick.
    pub start_tick: u64,
    /// One past the last covered tick.
    pub end_tick: u64,
    /// Admissions in the window.
    pub submitted: u64,
    /// Rejections in the window (all codes).
    pub rejected: u64,
    /// Completions in the window.
    pub completed: u64,
    /// Failures in the window.
    pub failed: u64,
    /// Completions per tick.
    pub throughput: f64,
    /// Cached / all experiments.
    pub hit_rate: f64,
    /// Rejected / arrived.
    pub reject_rate: f64,
    /// Queue-wait quantiles inside the window.
    pub queue_wait: StageLatency,
    /// Execute quantiles inside the window.
    pub execute: StageLatency,
}

/// One SLO verdict row.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The target as written (`p99_queue_wait <= 2048`).
    pub target: String,
    /// Metric value over the fast horizon.
    pub fast: f64,
    /// Metric value over the slow horizon.
    pub slow: f64,
    /// `PASS` / `WARN` / `FAIL`.
    pub verdict: String,
}

/// The full snapshot.
#[derive(Debug, Clone, Default)]
pub struct StatusSnapshot {
    /// Queue virtual-clock tick at snapshot time.
    pub tick: u64,
    /// Window width in ticks.
    pub window_width: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests refused.
    pub rejected: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests failed.
    pub failed: u64,
    /// DRR rounds executed.
    pub batches: u64,
    /// Memo-fastpath completions.
    pub fastpath: u64,
    /// Experiments measured fresh.
    pub experiments_fresh: u64,
    /// Experiments spliced from caches.
    pub experiments_cached: u64,
    /// Global stage quantiles, in pipeline order.
    pub stages: Vec<(String, StageLatency)>,
    /// Per-tenant rows, by name.
    pub tenants: Vec<TenantStatus>,
    /// Retained windows, oldest first.
    pub windows: Vec<WindowStatus>,
    /// SLO verdicts (empty without `--slo`).
    pub slo: Vec<SloStatus>,
}

impl StatusSnapshot {
    /// Builds a snapshot from the daemon's live state.
    pub fn build(
        tick: u64,
        report: &ServeReport,
        hists: &StageHists,
        windows: &RollingWindows,
        slo: Option<&SloSpec>,
    ) -> StatusSnapshot {
        let stages = vec![
            (
                "queue_wait".to_string(),
                StageLatency::from_hist(&hists.queue_wait),
            ),
            (
                "schedule".to_string(),
                StageLatency::from_hist(&hists.schedule),
            ),
            (
                "execute".to_string(),
                StageLatency::from_hist(&hists.execute),
            ),
            ("commit".to_string(), StageLatency::from_hist(&hists.commit)),
        ];
        // union of tallied and latency-bearing tenants, name order
        let mut names: Vec<&String> = report.tenants.keys().collect();
        for name in hists.tenants.keys() {
            if !report.tenants.contains_key(name) {
                names.push(name);
            }
        }
        names.sort();
        let empty = (HistogramStats::default(), HistogramStats::default());
        let tenants = names
            .into_iter()
            .map(|name| {
                let stats = report.tenants.get(name).cloned().unwrap_or_default();
                let (wait, execute) = hists.tenants.get(name).unwrap_or(&empty);
                TenantStatus {
                    name: name.clone(),
                    submitted: stats.submitted,
                    rejected: stats.rejected,
                    completed: stats.completed,
                    failed: stats.failed,
                    fresh: stats.fresh,
                    cached: stats.cached,
                    fastpath: stats.fastpath,
                    queue_wait: StageLatency::from_hist(wait),
                    execute: StageLatency::from_hist(execute),
                }
            })
            .collect();
        let window_rows = windows
            .views()
            .into_iter()
            .map(|w| WindowStatus {
                index: w.index,
                start_tick: w.start_tick,
                end_tick: w.end_tick,
                submitted: w.submitted,
                rejected: w.rejected_total(),
                completed: w.completed,
                failed: w.failed,
                throughput: w.throughput(),
                hit_rate: w.hit_rate(),
                reject_rate: w.reject_rate(),
                queue_wait: StageLatency::from_hist(&w.queue_wait),
                execute: StageLatency::from_hist(&w.execute),
            })
            .collect();
        let verdicts = slo
            .map(|spec| {
                let slow = windows.slow();
                spec.evaluate(windows.fast(), &slow)
            })
            .unwrap_or_default();
        StatusSnapshot {
            tick,
            window_width: windows.config().width_ticks,
            admitted: report.admitted,
            rejected: report.rejected,
            completed: report.completed,
            failed: report.failed,
            batches: report.batches,
            fastpath: report.fastpath,
            experiments_fresh: report.experiments_fresh,
            experiments_cached: report.experiments_cached,
            stages,
            tenants,
            windows: window_rows,
            slo: verdicts
                .into_iter()
                .map(|v: SloVerdict| SloStatus {
                    target: v.target,
                    fast: v.fast,
                    slow: v.slow,
                    verdict: v.verdict.as_str().to_string(),
                })
                .collect(),
        }
    }

    /// Fraction of experiments satisfied from fingerprint caches.
    pub fn hit_rate(&self) -> f64 {
        let total = self.experiments_fresh + self.experiments_cached;
        if total == 0 {
            return 0.0;
        }
        self.experiments_cached as f64 / total as f64
    }

    /// True when any target's verdict is `FAIL` (`benchpark status
    /// --check` exits non-zero on this).
    pub fn has_failing_slo(&self) -> bool {
        self.slo
            .iter()
            .any(|s| Verdict::parse(&s.verdict) == Some(Verdict::Fail))
    }

    /// Serializes the snapshot as canonical JSON (fixed field order,
    /// deterministic number formatting).
    pub fn to_json(&self) -> String {
        let lat = |l: &StageLatency| {
            let mut m = Map::new();
            m.insert("p50", Value::Int(l.p50 as i64));
            m.insert("p95", Value::Int(l.p95 as i64));
            m.insert("p99", Value::Int(l.p99 as i64));
            m.insert("max", Value::Int(l.max as i64));
            m.insert("count", Value::Int(l.count as i64));
            Value::Map(m)
        };
        let mut root = Map::new();
        root.insert("schema", Value::Int(1));
        root.insert("tick", Value::Int(self.tick as i64));
        root.insert("window_width_ticks", Value::Int(self.window_width as i64));
        let mut totals = Map::new();
        totals.insert("admitted", Value::Int(self.admitted as i64));
        totals.insert("rejected", Value::Int(self.rejected as i64));
        totals.insert("completed", Value::Int(self.completed as i64));
        totals.insert("failed", Value::Int(self.failed as i64));
        totals.insert("batches", Value::Int(self.batches as i64));
        totals.insert("fastpath", Value::Int(self.fastpath as i64));
        totals.insert(
            "experiments_fresh",
            Value::Int(self.experiments_fresh as i64),
        );
        totals.insert(
            "experiments_cached",
            Value::Int(self.experiments_cached as i64),
        );
        totals.insert("hit_rate", Value::Float(self.hit_rate()));
        root.insert("totals", Value::Map(totals));
        let mut stages = Map::new();
        for (name, latency) in &self.stages {
            stages.insert(name, lat(latency));
        }
        root.insert("stages", Value::Map(stages));
        let mut tenants = Map::new();
        for t in &self.tenants {
            let mut m = Map::new();
            m.insert("submitted", Value::Int(t.submitted as i64));
            m.insert("rejected", Value::Int(t.rejected as i64));
            m.insert("completed", Value::Int(t.completed as i64));
            m.insert("failed", Value::Int(t.failed as i64));
            m.insert("fresh", Value::Int(t.fresh as i64));
            m.insert("cached", Value::Int(t.cached as i64));
            m.insert("fastpath", Value::Int(t.fastpath as i64));
            m.insert("queue_wait", lat(&t.queue_wait));
            m.insert("execute", lat(&t.execute));
            tenants.insert(&t.name, Value::Map(m));
        }
        root.insert("tenants", Value::Map(tenants));
        let windows = self
            .windows
            .iter()
            .map(|w| {
                let mut m = Map::new();
                m.insert("index", Value::Int(w.index as i64));
                m.insert("start_tick", Value::Int(w.start_tick as i64));
                m.insert("end_tick", Value::Int(w.end_tick as i64));
                m.insert("submitted", Value::Int(w.submitted as i64));
                m.insert("rejected", Value::Int(w.rejected as i64));
                m.insert("completed", Value::Int(w.completed as i64));
                m.insert("failed", Value::Int(w.failed as i64));
                m.insert("throughput", Value::Float(w.throughput));
                m.insert("hit_rate", Value::Float(w.hit_rate));
                m.insert("reject_rate", Value::Float(w.reject_rate));
                m.insert("queue_wait", lat(&w.queue_wait));
                m.insert("execute", lat(&w.execute));
                Value::Map(m)
            })
            .collect();
        root.insert("windows", Value::Seq(windows));
        let slo = self
            .slo
            .iter()
            .map(|s| {
                let mut m = Map::new();
                m.insert("target", Value::str(s.target.clone()));
                m.insert("fast", Value::Float(s.fast));
                m.insert("slow", Value::Float(s.slow));
                m.insert("verdict", Value::str(s.verdict.clone()));
                Value::Map(m)
            })
            .collect();
        root.insert("slo", Value::Seq(slo));
        emit_json(&Value::Map(root))
    }

    /// Parses a snapshot back from its JSON form (`benchpark status`).
    pub fn parse(text: &str) -> Result<StatusSnapshot, String> {
        let doc = parse_json(text)?;
        let int = |value: Option<&Value>, what: &str| -> Result<u64, String> {
            let n = value
                .and_then(Value::as_int)
                .ok_or_else(|| format!("status snapshot lacks `{what}`"))?;
            if n < 0 {
                return Err(format!("status `{what}` is negative"));
            }
            Ok(n as u64)
        };
        let float = |value: Option<&Value>, what: &str| -> Result<f64, String> {
            value
                .and_then(Value::as_float)
                .ok_or_else(|| format!("status snapshot lacks `{what}`"))
        };
        let lat = |value: Option<&Value>, what: &str| -> Result<StageLatency, String> {
            let map = value.ok_or_else(|| format!("status snapshot lacks `{what}`"))?;
            Ok(StageLatency {
                p50: int(map.get("p50"), "p50")?,
                p95: int(map.get("p95"), "p95")?,
                p99: int(map.get("p99"), "p99")?,
                max: int(map.get("max"), "max")?,
                count: int(map.get("count"), "count")?,
            })
        };
        let schema = int(doc.get("schema"), "schema")?;
        if schema != 1 {
            return Err(format!("unknown status schema version {schema}"));
        }
        let totals = doc.get("totals").ok_or("status snapshot lacks `totals`")?;
        let mut stages = Vec::new();
        if let Some(map) = doc.get("stages").and_then(Value::as_map) {
            // preserve pipeline order, not map order
            for name in ["queue_wait", "schedule", "execute", "commit"] {
                if let Some(value) = map.get(name) {
                    stages.push((name.to_string(), lat(Some(value), name)?));
                }
            }
        }
        let mut tenants = Vec::new();
        if let Some(map) = doc.get("tenants").and_then(Value::as_map) {
            for (name, t) in map.iter() {
                tenants.push(TenantStatus {
                    name: name.clone(),
                    submitted: int(t.get("submitted"), "submitted")?,
                    rejected: int(t.get("rejected"), "rejected")?,
                    completed: int(t.get("completed"), "completed")?,
                    failed: int(t.get("failed"), "failed")?,
                    fresh: int(t.get("fresh"), "fresh")?,
                    cached: int(t.get("cached"), "cached")?,
                    fastpath: int(t.get("fastpath"), "fastpath")?,
                    queue_wait: lat(t.get("queue_wait"), "queue_wait")?,
                    execute: lat(t.get("execute"), "execute")?,
                });
            }
        }
        let mut windows = Vec::new();
        if let Some(items) = doc.get("windows").and_then(Value::as_seq) {
            for w in items {
                windows.push(WindowStatus {
                    index: int(w.get("index"), "index")?,
                    start_tick: int(w.get("start_tick"), "start_tick")?,
                    end_tick: int(w.get("end_tick"), "end_tick")?,
                    submitted: int(w.get("submitted"), "submitted")?,
                    rejected: int(w.get("rejected"), "rejected")?,
                    completed: int(w.get("completed"), "completed")?,
                    failed: int(w.get("failed"), "failed")?,
                    throughput: float(w.get("throughput"), "throughput")?,
                    hit_rate: float(w.get("hit_rate"), "hit_rate")?,
                    reject_rate: float(w.get("reject_rate"), "reject_rate")?,
                    queue_wait: lat(w.get("queue_wait"), "queue_wait")?,
                    execute: lat(w.get("execute"), "execute")?,
                });
            }
        }
        let mut slo = Vec::new();
        if let Some(items) = doc.get("slo").and_then(Value::as_seq) {
            for s in items {
                slo.push(SloStatus {
                    target: s
                        .get("target")
                        .and_then(Value::as_str)
                        .ok_or("slo entry lacks `target`")?
                        .to_string(),
                    fast: float(s.get("fast"), "fast")?,
                    slow: float(s.get("slow"), "slow")?,
                    verdict: s
                        .get("verdict")
                        .and_then(Value::as_str)
                        .ok_or("slo entry lacks `verdict`")?
                        .to_string(),
                });
            }
        }
        Ok(StatusSnapshot {
            tick: int(doc.get("tick"), "tick")?,
            window_width: int(doc.get("window_width_ticks"), "window_width_ticks")?,
            admitted: int(totals.get("admitted"), "admitted")?,
            rejected: int(totals.get("rejected"), "rejected")?,
            completed: int(totals.get("completed"), "completed")?,
            failed: int(totals.get("failed"), "failed")?,
            batches: int(totals.get("batches"), "batches")?,
            fastpath: int(totals.get("fastpath"), "fastpath")?,
            experiments_fresh: int(totals.get("experiments_fresh"), "experiments_fresh")?,
            experiments_cached: int(totals.get("experiments_cached"), "experiments_cached")?,
            stages,
            tenants,
            windows,
            slo,
        })
    }

    /// Renders the snapshot as the `benchpark status` table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "status @ tick {} ({} batches, window width {} ticks)",
            self.tick, self.batches, self.window_width
        );
        let _ = writeln!(
            out,
            "  totals: {} admitted, {} rejected | {} completed, {} failed | hit rate {:.1}% ({} fastpath)",
            self.admitted,
            self.rejected,
            self.completed,
            self.failed,
            self.hit_rate() * 100.0,
            self.fastpath
        );
        if !self.stages.is_empty() {
            let _ = writeln!(out, "  stage latencies (virtual ticks):");
            let _ = writeln!(
                out,
                "    {:<12} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "stage", "p50", "p95", "p99", "max", "n"
            );
            for (name, l) in &self.stages {
                let _ = writeln!(
                    out,
                    "    {:<12} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    name, l.p50, l.p95, l.p99, l.max, l.count
                );
            }
        }
        if !self.tenants.is_empty() {
            let _ = writeln!(out, "  tenants:");
            let _ = writeln!(
                out,
                "    {:<12} {:>5} {:>5} {:>5} {:>5} {:>6} {:>6}  {:>18}  {:>18}",
                "tenant",
                "sub",
                "rej",
                "done",
                "fail",
                "fresh",
                "cached",
                "wait p50/p95/p99",
                "exec p50/p95/p99"
            );
            for t in &self.tenants {
                let _ = writeln!(
                    out,
                    "    {:<12} {:>5} {:>5} {:>5} {:>5} {:>6} {:>6}  {:>18}  {:>18}",
                    t.name,
                    t.submitted,
                    t.rejected,
                    t.completed,
                    t.failed,
                    t.fresh,
                    t.cached,
                    format!(
                        "{}/{}/{}",
                        t.queue_wait.p50, t.queue_wait.p95, t.queue_wait.p99
                    ),
                    format!("{}/{}/{}", t.execute.p50, t.execute.p95, t.execute.p99),
                );
            }
        }
        if !self.windows.is_empty() {
            let _ = writeln!(out, "  windows:");
            let _ = writeln!(
                out,
                "    {:<16} {:>5} {:>5} {:>5} {:>5} {:>7} {:>6} {:>6} {:>8}",
                "ticks", "sub", "rej", "done", "fail", "thr", "hit%", "rej%", "wait p99"
            );
            for w in &self.windows {
                let _ = writeln!(
                    out,
                    "    {:<16} {:>5} {:>5} {:>5} {:>5} {:>7.3} {:>6.1} {:>6.1} {:>8}",
                    format!("[{}, {})", w.start_tick, w.end_tick),
                    w.submitted,
                    w.rejected,
                    w.completed,
                    w.failed,
                    w.throughput,
                    w.hit_rate * 100.0,
                    w.reject_rate * 100.0,
                    w.queue_wait.p99
                );
            }
        }
        if !self.slo.is_empty() {
            let _ = writeln!(out, "  slo (fast = latest window, slow = all retained):");
            for s in &self.slo {
                let _ = writeln!(
                    out,
                    "    {:<4} {:<28} fast {:.3}  slow {:.3}",
                    s.verdict, s.target, s.fast, s.slow
                );
            }
        }
        out
    }
}

/// Writes `contents` to `path` atomically: a temp file in the same
/// directory, fsynced, then renamed over the target. A concurrent
/// `benchpark status` reader sees either the old snapshot or the new one,
/// never a torn write.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
    }
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| format!("cannot create `{}`: {e}", tmp.display()))?;
        file.write_all(contents.as_bytes())
            .map_err(|e| format!("cannot write `{}`: {e}", tmp.display()))?;
        file.sync_all()
            .map_err(|e| format!("cannot sync `{}`: {e}", tmp.display()))?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename `{}` into place: {e}", tmp.display()))
}
