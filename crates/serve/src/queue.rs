//! The submission queue: FIFO-within-tenant intake with admission control.

use crate::request::ExperimentRequest;
use benchpark_core::{available_experiments, SystemProfile};
use benchpark_telemetry::TelemetrySink;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Queue and scheduler quotas. Defaults are sized for the stress harness:
/// deep queues (rejections are opt-in via the CLI flags), small quanta.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Max requests a single tenant may have queued (admission control).
    pub max_queued_per_tenant: usize,
    /// Max requests queued across all tenants (global backpressure).
    pub max_queued_global: usize,
    /// Max requests per tenant in flight in one scheduler batch.
    pub max_inflight_per_tenant: usize,
    /// Deficit round-robin quantum: queue credit a tenant earns per round.
    pub quantum: u64,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            max_queued_per_tenant: 1024,
            max_queued_global: 8192,
            max_inflight_per_tenant: 4,
            quantum: 2,
        }
    }
}

/// Why a submission was refused. Every variant maps to a stable
/// kebab-case code (the `serve.rejected.<code>` telemetry counter and the
/// rejection roll in the serve report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The request line did not parse.
    BadRequest {
        /// Parser message.
        detail: String,
    },
    /// Tenant id is empty or has characters outside `[a-z0-9_-]`.
    BadTenant {
        /// The offending tenant id.
        tenant: String,
    },
    /// No such system profile.
    UnknownSystem {
        /// The requested system.
        system: String,
    },
    /// No such benchmark/variant template.
    UnknownExperiment {
        /// The requested benchmark.
        benchmark: String,
        /// The requested variant.
        variant: String,
    },
    /// `template=PATH` could not be read at admission.
    TemplateUnreadable {
        /// The requested path.
        path: String,
        /// The I/O error.
        error: String,
    },
    /// The tenant's queue is at `max_queued_per_tenant`.
    TenantQueueFull {
        /// The quota that was hit.
        limit: usize,
    },
    /// The global queue is at `max_queued_global`.
    GlobalQueueFull {
        /// The quota that was hit.
        limit: usize,
    },
}

impl RejectReason {
    /// The stable kebab-case code for this reason.
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::BadRequest { .. } => "bad-request",
            RejectReason::BadTenant { .. } => "bad-tenant",
            RejectReason::UnknownSystem { .. } => "unknown-system",
            RejectReason::UnknownExperiment { .. } => "unknown-experiment",
            RejectReason::TemplateUnreadable { .. } => "template-unreadable",
            RejectReason::TenantQueueFull { .. } => "tenant-queue-full",
            RejectReason::GlobalQueueFull { .. } => "global-queue-full",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::BadRequest { detail } => write!(f, "bad request: {detail}"),
            RejectReason::BadTenant { tenant } => {
                write!(f, "bad tenant `{tenant}` (want lowercase [a-z0-9_-]+)")
            }
            RejectReason::UnknownSystem { system } => write!(f, "unknown system `{system}`"),
            RejectReason::UnknownExperiment { benchmark, variant } => {
                write!(f, "unknown experiment `{benchmark}/{variant}`")
            }
            RejectReason::TemplateUnreadable { path, error } => {
                write!(f, "cannot read template `{path}`: {error}")
            }
            RejectReason::TenantQueueFull { limit } => {
                write!(f, "tenant queue full ({limit} queued)")
            }
            RejectReason::GlobalQueueFull { limit } => {
                write!(f, "global queue full ({limit} queued)")
            }
        }
    }
}

/// A refused submission: who asked, and why it bounced.
#[derive(Debug, Clone)]
pub struct AdmitError {
    /// The submitting tenant (as written, even when invalid).
    pub tenant: String,
    /// The typed reason.
    pub reason: RejectReason,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rejected [{}] {}: {}",
            self.reason.code(),
            self.tenant,
            self.reason
        )
    }
}

/// Request-scoped trace context, minted at admission and carried through
/// DRR pick → engine execution → ledger commit. Everything in it is a pure
/// function of the submission sequence, so the stamps it produces (span
/// attributes, histogram samples, `RunRecord` request traces) are identical
/// at any worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestCtx {
    /// The submitting tenant.
    pub tenant: String,
    /// Global intake sequence number (1-based) — the daemon's request id.
    pub request_id: u64,
    /// Tenant-blind spec key ([`ExperimentRequest::spec_key`]).
    pub spec_key: String,
    /// Queue virtual-clock tick at admission.
    pub submit_tick: u64,
}

/// An admitted request, stamped with its intake position.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// The request.
    pub request: ExperimentRequest,
    /// 1-based position within the tenant's submissions (FIFO order).
    pub tenant_seq: u64,
    /// 1-based global intake position (workspace directory naming).
    pub intake_seq: u64,
    /// Queue virtual-clock tick at admission (see [`SubmissionQueue::tick`]).
    pub submit_tick: u64,
}

impl QueuedRequest {
    /// The trace context minted for this request at admission.
    pub fn ctx(&self) -> RequestCtx {
        RequestCtx {
            tenant: self.request.tenant.clone(),
            request_id: self.intake_seq,
            spec_key: self.request.spec_key(),
            submit_tick: self.submit_tick,
        }
    }
}

/// The multi-tenant submission queue. Admission validates the request
/// (tenant id shape, known system, known experiment) and enforces the
/// per-tenant and global quotas; admitted requests wait FIFO within their
/// tenant's queue until the scheduler picks them.
pub struct SubmissionQueue {
    config: QueueConfig,
    queues: BTreeMap<String, VecDeque<QueuedRequest>>,
    tenant_seqs: BTreeMap<String, u64>,
    total_queued: usize,
    intake_seq: u64,
    /// The queue's virtual clock: advances one tick per admission and, via
    /// [`SubmissionQueue::advance_tick`], one tick per daemon drain round.
    /// A pure function of queue activity — never of wall time — so every
    /// latency derived from it is byte-identical across `--jobs` counts.
    tick: u64,
    telemetry: TelemetrySink,
}

fn valid_tenant(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
}

impl SubmissionQueue {
    /// An empty queue under `config`, reporting to `telemetry`.
    pub fn new(config: QueueConfig, telemetry: TelemetrySink) -> SubmissionQueue {
        SubmissionQueue {
            config,
            queues: BTreeMap::new(),
            tenant_seqs: BTreeMap::new(),
            total_queued: 0,
            intake_seq: 0,
            tick: 0,
            telemetry,
        }
    }

    /// The active quota configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.config
    }

    /// The current virtual-clock tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the virtual clock (the daemon calls this once per drain
    /// round, so queued requests accumulate measurable wait).
    pub fn advance_tick(&mut self, ticks: u64) {
        self.tick += ticks;
    }

    /// Validates and admits one request, or rejects it with a typed
    /// reason. Emits `serve.submitted` / `serve.rejected` /
    /// `serve.rejected.<code>` counters and observes `serve.queue.depth`.
    pub fn admit(&mut self, request: ExperimentRequest) -> Result<u64, AdmitError> {
        let reason = self.check(&request);
        if let Some(reason) = reason {
            self.telemetry.incr("serve.rejected", 1);
            self.telemetry
                .incr(&format!("serve.rejected.{}", reason.code()), 1);
            if valid_tenant(&request.tenant) {
                self.telemetry
                    .incr(&format!("serve.tenant.{}.rejected", request.tenant), 1);
            }
            return Err(AdmitError {
                tenant: request.tenant,
                reason,
            });
        }
        let tenant = request.tenant.clone();
        let tenant_seq = self.tenant_seqs.entry(tenant.clone()).or_insert(0);
        *tenant_seq += 1;
        self.intake_seq += 1;
        let seq = *tenant_seq;
        let submit_tick = self.tick;
        self.tick += 1; // each admission occupies one virtual tick
        self.queues
            .entry(tenant.clone())
            .or_default()
            .push_back(QueuedRequest {
                request,
                tenant_seq: seq,
                intake_seq: self.intake_seq,
                submit_tick,
            });
        self.total_queued += 1;
        self.telemetry.incr("serve.submitted", 1);
        self.telemetry
            .incr(&format!("serve.tenant.{tenant}.submitted"), 1);
        self.telemetry
            .observe("serve.queue.depth", self.total_queued as f64);
        Ok(seq)
    }

    fn check(&self, request: &ExperimentRequest) -> Option<RejectReason> {
        if !valid_tenant(&request.tenant) {
            return Some(RejectReason::BadTenant {
                tenant: request.tenant.clone(),
            });
        }
        if SystemProfile::by_name(&request.system).is_none() {
            return Some(RejectReason::UnknownSystem {
                system: request.system.clone(),
            });
        }
        let known = available_experiments()
            .iter()
            .any(|(b, v)| *b == request.benchmark && *v == request.variant);
        if !known {
            return Some(RejectReason::UnknownExperiment {
                benchmark: request.benchmark.clone(),
                variant: request.variant.clone(),
            });
        }
        let depth = self.queues.get(&request.tenant).map_or(0, VecDeque::len);
        if depth >= self.config.max_queued_per_tenant {
            return Some(RejectReason::TenantQueueFull {
                limit: self.config.max_queued_per_tenant,
            });
        }
        if self.total_queued >= self.config.max_queued_global {
            return Some(RejectReason::GlobalQueueFull {
                limit: self.config.max_queued_global,
            });
        }
        None
    }

    /// Tenants with at least one queued request, in name order (the
    /// scheduler's visit order).
    pub fn waiting_tenants(&self) -> Vec<String> {
        self.queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// Pops the tenant's oldest queued request.
    pub fn pop_front(&mut self, tenant: &str) -> Option<QueuedRequest> {
        let picked = self.queues.get_mut(tenant)?.pop_front();
        if picked.is_some() {
            self.total_queued -= 1;
            self.telemetry
                .observe("serve.queue.depth", self.total_queued as f64);
        }
        picked
    }

    /// Queued requests for one tenant.
    pub fn depth(&self, tenant: &str) -> usize {
        self.queues.get(tenant).map_or(0, VecDeque::len)
    }

    /// Queued requests across all tenants.
    pub fn len(&self) -> usize {
        self.total_queued
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.total_queued == 0
    }
}
