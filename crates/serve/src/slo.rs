//! Declarative service-level objectives with multi-window burn-rate
//! verdicts.
//!
//! An SLO file is one target per line — `<metric> <op> <threshold>`, with
//! `#` comments and a tolerated trailing unit word (`ticks`):
//!
//! ```text
//! # queue wait must stay tame, cache hits must carry the load
//! p99_queue_wait <= 2048 ticks
//! reject_rate    <= 0.01
//! hit_rate       >= 0.5
//! ```
//!
//! Each target is evaluated over two horizons borrowed from SRE
//! multi-window burn-rate alerting: the *fast* horizon (the most recent
//! window with activity) catches a breach as it happens, and the *slow*
//! horizon (the union of all retained windows) confirms it is sustained
//! rather than a blip. Both breaching is `FAIL`, exactly one is `WARN`,
//! neither is `PASS`. Since windows are deterministic in virtual time, so
//! are the verdicts.

use crate::window::WindowSummary;

/// The measurable quantities a target may constrain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloMetric {
    /// A quantile of the queue-wait distribution (0.50/0.95/0.99).
    QueueWaitP(u8),
    /// A quantile of the execute distribution.
    ExecuteP(u8),
    /// Rejected / arrived.
    RejectRate,
    /// Cached experiments / all experiments.
    HitRate,
    /// Failed / finished requests.
    FailRate,
    /// Completed requests per tick.
    Throughput,
}

impl SloMetric {
    fn parse(token: &str) -> Option<SloMetric> {
        let quantile = |p: &str| -> Option<u8> {
            match p {
                "p50" => Some(50),
                "p95" => Some(95),
                "p99" => Some(99),
                _ => None,
            }
        };
        if let Some(p) = token.strip_suffix("_queue_wait").and_then(quantile) {
            return Some(SloMetric::QueueWaitP(p));
        }
        if let Some(p) = token.strip_suffix("_execute").and_then(quantile) {
            return Some(SloMetric::ExecuteP(p));
        }
        match token {
            "reject_rate" => Some(SloMetric::RejectRate),
            "hit_rate" => Some(SloMetric::HitRate),
            "fail_rate" => Some(SloMetric::FailRate),
            "throughput" => Some(SloMetric::Throughput),
            _ => None,
        }
    }

    /// Evaluates this metric over one window.
    pub fn value(&self, window: &WindowSummary) -> f64 {
        match self {
            SloMetric::QueueWaitP(p) => window.queue_wait.quantile(*p as f64 / 100.0) as f64,
            SloMetric::ExecuteP(p) => window.execute.quantile(*p as f64 / 100.0) as f64,
            SloMetric::RejectRate => window.reject_rate(),
            SloMetric::HitRate => window.hit_rate(),
            SloMetric::FailRate => window.fail_rate(),
            SloMetric::Throughput => window.throughput(),
        }
    }
}

/// `<=` or `>=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    /// The metric must not exceed the threshold.
    Le,
    /// The metric must not fall below the threshold.
    Ge,
}

impl SloOp {
    fn holds(&self, value: f64, threshold: f64) -> bool {
        match self {
            SloOp::Le => value <= threshold,
            SloOp::Ge => value >= threshold,
        }
    }

    fn as_str(&self) -> &'static str {
        match self {
            SloOp::Le => "<=",
            SloOp::Ge => ">=",
        }
    }
}

/// One declarative target.
#[derive(Debug, Clone)]
pub struct SloTarget {
    /// The metric name as written (`p99_queue_wait`).
    pub name: String,
    /// The parsed metric.
    pub metric: SloMetric,
    /// The comparison direction.
    pub op: SloOp,
    /// The threshold value.
    pub threshold: f64,
}

impl SloTarget {
    /// `p99_queue_wait <= 2048`.
    pub fn render(&self) -> String {
        format!("{} {} {}", self.name, self.op.as_str(), self.threshold)
    }
}

/// A parsed SLO file.
#[derive(Debug, Clone, Default)]
pub struct SloSpec {
    /// Targets in file order.
    pub targets: Vec<SloTarget>,
}

impl SloSpec {
    /// Parses an SLO file. Unknown metrics, operators, or thresholds are
    /// hard errors — a silently dropped target is an outage you did not
    /// alert on.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let mut targets = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let err = |what: &str| format!("slo line {}: {what}: `{raw}`", i + 1);
            let name = tokens.next().ok_or_else(|| err("missing metric"))?;
            let metric = SloMetric::parse(name).ok_or_else(|| {
                err("unknown metric (want pNN_queue_wait, pNN_execute, reject_rate, hit_rate, fail_rate, throughput)")
            })?;
            let op = match tokens.next() {
                Some("<=") => SloOp::Le,
                Some(">=") => SloOp::Ge,
                _ => return Err(err("want `<=` or `>=`")),
            };
            let threshold: f64 = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("threshold must be numeric"))?;
            if let Some(extra) = tokens.next() {
                if extra != "ticks" {
                    return Err(err("unexpected trailing token"));
                }
            }
            targets.push(SloTarget {
                name: name.to_string(),
                metric,
                op,
                threshold,
            });
        }
        Ok(SloSpec { targets })
    }

    /// Evaluates every target over the fast and slow horizons.
    pub fn evaluate(&self, fast: &WindowSummary, slow: &WindowSummary) -> Vec<SloVerdict> {
        self.targets
            .iter()
            .map(|target| {
                let fast_value = target.metric.value(fast);
                let slow_value = target.metric.value(slow);
                let fast_ok = target.op.holds(fast_value, target.threshold);
                let slow_ok = target.op.holds(slow_value, target.threshold);
                let verdict = match (fast_ok, slow_ok) {
                    (true, true) => Verdict::Pass,
                    (false, false) => Verdict::Fail,
                    _ => Verdict::Warn,
                };
                SloVerdict {
                    target: target.render(),
                    fast: fast_value,
                    slow: slow_value,
                    verdict,
                }
            })
            .collect()
    }
}

/// The burn-rate outcome for one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Neither horizon breaches.
    Pass,
    /// Exactly one horizon breaches (error budget burning, or recovering).
    Warn,
    /// Both horizons breach: the violation is current *and* sustained.
    Fail,
}

impl Verdict {
    /// `PASS` / `WARN` / `FAIL`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Pass => "PASS",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        }
    }

    /// Parses the rendered form back.
    pub fn parse(s: &str) -> Option<Verdict> {
        match s {
            "PASS" => Some(Verdict::Pass),
            "WARN" => Some(Verdict::Warn),
            "FAIL" => Some(Verdict::Fail),
            _ => None,
        }
    }
}

/// One evaluated target: the values seen on each horizon and the verdict.
#[derive(Debug, Clone)]
pub struct SloVerdict {
    /// The target as written (`p99_queue_wait <= 2048`).
    pub target: String,
    /// Metric value over the fast horizon.
    pub fast: f64,
    /// Metric value over the slow horizon.
    pub slow: f64,
    /// The burn-rate verdict.
    pub verdict: Verdict,
}
