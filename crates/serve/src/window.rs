//! Rolling-window aggregation over the daemon's virtual clock.
//!
//! The queue's tick counter (one tick per admission, one per drain round)
//! is chopped into fixed-width windows; each window accumulates the events
//! that happened inside it — submissions, rejections by reason code,
//! completions with their stage latencies. A bounded ring of closed windows
//! plus the in-progress one gives the SLO evaluator its fast/slow burn
//! horizons, and the status snapshot its recent-history table. Everything
//! is integer arithmetic over deterministic ticks, so two drains of the
//! same submission sequence produce identical windows at any `--jobs`
//! count.

use benchpark_telemetry::HistogramStats;
use std::collections::{BTreeMap, VecDeque};

/// Window geometry: how wide each window is and how many closed windows
/// the ring retains.
#[derive(Debug, Clone)]
pub struct WindowConfig {
    /// Virtual ticks per window.
    pub width_ticks: u64,
    /// Closed windows kept in the ring (the slow-burn horizon).
    pub retain: usize,
}

impl Default for WindowConfig {
    fn default() -> WindowConfig {
        WindowConfig {
            width_ticks: 64,
            retain: 16,
        }
    }
}

/// One window's accumulated service activity.
#[derive(Debug, Clone, Default)]
pub struct WindowSummary {
    /// Window ordinal (`start_tick / width`).
    pub index: u64,
    /// First tick covered (inclusive).
    pub start_tick: u64,
    /// One past the last tick covered.
    pub end_tick: u64,
    /// Requests admitted in this window.
    pub submitted: u64,
    /// Rejections in this window, by kebab-case reason code.
    pub rejected: BTreeMap<String, u64>,
    /// Requests committed successfully in this window.
    pub completed: u64,
    /// Requests whose pipeline errored in this window.
    pub failed: u64,
    /// Completions served by the memo fastpath.
    pub fastpath: u64,
    /// Experiments measured fresh in this window.
    pub experiments_fresh: u64,
    /// Experiments spliced from fingerprint caches in this window.
    pub experiments_cached: u64,
    /// Queue-wait latencies of requests committed in this window.
    pub queue_wait: HistogramStats,
    /// Execute latencies of requests committed in this window.
    pub execute: HistogramStats,
}

impl WindowSummary {
    fn at(index: u64, width: u64) -> WindowSummary {
        WindowSummary {
            index,
            start_tick: index * width,
            end_tick: (index + 1) * width,
            ..WindowSummary::default()
        }
    }

    /// Total rejections across all reason codes.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.values().sum()
    }

    /// Completed requests per virtual tick of window width.
    pub fn throughput(&self) -> f64 {
        let width = self.end_tick.saturating_sub(self.start_tick);
        if width == 0 {
            return 0.0;
        }
        self.completed as f64 / width as f64
    }

    /// Fraction of arriving requests that were refused.
    pub fn reject_rate(&self) -> f64 {
        let arrived = self.submitted + self.rejected_total();
        if arrived == 0 {
            return 0.0;
        }
        self.rejected_total() as f64 / arrived as f64
    }

    /// Fraction of experiments satisfied from fingerprint caches.
    pub fn hit_rate(&self) -> f64 {
        let total = self.experiments_fresh + self.experiments_cached;
        if total == 0 {
            return 0.0;
        }
        self.experiments_cached as f64 / total as f64
    }

    /// Fraction of finished requests that failed.
    pub fn fail_rate(&self) -> f64 {
        let finished = self.completed + self.failed;
        if finished == 0 {
            return 0.0;
        }
        self.failed as f64 / finished as f64
    }

    /// True when nothing at all happened in this window.
    pub fn is_empty(&self) -> bool {
        self.submitted == 0 && self.rejected.is_empty() && self.completed == 0 && self.failed == 0
    }

    fn absorb(&mut self, other: &WindowSummary) {
        self.submitted += other.submitted;
        for (code, count) in &other.rejected {
            *self.rejected.entry(code.clone()).or_insert(0) += count;
        }
        self.completed += other.completed;
        self.failed += other.failed;
        self.fastpath += other.fastpath;
        self.experiments_fresh += other.experiments_fresh;
        self.experiments_cached += other.experiments_cached;
        self.queue_wait.merge(&other.queue_wait);
        self.execute.merge(&other.execute);
    }
}

/// One request completion, as fed to [`RollingWindows::record_complete`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CompletionEvent {
    /// The pipeline errored.
    pub failed: bool,
    /// Served by the memo fastpath.
    pub fastpath: bool,
    /// Experiments measured fresh.
    pub fresh: u64,
    /// Experiments spliced from caches.
    pub cached: u64,
    /// Ticks spent queued.
    pub queue_wait_ticks: u64,
    /// Virtual execution ticks.
    pub execute_ticks: u64,
}

/// The fixed-width ring of window summaries. Events arrive stamped with the
/// queue tick they happened at; the ring closes windows as the clock
/// crosses their boundaries and drops the oldest beyond the retention
/// horizon.
#[derive(Debug, Clone)]
pub struct RollingWindows {
    config: WindowConfig,
    current: WindowSummary,
    closed: VecDeque<WindowSummary>,
}

impl RollingWindows {
    /// An empty ring with `config`'s geometry.
    pub fn new(config: WindowConfig) -> RollingWindows {
        let width = config.width_ticks.max(1);
        let config = WindowConfig {
            width_ticks: width,
            retain: config.retain.max(1),
        };
        RollingWindows {
            current: WindowSummary::at(0, width),
            config,
            closed: VecDeque::new(),
        }
    }

    /// The window geometry in force.
    pub fn config(&self) -> &WindowConfig {
        &self.config
    }

    /// Closes windows until `tick` falls inside the current one.
    pub fn roll_to(&mut self, tick: u64) {
        while tick >= self.current.end_tick {
            let next = WindowSummary::at(self.current.index + 1, self.config.width_ticks);
            let finished = std::mem::replace(&mut self.current, next);
            // empty windows still close (a silent service is data), but
            // only non-trivial ones consume retention slots
            if !finished.is_empty() {
                self.closed.push_back(finished);
                while self.closed.len() > self.config.retain {
                    self.closed.pop_front();
                }
            }
        }
    }

    /// Records one admission at `tick`.
    pub fn record_submit(&mut self, tick: u64) {
        self.roll_to(tick);
        self.current.submitted += 1;
    }

    /// Records one rejection at `tick` under its reason code.
    pub fn record_reject(&mut self, tick: u64, code: &str) {
        self.roll_to(tick);
        *self.current.rejected.entry(code.to_string()).or_insert(0) += 1;
    }

    /// Records one request completion at `tick`.
    pub fn record_complete(&mut self, tick: u64, event: CompletionEvent) {
        self.roll_to(tick);
        let window = &mut self.current;
        if event.failed {
            window.failed += 1;
        } else {
            window.completed += 1;
            if event.fastpath {
                window.fastpath += 1;
            }
        }
        window.experiments_fresh += event.fresh;
        window.experiments_cached += event.cached;
        window.queue_wait.record(event.queue_wait_ticks);
        window.execute.record(event.execute_ticks);
    }

    /// Retained windows oldest-first, ending with the in-progress one when
    /// it has any activity.
    pub fn views(&self) -> Vec<&WindowSummary> {
        let mut out: Vec<&WindowSummary> = self.closed.iter().collect();
        if !self.current.is_empty() || out.is_empty() {
            out.push(&self.current);
        }
        out
    }

    /// The most recent window with activity — the SLO evaluator's fast-burn
    /// horizon.
    pub fn fast(&self) -> &WindowSummary {
        if self.current.is_empty() {
            if let Some(last) = self.closed.back() {
                return last;
            }
        }
        &self.current
    }

    /// The union of every retained window — the slow-burn horizon.
    pub fn slow(&self) -> WindowSummary {
        let mut merged = WindowSummary::at(0, self.config.width_ticks);
        if let Some(first) = self.closed.front() {
            merged.index = first.index;
            merged.start_tick = first.start_tick;
        } else {
            merged.index = self.current.index;
            merged.start_tick = self.current.start_tick;
        }
        merged.end_tick = self.current.end_tick;
        for window in &self.closed {
            merged.absorb(window);
        }
        merged.absorb(&self.current);
        merged
    }
}

impl Default for RollingWindows {
    fn default() -> RollingWindows {
        RollingWindows::new(WindowConfig::default())
    }
}
