use crate::queue::{QueueConfig, RejectReason, SubmissionQueue};
use crate::request::ExperimentRequest;
use crate::sched::DrrScheduler;
use benchpark_telemetry::TelemetrySink;

fn req(tenant: &str) -> ExperimentRequest {
    ExperimentRequest::new(tenant, "saxpy", "openmp", "cts1")
}

#[test]
fn parse_line_roundtrip() {
    let r = ExperimentRequest::parse_line("alice saxpy/openmp cts1")
        .unwrap()
        .unwrap();
    assert_eq!(r.tenant, "alice");
    assert_eq!(r.benchmark, "saxpy");
    assert_eq!(r.variant, "openmp");
    assert_eq!(r.system, "cts1");
    assert!(!r.faults);
    assert_eq!(r.to_line(), "alice saxpy/openmp cts1");

    let r = ExperimentRequest::parse_line("bob stream/openmp ats2 faults template=t.yaml")
        .unwrap()
        .unwrap();
    assert!(r.faults);
    assert_eq!(
        r.template_path.as_ref().unwrap().to_str().unwrap(),
        "t.yaml"
    );
    assert_eq!(r.to_line(), "bob stream/openmp ats2 faults template=t.yaml");
}

#[test]
fn parse_line_skips_comments_and_rejects_malformed() {
    assert!(ExperimentRequest::parse_line("").unwrap().is_none());
    assert!(ExperimentRequest::parse_line("  # comment")
        .unwrap()
        .is_none());
    assert!(ExperimentRequest::parse_line("alice").is_err());
    assert!(ExperimentRequest::parse_line("alice saxpy cts1").is_err());
    assert!(ExperimentRequest::parse_line("alice saxpy/openmp cts1 bogus").is_err());
}

#[test]
fn spec_key_ignores_tenant_but_not_template() {
    let a = req("alice");
    let b = req("bob");
    assert_eq!(a.spec_key(), b.spec_key());
    let mut c = req("alice");
    c.template = Some("experiments: {}".to_string());
    assert_ne!(a.spec_key(), c.spec_key());
    let mut d = req("alice");
    d.faults = true;
    assert_ne!(a.spec_key(), d.spec_key());
}

#[test]
fn admission_validates_and_enforces_quotas() {
    let sink = TelemetrySink::recording();
    let config = QueueConfig {
        max_queued_per_tenant: 2,
        max_queued_global: 3,
        ..QueueConfig::default()
    };
    let mut queue = SubmissionQueue::new(config, sink.clone());

    let bad = queue.admit(req("Alice")).unwrap_err();
    assert!(matches!(bad.reason, RejectReason::BadTenant { .. }));
    assert_eq!(bad.reason.code(), "bad-tenant");

    let mut r = req("alice");
    r.system = "nosuch".to_string();
    let bad = queue.admit(r).unwrap_err();
    assert_eq!(bad.reason.code(), "unknown-system");

    let mut r = req("alice");
    r.benchmark = "nosuch".to_string();
    let bad = queue.admit(r).unwrap_err();
    assert_eq!(bad.reason.code(), "unknown-experiment");

    assert_eq!(queue.admit(req("alice")).unwrap(), 1);
    assert_eq!(queue.admit(req("alice")).unwrap(), 2);
    let bad = queue.admit(req("alice")).unwrap_err();
    assert!(matches!(
        bad.reason,
        RejectReason::TenantQueueFull { limit: 2 }
    ));

    assert_eq!(queue.admit(req("bob")).unwrap(), 1);
    let bad = queue.admit(req("carol")).unwrap_err();
    assert!(matches!(
        bad.reason,
        RejectReason::GlobalQueueFull { limit: 3 }
    ));

    let report = sink.report().unwrap();
    assert_eq!(report.counter("serve.submitted"), 3);
    assert_eq!(report.counter("serve.rejected"), 5);
    assert_eq!(report.counter("serve.rejected.tenant-queue-full"), 1);
    assert_eq!(report.counter("serve.rejected.global-queue-full"), 1);
    assert_eq!(report.counter("serve.tenant.alice.submitted"), 2);
    assert_eq!(report.counter("serve.tenant.alice.rejected"), 3);
}

#[test]
fn queue_is_fifo_within_tenant() {
    let mut queue = SubmissionQueue::new(QueueConfig::default(), TelemetrySink::noop());
    let mut a1 = req("alice");
    a1.system = "cts1".to_string();
    let mut a2 = req("alice");
    a2.system = "ats2".to_string();
    queue.admit(a1).unwrap();
    queue.admit(a2).unwrap();
    let first = queue.pop_front("alice").unwrap();
    let second = queue.pop_front("alice").unwrap();
    assert_eq!(first.tenant_seq, 1);
    assert_eq!(first.request.system, "cts1");
    assert_eq!(second.tenant_seq, 2);
    assert_eq!(second.request.system, "ats2");
    assert!(queue.pop_front("alice").is_none());
}

#[test]
fn drr_is_fair_across_tenants() {
    let config = QueueConfig {
        quantum: 2,
        max_inflight_per_tenant: 4,
        ..QueueConfig::default()
    };
    let mut queue = SubmissionQueue::new(config.clone(), TelemetrySink::noop());
    // alice floods, bob submits two: bob must not starve.
    for _ in 0..6 {
        queue.admit(req("alice")).unwrap();
    }
    for _ in 0..2 {
        queue.admit(req("bob")).unwrap();
    }
    let mut sched = DrrScheduler::new(&config);

    let batch = sched.next_batch(&mut queue);
    let tenants: Vec<&str> = batch.iter().map(|q| q.request.tenant.as_str()).collect();
    assert_eq!(tenants, vec!["alice", "alice", "bob", "bob"]);

    let batch = sched.next_batch(&mut queue);
    let tenants: Vec<&str> = batch.iter().map(|q| q.request.tenant.as_str()).collect();
    assert_eq!(tenants, vec!["alice", "alice"]);

    let batch = sched.next_batch(&mut queue);
    assert_eq!(batch.len(), 2);
    assert!(queue.is_empty());
    assert!(sched.next_batch(&mut queue).is_empty());
}

#[test]
fn drr_caps_per_tenant_inflight_and_carries_deficit() {
    let config = QueueConfig {
        quantum: 5,
        max_inflight_per_tenant: 3,
        ..QueueConfig::default()
    };
    let mut queue = SubmissionQueue::new(config.clone(), TelemetrySink::noop());
    for _ in 0..8 {
        queue.admit(req("alice")).unwrap();
    }
    let mut sched = DrrScheduler::new(&config);
    // Round 1: deficit 5, capped at 3 picks, 2 carried.
    assert_eq!(sched.next_batch(&mut queue).len(), 3);
    assert_eq!(sched.deficit("alice"), 2);
    // Round 2: deficit 7, capped at 3 picks.
    assert_eq!(sched.next_batch(&mut queue).len(), 3);
    // Round 3: queue empties; deficit forfeited.
    assert_eq!(sched.next_batch(&mut queue).len(), 2);
    assert_eq!(sched.deficit("alice"), 0);
}

#[test]
fn report_json_and_render() {
    let mut report = crate::report::ServeReport {
        admitted: 10,
        completed: 9,
        failed: 1,
        batches: 3,
        experiments_fresh: 4,
        experiments_cached: 12,
        elapsed_s: 2.0,
        ..Default::default()
    };
    report.tenants.insert(
        "alice".to_string(),
        crate::report::TenantStats {
            submitted: 10,
            completed: 9,
            failed: 1,
            fresh: 4,
            cached: 12,
            ..Default::default()
        },
    );
    assert!((report.throughput() - 4.5).abs() < 1e-9);
    assert!((report.hit_rate() - 0.75).abs() < 1e-9);
    let json = report.to_json();
    assert!(json.contains("\"throughput_rps\""));
    assert!(json.contains("\"alice\""));
    let text = report.render();
    assert!(text.contains("hit rate: 75.0%"));
}

// --- PR 10: virtual clock, trace context, windows, SLOs, status ---

#[test]
fn admission_stamps_ticks_and_mints_request_ctx() {
    let mut queue = SubmissionQueue::new(QueueConfig::default(), TelemetrySink::noop());
    assert_eq!(queue.tick(), 0);
    queue.admit(req("alice")).unwrap();
    queue.admit(req("bob")).unwrap();
    assert_eq!(queue.tick(), 2, "one tick per admission");
    queue.advance_tick(3);
    assert_eq!(queue.tick(), 5);

    let picked = queue.pop_front("alice").unwrap();
    assert_eq!(picked.submit_tick, 0);
    let ctx = picked.ctx();
    assert_eq!(ctx.tenant, "alice");
    assert_eq!(ctx.request_id, 1, "request id is the global intake seq");
    assert_eq!(ctx.submit_tick, 0);
    assert_eq!(ctx.spec_key, picked.request.spec_key());
    let picked = queue.pop_front("bob").unwrap();
    assert_eq!(picked.submit_tick, 1);
    assert_eq!(picked.ctx().request_id, 2);
}

/// Regression (the fix this PR carries): the queue-depth gauge must be
/// sampled at every drain tick and reach zero once the queue is fully
/// drained — not be left dangling at the last pop's pre-decrement value.
#[test]
fn queue_depth_gauge_reaches_zero_after_full_drain() {
    let base = std::env::temp_dir().join(format!("benchpark-serve-depth-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let mut daemon =
        crate::daemon::ServeDaemon::new(crate::daemon::ServeConfig::new(&base)).unwrap();
    for _ in 0..5 {
        daemon.submit(req("alice")).unwrap();
    }
    let sink = daemon.telemetry();
    daemon.drain().unwrap();
    let report = sink.report().unwrap();
    let depth = report
        .observation("serve.queue.depth")
        .expect("depth gauge sampled");
    assert_eq!(depth.last, 0.0, "depth must be 0 after a full drain");
    assert!(depth.max >= 5.0, "depth peaked at the queued count");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn rolling_windows_aggregate_and_close_on_tick_boundaries() {
    use crate::window::{CompletionEvent, RollingWindows, WindowConfig};
    let mut windows = RollingWindows::new(WindowConfig {
        width_ticks: 10,
        retain: 2,
    });
    windows.record_submit(0);
    windows.record_submit(3);
    windows.record_reject(4, "tenant-queue-full");
    windows.record_complete(
        5,
        CompletionEvent {
            fresh: 2,
            cached: 6,
            queue_wait_ticks: 5,
            execute_ticks: 40,
            ..CompletionEvent::default()
        },
    );
    let current = windows.fast();
    assert_eq!(current.index, 0);
    assert_eq!(current.submitted, 2);
    assert_eq!(current.rejected_total(), 1);
    assert_eq!(current.completed, 1);
    assert!((current.reject_rate() - 1.0 / 3.0).abs() < 1e-9);
    assert!((current.hit_rate() - 0.75).abs() < 1e-9);
    assert!((current.throughput() - 0.1).abs() < 1e-9);

    // crossing a boundary closes window 0; empty windows in between do not
    // consume retention slots
    windows.record_complete(47, CompletionEvent::default());
    let views = windows.views();
    assert_eq!(views.len(), 2, "closed window 0 + current window 4");
    assert_eq!(views[0].index, 0);
    assert_eq!(views[1].index, 4);
    assert_eq!(views[1].start_tick, 40);

    // slow horizon is the union; fast is the current (active) window
    let slow = windows.slow();
    assert_eq!(slow.submitted, 2);
    assert_eq!(slow.completed, 2);
    assert_eq!(slow.start_tick, 0);
    assert_eq!(slow.end_tick, 50);
    assert_eq!(windows.fast().index, 4);

    // retention: two more non-empty windows evict window 0
    windows.record_complete(50, CompletionEvent::default());
    windows.record_complete(60, CompletionEvent::default());
    windows.record_complete(70, CompletionEvent::default());
    let views = windows.views();
    assert!(views.iter().all(|w| w.index != 0), "window 0 evicted");
    assert_eq!(views.len(), 3, "retain=2 closed + current");
}

#[test]
fn slo_parse_rejects_unknown_metrics_and_accepts_units() {
    use crate::slo::SloSpec;
    let spec = SloSpec::parse(
        "# comment\np99_queue_wait <= 2048 ticks\nreject_rate <= 0.01\nhit_rate >= 0.5\n",
    )
    .unwrap();
    assert_eq!(spec.targets.len(), 3);
    assert_eq!(spec.targets[0].render(), "p99_queue_wait <= 2048");

    let err = SloSpec::parse("p42_queue_wait <= 7\n").unwrap_err();
    assert!(err.contains("slo line 1"), "{err}");
    assert!(err.contains("unknown metric"), "{err}");
    assert!(SloSpec::parse("p99_queue_wait < 7\n").is_err(), "bad op");
    assert!(
        SloSpec::parse("p99_queue_wait <= abc\n").is_err(),
        "bad threshold"
    );
    assert!(
        SloSpec::parse("p99_queue_wait <= 7 bogus\n").is_err(),
        "bad unit"
    );
}

#[test]
fn slo_verdicts_follow_multi_window_burn_rates() {
    use crate::slo::{SloSpec, Verdict};
    use crate::window::{CompletionEvent, RollingWindows, WindowConfig};
    let spec = SloSpec::parse("p99_queue_wait <= 10\n").unwrap();
    let mut windows = RollingWindows::new(WindowConfig {
        width_ticks: 10,
        retain: 8,
    });
    // slow history: two healthy windows with enough samples that one
    // outlier cannot drag the union's p99 (rank ceil(0.99 * n) must land on a
    // healthy sample)
    for tick in [0, 10] {
        for _ in 0..50 {
            windows.record_complete(
                tick,
                CompletionEvent {
                    queue_wait_ticks: 2,
                    ..CompletionEvent::default()
                },
            );
        }
    }
    let verdicts = spec.evaluate(windows.fast(), &windows.slow());
    assert_eq!(verdicts[0].verdict, Verdict::Pass);

    // fast horizon breaches, slow still healthy: WARN
    windows.record_complete(
        20,
        CompletionEvent {
            queue_wait_ticks: 500,
            ..CompletionEvent::default()
        },
    );
    let verdicts = spec.evaluate(windows.fast(), &windows.slow());
    assert_eq!(verdicts[0].verdict, Verdict::Warn);
    assert!(verdicts[0].fast > 10.0);
    assert!(verdicts[0].slow <= 10.0, "slow horizon still healthy");

    // sustained breach drags the slow horizon over too: FAIL
    for tick in [30, 40, 50] {
        for _ in 0..20 {
            windows.record_complete(
                tick,
                CompletionEvent {
                    queue_wait_ticks: 500,
                    ..CompletionEvent::default()
                },
            );
        }
    }
    let verdicts = spec.evaluate(windows.fast(), &windows.slow());
    assert_eq!(verdicts[0].verdict, Verdict::Fail);
}

#[test]
fn status_snapshot_roundtrips_and_check_semantics() {
    use crate::slo::SloSpec;
    use crate::status::{StageHists, StatusSnapshot};
    use crate::window::{CompletionEvent, RollingWindows};
    let mut report = crate::report::ServeReport {
        admitted: 3,
        completed: 3,
        batches: 1,
        experiments_fresh: 4,
        experiments_cached: 12,
        ..Default::default()
    };
    report.tenants.insert(
        "alice".to_string(),
        crate::report::TenantStats {
            submitted: 3,
            completed: 3,
            fresh: 4,
            cached: 12,
            ..Default::default()
        },
    );
    let mut hists = StageHists::default();
    hists.record("alice", 4, 0, 338, 1);
    hists.record("alice", 5, 1, 1, 2);
    hists.record("alice", 6, 2, 1, 3);
    let mut windows = RollingWindows::default();
    for i in 0..3u64 {
        windows.record_submit(i);
        windows.record_complete(
            3,
            CompletionEvent {
                fresh: 1,
                cached: 4,
                queue_wait_ticks: 4 + i,
                execute_ticks: if i == 0 { 338 } else { 1 },
                ..CompletionEvent::default()
            },
        );
    }
    let slo = SloSpec::parse("p99_execute <= 10\nhit_rate >= 0.5\n").unwrap();
    let snapshot = StatusSnapshot::build(7, &report, &hists, &windows, Some(&slo));

    assert_eq!(snapshot.tick, 7);
    assert_eq!(snapshot.stages[0].0, "queue_wait");
    assert_eq!(snapshot.stages[2].0, "execute");
    assert_eq!(snapshot.stages[2].1.max, 338);
    assert_eq!(snapshot.tenants.len(), 1);
    assert_eq!(snapshot.tenants[0].queue_wait.count, 3);
    assert!(snapshot.has_failing_slo(), "execute p99 512-bucket > 10");

    // canonical JSON round-trips losslessly
    let json = snapshot.to_json();
    let parsed = StatusSnapshot::parse(&json).unwrap();
    assert_eq!(parsed.to_json(), json, "parse∘emit is the identity");
    assert!(parsed.has_failing_slo());

    // rendering mentions the failing target
    let text = snapshot.render();
    assert!(text.contains("FAIL p99_execute <= 10"), "{text}");
    assert!(text.contains("alice"), "{text}");

    // without SLOs nothing can fail
    let quiet = StatusSnapshot::build(7, &report, &hists, &windows, None);
    assert!(!quiet.has_failing_slo());
    assert!(
        StatusSnapshot::parse("{\"schema\":9}").is_err(),
        "unknown schema"
    );
}

#[test]
fn atomic_status_write_replaces_not_appends() {
    use crate::status::write_atomic;
    let base = std::env::temp_dir().join(format!("benchpark-serve-atomic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let path = base.join("nested").join("status.json");
    write_atomic(&path, "{\"a\":1}").unwrap();
    write_atomic(&path, "{\"b\":2}").unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"b\":2}");
    assert!(
        !path.with_extension("tmp").exists(),
        "temp file renamed away"
    );
    let _ = std::fs::remove_dir_all(&base);
}
