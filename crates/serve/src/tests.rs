use crate::queue::{QueueConfig, RejectReason, SubmissionQueue};
use crate::request::ExperimentRequest;
use crate::sched::DrrScheduler;
use benchpark_telemetry::TelemetrySink;

fn req(tenant: &str) -> ExperimentRequest {
    ExperimentRequest::new(tenant, "saxpy", "openmp", "cts1")
}

#[test]
fn parse_line_roundtrip() {
    let r = ExperimentRequest::parse_line("alice saxpy/openmp cts1")
        .unwrap()
        .unwrap();
    assert_eq!(r.tenant, "alice");
    assert_eq!(r.benchmark, "saxpy");
    assert_eq!(r.variant, "openmp");
    assert_eq!(r.system, "cts1");
    assert!(!r.faults);
    assert_eq!(r.to_line(), "alice saxpy/openmp cts1");

    let r = ExperimentRequest::parse_line("bob stream/openmp ats2 faults template=t.yaml")
        .unwrap()
        .unwrap();
    assert!(r.faults);
    assert_eq!(
        r.template_path.as_ref().unwrap().to_str().unwrap(),
        "t.yaml"
    );
    assert_eq!(r.to_line(), "bob stream/openmp ats2 faults template=t.yaml");
}

#[test]
fn parse_line_skips_comments_and_rejects_malformed() {
    assert!(ExperimentRequest::parse_line("").unwrap().is_none());
    assert!(ExperimentRequest::parse_line("  # comment")
        .unwrap()
        .is_none());
    assert!(ExperimentRequest::parse_line("alice").is_err());
    assert!(ExperimentRequest::parse_line("alice saxpy cts1").is_err());
    assert!(ExperimentRequest::parse_line("alice saxpy/openmp cts1 bogus").is_err());
}

#[test]
fn spec_key_ignores_tenant_but_not_template() {
    let a = req("alice");
    let b = req("bob");
    assert_eq!(a.spec_key(), b.spec_key());
    let mut c = req("alice");
    c.template = Some("experiments: {}".to_string());
    assert_ne!(a.spec_key(), c.spec_key());
    let mut d = req("alice");
    d.faults = true;
    assert_ne!(a.spec_key(), d.spec_key());
}

#[test]
fn admission_validates_and_enforces_quotas() {
    let sink = TelemetrySink::recording();
    let config = QueueConfig {
        max_queued_per_tenant: 2,
        max_queued_global: 3,
        ..QueueConfig::default()
    };
    let mut queue = SubmissionQueue::new(config, sink.clone());

    let bad = queue.admit(req("Alice")).unwrap_err();
    assert!(matches!(bad.reason, RejectReason::BadTenant { .. }));
    assert_eq!(bad.reason.code(), "bad-tenant");

    let mut r = req("alice");
    r.system = "nosuch".to_string();
    let bad = queue.admit(r).unwrap_err();
    assert_eq!(bad.reason.code(), "unknown-system");

    let mut r = req("alice");
    r.benchmark = "nosuch".to_string();
    let bad = queue.admit(r).unwrap_err();
    assert_eq!(bad.reason.code(), "unknown-experiment");

    assert_eq!(queue.admit(req("alice")).unwrap(), 1);
    assert_eq!(queue.admit(req("alice")).unwrap(), 2);
    let bad = queue.admit(req("alice")).unwrap_err();
    assert!(matches!(
        bad.reason,
        RejectReason::TenantQueueFull { limit: 2 }
    ));

    assert_eq!(queue.admit(req("bob")).unwrap(), 1);
    let bad = queue.admit(req("carol")).unwrap_err();
    assert!(matches!(
        bad.reason,
        RejectReason::GlobalQueueFull { limit: 3 }
    ));

    let report = sink.report().unwrap();
    assert_eq!(report.counter("serve.submitted"), 3);
    assert_eq!(report.counter("serve.rejected"), 5);
    assert_eq!(report.counter("serve.rejected.tenant-queue-full"), 1);
    assert_eq!(report.counter("serve.rejected.global-queue-full"), 1);
    assert_eq!(report.counter("serve.tenant.alice.submitted"), 2);
    assert_eq!(report.counter("serve.tenant.alice.rejected"), 3);
}

#[test]
fn queue_is_fifo_within_tenant() {
    let mut queue = SubmissionQueue::new(QueueConfig::default(), TelemetrySink::noop());
    let mut a1 = req("alice");
    a1.system = "cts1".to_string();
    let mut a2 = req("alice");
    a2.system = "ats2".to_string();
    queue.admit(a1).unwrap();
    queue.admit(a2).unwrap();
    let first = queue.pop_front("alice").unwrap();
    let second = queue.pop_front("alice").unwrap();
    assert_eq!(first.tenant_seq, 1);
    assert_eq!(first.request.system, "cts1");
    assert_eq!(second.tenant_seq, 2);
    assert_eq!(second.request.system, "ats2");
    assert!(queue.pop_front("alice").is_none());
}

#[test]
fn drr_is_fair_across_tenants() {
    let config = QueueConfig {
        quantum: 2,
        max_inflight_per_tenant: 4,
        ..QueueConfig::default()
    };
    let mut queue = SubmissionQueue::new(config.clone(), TelemetrySink::noop());
    // alice floods, bob submits two: bob must not starve.
    for _ in 0..6 {
        queue.admit(req("alice")).unwrap();
    }
    for _ in 0..2 {
        queue.admit(req("bob")).unwrap();
    }
    let mut sched = DrrScheduler::new(&config);

    let batch = sched.next_batch(&mut queue);
    let tenants: Vec<&str> = batch.iter().map(|q| q.request.tenant.as_str()).collect();
    assert_eq!(tenants, vec!["alice", "alice", "bob", "bob"]);

    let batch = sched.next_batch(&mut queue);
    let tenants: Vec<&str> = batch.iter().map(|q| q.request.tenant.as_str()).collect();
    assert_eq!(tenants, vec!["alice", "alice"]);

    let batch = sched.next_batch(&mut queue);
    assert_eq!(batch.len(), 2);
    assert!(queue.is_empty());
    assert!(sched.next_batch(&mut queue).is_empty());
}

#[test]
fn drr_caps_per_tenant_inflight_and_carries_deficit() {
    let config = QueueConfig {
        quantum: 5,
        max_inflight_per_tenant: 3,
        ..QueueConfig::default()
    };
    let mut queue = SubmissionQueue::new(config.clone(), TelemetrySink::noop());
    for _ in 0..8 {
        queue.admit(req("alice")).unwrap();
    }
    let mut sched = DrrScheduler::new(&config);
    // Round 1: deficit 5, capped at 3 picks, 2 carried.
    assert_eq!(sched.next_batch(&mut queue).len(), 3);
    assert_eq!(sched.deficit("alice"), 2);
    // Round 2: deficit 7, capped at 3 picks.
    assert_eq!(sched.next_batch(&mut queue).len(), 3);
    // Round 3: queue empties; deficit forfeited.
    assert_eq!(sched.next_batch(&mut queue).len(), 2);
    assert_eq!(sched.deficit("alice"), 0);
}

#[test]
fn report_json_and_render() {
    let mut report = crate::report::ServeReport {
        admitted: 10,
        completed: 9,
        failed: 1,
        batches: 3,
        experiments_fresh: 4,
        experiments_cached: 12,
        elapsed_s: 2.0,
        ..Default::default()
    };
    report.tenants.insert(
        "alice".to_string(),
        crate::report::TenantStats {
            submitted: 10,
            completed: 9,
            failed: 1,
            fresh: 4,
            cached: 12,
            ..Default::default()
        },
    );
    assert!((report.throughput() - 4.5).abs() < 1e-9);
    assert!((report.hit_rate() - 0.75).abs() < 1e-9);
    let json = report.to_json();
    assert!(json.contains("\"throughput_rps\""));
    assert!(json.contains("\"alice\""));
    let text = report.render();
    assert!(text.contains("hit rate: 75.0%"));
}
