//! The serve report: throughput, hit rate, rejections, per-tenant stats.

use benchpark_ramble::ExperimentResult;
use benchpark_yamlite::{emit_json, Map, Value};
use std::collections::BTreeMap;

/// One refused submission in the rejection roll.
#[derive(Debug, Clone)]
pub struct RejectionRecord {
    /// 1-based line number in the replay/spool input (0 for programmatic
    /// submissions).
    pub line: usize,
    /// The submitting tenant, as written.
    pub tenant: String,
    /// Stable kebab-case reason code (`tenant-queue-full`, …).
    pub code: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Per-tenant tallies.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Requests that ran (or spliced) to completion.
    pub completed: u64,
    /// Requests whose pipeline errored.
    pub failed: u64,
    /// Experiments measured fresh on a cluster.
    pub fresh: u64,
    /// Experiments satisfied from the tenant's fingerprint shards.
    pub cached: u64,
    /// Requests short-circuited by the memo fastpath (no setup at all).
    pub fastpath: u64,
}

/// What one `benchpark serve` drain did: totals, per-tenant stats, the
/// rejection and failure rolls, and wall-clock throughput.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Requests admitted across all tenants.
    pub admitted: u64,
    /// Requests refused (see `rejections`).
    pub rejected: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests failed.
    pub failed: u64,
    /// Scheduler rounds executed.
    pub batches: u64,
    /// Experiments measured fresh.
    pub experiments_fresh: u64,
    /// Experiments satisfied from fingerprint caches (splices + fastpath).
    pub experiments_cached: u64,
    /// Requests short-circuited by the memo fastpath.
    pub fastpath: u64,
    /// Wall-clock drain time, seconds.
    pub elapsed_s: f64,
    /// Per-tenant tallies, by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
    /// Every refused submission, in intake order.
    pub rejections: Vec<RejectionRecord>,
    /// Every failed request: (request key, error), in pick order.
    pub failures: Vec<(String, String)>,
}

impl ServeReport {
    /// Completed requests per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.elapsed_s
    }

    /// Fraction of experiments satisfied from fingerprint caches.
    pub fn hit_rate(&self) -> f64 {
        let total = self.experiments_fresh + self.experiments_cached;
        if total == 0 {
            return 0.0;
        }
        self.experiments_cached as f64 / total as f64
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve: {} admitted, {} rejected | {} completed, {} failed in {} batches\n",
            self.admitted, self.rejected, self.completed, self.failed, self.batches
        ));
        out.push_str(&format!(
            "  throughput: {:.1} req/s ({:.3}s wall) | fingerprint hit rate: {:.1}% ({} cached / {} fresh, {} fastpath)\n",
            self.throughput(),
            self.elapsed_s,
            self.hit_rate() * 100.0,
            self.experiments_cached,
            self.experiments_fresh,
            self.fastpath
        ));
        for (tenant, stats) in &self.tenants {
            out.push_str(&format!(
                "  {tenant}: {} submitted, {} rejected, {} completed, {} failed, {} fresh, {} cached\n",
                stats.submitted,
                stats.rejected,
                stats.completed,
                stats.failed,
                stats.fresh,
                stats.cached
            ));
        }
        for r in &self.rejections {
            out.push_str(&format!(
                "  rejected line {} [{}] {}: {}\n",
                r.line, r.code, r.tenant, r.detail
            ));
        }
        for (key, error) in &self.failures {
            out.push_str(&format!("  failed {key}: {error}\n"));
        }
        out
    }

    /// The report as a JSON object (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut root = Map::new();
        root.insert("admitted", Value::Int(self.admitted as i64));
        root.insert("rejected", Value::Int(self.rejected as i64));
        root.insert("completed", Value::Int(self.completed as i64));
        root.insert("failed", Value::Int(self.failed as i64));
        root.insert("batches", Value::Int(self.batches as i64));
        root.insert(
            "experiments_fresh",
            Value::Int(self.experiments_fresh as i64),
        );
        root.insert(
            "experiments_cached",
            Value::Int(self.experiments_cached as i64),
        );
        root.insert("fastpath", Value::Int(self.fastpath as i64));
        root.insert("elapsed_s", Value::Float(self.elapsed_s));
        root.insert("throughput_rps", Value::Float(self.throughput()));
        root.insert("fingerprint_hit_rate", Value::Float(self.hit_rate()));
        let mut tenants = Map::new();
        for (tenant, stats) in &self.tenants {
            let mut m = Map::new();
            m.insert("submitted", Value::Int(stats.submitted as i64));
            m.insert("rejected", Value::Int(stats.rejected as i64));
            m.insert("completed", Value::Int(stats.completed as i64));
            m.insert("failed", Value::Int(stats.failed as i64));
            m.insert("fresh", Value::Int(stats.fresh as i64));
            m.insert("cached", Value::Int(stats.cached as i64));
            m.insert("fastpath", Value::Int(stats.fastpath as i64));
            tenants.insert(tenant.clone(), Value::Map(m));
        }
        root.insert("tenants", Value::Map(tenants));
        let rejections = self
            .rejections
            .iter()
            .map(|r| {
                let mut m = Map::new();
                m.insert("line", Value::Int(r.line as i64));
                m.insert("tenant", Value::str(r.tenant.clone()));
                m.insert("code", Value::str(r.code.clone()));
                m.insert("detail", Value::str(r.detail.clone()));
                Value::Map(m)
            })
            .collect();
        root.insert("rejections", Value::Seq(rejections));
        let failures = self
            .failures
            .iter()
            .map(|(key, error)| {
                let mut m = Map::new();
                m.insert("request", Value::str(key.clone()));
                m.insert("error", Value::str(error.clone()));
                Value::Map(m)
            })
            .collect();
        root.insert("failures", Value::Seq(failures));
        emit_json(&Value::Map(root))
    }
}

/// Renders one request's results as the FOM transcript block body:
/// experiment name, then one indented `name = value units` line per FOM.
/// Deliberately excludes status markers, cache provenance, and telemetry —
/// everything volatile or path-dependent — so the daemon's per-tenant
/// transcripts are byte-comparable against the serial one-shot driver and
/// across `--jobs` counts.
pub fn fom_transcript(results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&r.experiment);
        out.push('\n');
        for fom in &r.foms {
            out.push_str(&format!("    {} = {} {}\n", fom.name, fom.value, fom.units));
        }
    }
    out
}
