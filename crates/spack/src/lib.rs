//! `benchpark-spack` — configuration scopes, environments, the installation
//! engine, and the binary cache.
//!
//! This crate completes the package-manager substrate (paper §3.1):
//!
//! * **Configuration scopes** ([`ConfigScopes`]): layered YAML configuration
//!   (`packages.yaml`, `compilers.yaml`) with Spack's deep-merge precedence —
//!   site policy under user overrides — parsed into the concretizer's
//!   [`benchpark_concretizer::SiteConfig`]. Figure 4's externals file parses
//!   verbatim.
//! * **Environments** ([`Environment`]): the manifest-and-lock model the
//!   paper describes (§3.1: *"environment manifests are treated as user
//!   input, and the output of the concretizer is written to a lockfile"*).
//!   The five-command workflow of Figure 2 (`env create`, `env activate`,
//!   `add`, `concretize`, `install`) maps to methods here, and Figure 3's
//!   `spack.yaml` manifest parses verbatim.
//! * **The installation engine** ([`Installer`]): Spack's fourth component,
//!   *"handles installing packages from source or binary cache"*. Builds are
//!   simulated against each recipe's cost model but executed on a real
//!   dependency-ordered parallel worker pool (crossbeam channels + parking_lot
//!   locks), writing an [`InstallDatabase`] of content-hashed records and
//!   optionally pushing to / fetching from a [`BinaryCache`] — the "rolling
//!   binary cache" of §7.2 whose speedup the CI benchmark (A2) measures.

mod cache;
mod config;
mod db;
mod env;
mod installer;
mod manifest;

pub use cache::{BinaryCache, CacheFetchError, CacheStats};
pub use config::ConfigScopes;
pub use db::{InstallDatabase, InstalledRecord};
pub use env::{Environment, Lockfile};
pub use installer::{Action, InstallOptions, InstallReport, Installer, PackageResult};
pub use manifest::Manifest;

#[cfg(test)]
mod tests;
