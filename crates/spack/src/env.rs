//! Environments: the manifest-and-lock model (paper §3.1, Figure 2).

use crate::config::ConfigScopes;
use crate::installer::{InstallOptions, InstallReport, Installer};
use crate::manifest::Manifest;
use benchpark_concretizer::{ConcreteSpec, ConcretizeError, Concretizer, SiteConfig};
use benchpark_pkg::Repo;
use benchpark_spec::Spec;

/// The concretizer's output, written alongside the manifest
/// (`spack.lock`): one concrete DAG per root spec.
#[derive(Debug, Clone, Default)]
pub struct Lockfile {
    /// `(abstract root text, concrete DAG)` in manifest order.
    pub roots: Vec<(String, ConcreteSpec)>,
}

impl Lockfile {
    /// Looks up the concrete DAG for an abstract root.
    pub fn get(&self, root: &str) -> Option<&ConcreteSpec> {
        self.roots
            .iter()
            .find(|(r, _)| r == root)
            .map(|(_, dag)| dag)
    }

    /// All concrete DAGs.
    pub fn dags(&self) -> impl Iterator<Item = &ConcreteSpec> {
        self.roots.iter().map(|(_, dag)| dag)
    }

    /// A textual rendering (hashes + tree views) for storage with results —
    /// the paper's §5 goal of *"storing the Benchpark manifest with the
    /// performance results"*.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (root, dag) in &self.roots {
            out.push_str(&format!(
                "# {root}\n# dag_hash: {}\n{dag}\n",
                dag.dag_hash()
            ));
        }
        out
    }

    /// Serializes the lockfile to YAML (`spack.lock`), so environments can be
    /// "stored independently from Spack" (§3.1.1) and rebuilt bit-for-bit.
    pub fn to_yaml(&self) -> String {
        use benchpark_concretizer::Origin;
        use benchpark_yamlite::{emit, Map, Value};
        let mut roots = Vec::new();
        for (abstract_text, dag) in &self.roots {
            let mut nodes = Map::new();
            for (key, node) in &dag.nodes {
                let mut entry = Map::new();
                entry.insert("spec", Value::str(node.spec.short()));
                entry.insert("hash", Value::str(node.hash.clone()));
                let mut deps = Map::new();
                for (dep_name, dep_key) in &node.deps {
                    deps.insert(dep_name, Value::str(dep_key.clone()));
                }
                entry.insert("dependencies", Value::Map(deps));
                entry.insert(
                    "provides",
                    Value::Seq(
                        node.provides
                            .iter()
                            .map(|v| Value::str(v.clone()))
                            .collect(),
                    ),
                );
                match &node.origin {
                    Origin::Source => entry.insert("origin", Value::str("source")),
                    Origin::Reused => entry.insert("origin", Value::str("reused")),
                    Origin::External { prefix } => {
                        entry.insert("origin", Value::str("external"));
                        entry.insert("external_prefix", Value::str(prefix.clone()));
                    }
                }
                nodes.insert(key, Value::Map(entry));
            }
            let mut root = Map::new();
            root.insert("abstract", Value::str(abstract_text.clone()));
            root.insert("root", Value::str(dag.root.clone()));
            root.insert("nodes", Value::Map(nodes));
            roots.push(Value::Map(root));
        }
        let mut doc = Map::new();
        doc.insert("spack_lock_version", Value::Int(1));
        doc.insert("roots", Value::Seq(roots));
        emit(&Value::Map(doc))
    }

    /// Parses a lockfile produced by [`Lockfile::to_yaml`].
    pub fn from_yaml(text: &str) -> Result<Lockfile, String> {
        use benchpark_concretizer::{ConcreteNode, ConcreteSpec, Origin};
        use benchpark_yamlite::{parse, Value};
        let doc = parse(text).map_err(|e| e.to_string())?;
        let roots = doc
            .get("roots")
            .and_then(Value::as_seq)
            .ok_or("lockfile lacks `roots`")?;
        let mut out = Lockfile::default();
        for root in roots {
            let abstract_text = root
                .get("abstract")
                .and_then(Value::as_str)
                .ok_or("root lacks `abstract`")?
                .to_string();
            let root_key = root
                .get("root")
                .and_then(Value::as_str)
                .ok_or("root lacks `root`")?
                .to_string();
            let node_map = root
                .get("nodes")
                .and_then(Value::as_map)
                .ok_or("root lacks `nodes`")?;
            let mut nodes = std::collections::BTreeMap::new();
            for (key, body) in node_map.iter() {
                let spec_text = body
                    .get("spec")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("node `{key}` lacks spec"))?;
                let spec: Spec = spec_text
                    .parse()
                    .map_err(|e| format!("node `{key}`: {e}"))?;
                let hash = body
                    .get("hash")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("node `{key}` lacks hash"))?
                    .to_string();
                let mut deps = std::collections::BTreeMap::new();
                if let Some(dep_map) = body.get("dependencies").and_then(Value::as_map) {
                    for (dn, dv) in dep_map.iter() {
                        if let Some(s) = dv.as_str() {
                            deps.insert(dn.clone(), s.to_string());
                        }
                    }
                }
                let provides = body
                    .get("provides")
                    .and_then(Value::string_list)
                    .unwrap_or_default();
                let origin = match body.get("origin").and_then(Value::as_str) {
                    Some("external") => Origin::External {
                        prefix: body
                            .get("external_prefix")
                            .and_then(Value::as_str)
                            .unwrap_or("/opt")
                            .to_string(),
                    },
                    Some("reused") => Origin::Reused,
                    _ => Origin::Source,
                };
                nodes.insert(
                    key.clone(),
                    ConcreteNode {
                        spec,
                        deps,
                        provides,
                        origin,
                        hash,
                    },
                );
            }
            if !nodes.contains_key(&root_key) {
                return Err(format!("lockfile root `{root_key}` has no node entry"));
            }
            out.roots.push((
                abstract_text,
                ConcreteSpec {
                    root: root_key,
                    nodes,
                },
            ));
        }
        Ok(out)
    }
}

/// A Spack environment: manifest in, lockfile out (Figure 2's workflow).
#[derive(Debug, Clone)]
pub struct Environment {
    /// Environment name (directory in real Spack).
    pub name: String,
    /// The user-editable manifest.
    pub manifest: Manifest,
    /// Extra configuration scopes (`spack --config-scope /path concretize`).
    pub config: ConfigScopes,
    /// The concretizer's output; `None` until [`Environment::concretize`].
    pub lockfile: Option<Lockfile>,
}

impl Environment {
    /// `spack env create --dir .`
    pub fn create(name: &str) -> Environment {
        Environment {
            name: name.to_string(),
            manifest: Manifest::default(),
            config: ConfigScopes::new(),
            lockfile: None,
        }
    }

    /// Creates an environment from an existing `spack.yaml` manifest.
    pub fn from_manifest(
        name: &str,
        manifest_yaml: &str,
    ) -> Result<Environment, benchpark_yamlite::ParseError> {
        Ok(Environment {
            name: name.to_string(),
            manifest: Manifest::from_yaml(manifest_yaml)?,
            config: ConfigScopes::new(),
            lockfile: None,
        })
    }

    /// `spack add <spec>` — appends an abstract root and invalidates the lock.
    pub fn add(&mut self, spec: &str) -> Result<(), benchpark_spec::SpecError> {
        spec.parse::<Spec>()?; // validate
        if !self.manifest.specs.iter().any(|s| s == spec) {
            self.manifest.specs.push(spec.to_string());
            self.lockfile = None;
        }
        Ok(())
    }

    /// `spack --config-scope <dir> …` — layers additional configuration.
    pub fn push_config_scope(
        &mut self,
        name: &str,
        files: &[(&str, &str)],
    ) -> Result<(), benchpark_yamlite::ParseError> {
        self.config.push_scope(name, files)?;
        self.lockfile = None;
        Ok(())
    }

    /// The effective site configuration from this environment's scopes.
    pub fn site_config(&self) -> SiteConfig {
        self.config.site_config()
    }

    /// `spack concretize` — writes the lockfile.
    pub fn concretize(&mut self, repo: &Repo) -> Result<&Lockfile, ConcretizeError> {
        let site = self.site_config();
        self.concretize_with(repo, &site)
    }

    /// Concretizes against an externally-supplied site configuration.
    pub fn concretize_with(
        &mut self,
        repo: &Repo,
        site: &SiteConfig,
    ) -> Result<&Lockfile, ConcretizeError> {
        self.concretize_instrumented(repo, site, benchpark_telemetry::TelemetrySink::noop())
    }

    /// [`Environment::concretize_with`] with solver telemetry routed to `sink`.
    pub fn concretize_instrumented(
        &mut self,
        repo: &Repo,
        site: &SiteConfig,
        sink: benchpark_telemetry::TelemetrySink,
    ) -> Result<&Lockfile, ConcretizeError> {
        let roots: Vec<Spec> = self
            .manifest
            .specs
            .iter()
            .map(|s| s.parse::<Spec>())
            .collect::<Result<_, _>>()
            .map_err(ConcretizeError::from)?;
        let solver = Concretizer::new(repo, site).with_telemetry(sink);
        let dags = solver.concretize_env(&roots, self.manifest.unify)?;
        self.lockfile = Some(Lockfile {
            roots: self.manifest.specs.iter().cloned().zip(dags).collect(),
        });
        Ok(self.lockfile.as_ref().expect("just set"))
    }

    /// `spack install` — runs the install engine over every locked root.
    pub fn install(
        &self,
        installer: &Installer<'_>,
        opts: &InstallOptions,
    ) -> Result<Vec<InstallReport>, ConcretizeError> {
        let lockfile = self.lockfile.as_ref().ok_or_else(|| {
            ConcretizeError::unsatisfiable("environment is not concretized; run concretize first")
        })?;
        Ok(lockfile
            .dags()
            .map(|dag| installer.install(dag, opts))
            .collect())
    }
}
